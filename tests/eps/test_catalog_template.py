"""Tests for the EPS catalog (Table I) and the scalable template builder."""

import pytest

from repro.arch import Role
from repro.eps import (
    FAILURE_PROB,
    GENERATOR_RATINGS,
    LOAD_DEMANDS,
    TYPE_ORDER,
    base_library_components,
    build_eps_template,
    paper_template,
    render_single_line,
)
from repro.eps.catalog import ac_bus, dc_bus, generator, load, rectifier


class TestCatalog:
    def test_table1_generator_ratings(self):
        assert GENERATOR_RATINGS == {
            "LG1": 70.0, "LG2": 50.0, "RG1": 80.0, "RG2": 30.0, "APU": 100.0
        }

    def test_table1_load_demands(self):
        assert LOAD_DEMANDS == {"LL1": 30.0, "LL2": 10.0, "RL1": 10.0, "RL2": 20.0}

    def test_generator_cost_is_g_over_10(self):
        g = generator("LG1", 70.0)
        assert g.cost == 7.0
        assert g.capacity == 70.0
        assert g.role == Role.SOURCE
        assert g.failure_prob == FAILURE_PROB

    def test_bus_and_rectifier_costs(self):
        assert ac_bus("B").cost == 2000.0
        assert dc_bus("D").cost == 2000.0
        assert rectifier("R").cost == 2000.0

    def test_only_gens_buses_rectifiers_fail(self):
        assert ac_bus("B").failure_prob == FAILURE_PROB
        assert rectifier("R").failure_prob == FAILURE_PROB
        assert load("L", 10.0).failure_prob == 0.0

    def test_base_components_count(self):
        comps = base_library_components()
        assert len(comps) == 5 + 4 + 4 + 4 + 4  # gens+APU, AC, rect, DC, loads
        assert {c.ctype for c in comps} == set(TYPE_ORDER)


class TestTemplateBuilder:
    @pytest.mark.parametrize("gens", [2, 4, 6, 8, 10])
    def test_node_count_matches_table2(self, gens):
        t = build_eps_template(num_generators=gens)
        assert t.num_nodes == 5 * gens

    def test_apu_adds_one_node(self):
        t = build_eps_template(num_generators=4, include_apu=True)
        assert t.num_nodes == 21
        assert "APU" in [t.name_of(i) for i in t.source_indices()]

    def test_odd_generator_count_rejected(self):
        with pytest.raises(ValueError):
            build_eps_template(num_generators=3)
        with pytest.raises(ValueError):
            build_eps_template(num_generators=0)

    def test_type_order_is_paper_partition(self):
        t = build_eps_template(num_generators=4)
        assert t.type_order == TYPE_ORDER
        assert t.num_types == 5

    def test_layered_edges_only(self):
        t = build_eps_template(num_generators=4)
        layer = {ctype: i for i, ctype in enumerate(TYPE_ORDER)}
        for (i, j) in t.allowed_edges:
            li, lj = layer[t.type_of(i)], layer[t.type_of(j)]
            assert lj == li + 1 or li == lj  # next layer or sibling tie

    def test_no_sibling_ties_option(self):
        t = build_eps_template(num_generators=4, sibling_ties=False)
        for (i, j) in t.allowed_edges:
            assert t.type_of(i) != t.type_of(j)

    def test_side_local_option(self):
        t = build_eps_template(num_generators=4, cross_side=False)
        for (i, j) in t.allowed_edges:
            a, b = t.name_of(i), t.name_of(j)
            assert a[0] == b[0] or "APU" in (a, b)

    def test_window_reduces_edges(self):
        dense = build_eps_template(num_generators=8)
        sparse = build_eps_template(num_generators=8, window=2)
        assert len(sparse.allowed_edges) < len(dense.allowed_edges)

    def test_full_template_declares_orbits(self):
        t = build_eps_template(num_generators=4)
        kinds = {frozenset(g) for g in t.interchangeable_groups}
        assert frozenset({"LB1", "LB2", "RB1", "RB2"}) in kinds
        assert frozenset({"LR1", "LR2", "RR1", "RR2"}) in kinds

    def test_windowed_template_declares_no_orbits(self):
        t = build_eps_template(num_generators=8, window=2)
        assert t.interchangeable_groups == []

    def test_paper_template_shape(self):
        t = paper_template()
        assert t.num_nodes == 21
        assert len(t.sink_indices()) == 4
        assert len(t.source_indices()) == 5

    def test_generator_ratings_cycle(self):
        t = build_eps_template(num_generators=6)
        ratings = sorted(
            t.spec(i).capacity for i in t.nodes_of_type("generator")
        )
        # cycle of [70, 50, 80, 30] over 6 gens
        assert ratings == sorted([70, 50, 80, 30, 70, 50])


class TestDiagram:
    def test_render_contains_layers(self):
        from repro.arch import Architecture

        t = build_eps_template(num_generators=4)
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        arch = Architecture(
            t, [e("LG1", "LB1"), e("LB1", "LR1"), e("LR1", "LD1"), e("LD1", "LL1")]
        )
        text = render_single_line(arch)
        assert "generator" in text
        assert "LG1" in text and "LL1" in text
        assert "cost" in text
