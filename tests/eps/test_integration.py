"""Integration tests: EPS synthesis results satisfy the §V requirements
semantically (checked on the decoded architecture, not just the ILP)."""

import pytest

from repro.eps import build_eps_template, eps_spec, paper_template
from repro.reliability import (
    approximate_failure,
    failure_probability_mc,
    problem_from_architecture,
    sink_failure_probabilities,
)
from repro.synthesis import synthesize_ilp_ar, synthesize_ilp_mr


@pytest.fixture(scope="module")
def mr_result():
    spec = eps_spec(paper_template(), reliability_target=2e-10)
    return spec, synthesize_ilp_mr(spec, backend="scipy")


@pytest.fixture(scope="module")
def ar_result():
    spec = eps_spec(paper_template(), reliability_target=2e-6)
    return spec, synthesize_ilp_ar(spec, backend="scipy")


def _check_eps_invariants(arch):
    """The §V structural rules, re-checked on the decoded graph."""
    t = arch.template
    g = arch.graph()
    type_of = lambda n: g.nodes[n]["ctype"]

    for node in g.nodes:
        preds = [p for p in g.predecessors(node)]
        succs = [s for s in g.successors(node)]
        ctype = type_of(node)
        if ctype == "load":
            assert any(type_of(p) == "dc_bus" for p in preds), node
        elif ctype == "rectifier":
            ac_in = [p for p in preds if type_of(p) == "ac_bus"]
            assert len(ac_in) <= 1, f"{node} fed by {ac_in}"
            if any(type_of(s) == "dc_bus" for s in succs):
                assert len(ac_in) == 1, node
        elif ctype == "dc_bus":
            if succs:
                assert any(type_of(p) == "rectifier" for p in preds), node
        elif ctype == "ac_bus":
            if any(type_of(s) in ("rectifier", "ac_bus") for s in succs):
                assert any(type_of(p) == "generator" for p in preds), node

    # Power adequacy.
    supply = sum(
        t.spec(i).capacity for i in arch.used_nodes() if t.spec(i).capacity > 0
    )
    demand = sum(t.spec(i).demand for i in range(t.num_nodes))
    assert supply >= demand


class TestIlpMrIntegration:
    def test_feasible(self, mr_result):
        _, res = mr_result
        assert res.feasible

    def test_structural_invariants(self, mr_result):
        _, res = mr_result
        _check_eps_invariants(res.architecture)

    def test_every_load_meets_target(self, mr_result):
        spec, res = mr_result
        probs = sink_failure_probabilities(res.architecture)
        assert set(probs) == set(spec.sinks())
        assert all(r <= 2e-10 for r in probs.values()), probs

    def test_monte_carlo_consistency(self, mr_result):
        """MC cannot resolve 1e-10, but it must see ~zero failures."""
        _, res = mr_result
        problem = problem_from_architecture(res.architecture, "LL1")
        mc = failure_probability_mc(problem, samples=50_000, seed=11)
        assert mc.failures == 0

    def test_cost_equals_objective_decomposition(self, mr_result):
        _, res = mr_result
        arch = res.architecture
        t = arch.template
        component = sum(t.spec(i).cost for i in arch.used_nodes())
        switches = arch.num_switches() * 1000.0
        assert arch.cost() == pytest.approx(component + switches)
        assert res.cost == pytest.approx(arch.cost())


class TestIlpArIntegration:
    def test_feasible(self, ar_result):
        _, res = ar_result
        assert res.feasible

    def test_structural_invariants(self, ar_result):
        _, res = ar_result
        _check_eps_invariants(res.architecture)

    def test_encoded_h_matches_analysis_h(self, ar_result):
        """The walk-based count the ILP constrained must equal the h_ij the
        analysis computes from enumerated reduced paths (layered template)."""
        spec, res = ar_result
        arch = res.architecture
        for sink in spec.sinks():
            approx = approximate_failure(arch, sink)
            # every failing jointly-implementing type reached h >= 2 for
            # r* = 2e-6 (h=1 would contribute 2e-4 > r*).
            for ctype in ("generator", "ac_bus", "rectifier", "dc_bus"):
                assert approx.redundancy[ctype] >= 2, (sink, ctype, approx.redundancy)

    def test_r_tilde_below_target(self, ar_result):
        spec, res = ar_result
        for sink in spec.sinks():
            approx = approximate_failure(res.architecture, sink)
            assert approx.r_tilde <= 2e-6 * (1 + 1e-9)


class TestScaledTemplates:
    @pytest.mark.parametrize("gens", [4, 6])
    def test_scaled_synthesis_loose_target(self, gens):
        spec = eps_spec(build_eps_template(num_generators=gens),
                        reliability_target=1e-3)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        assert res.num_iterations == 1  # minimal architecture suffices
        _check_eps_invariants(res.architecture)
