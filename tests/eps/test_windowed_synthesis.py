"""Synthesis on windowed (sparse) EPS templates — the Table II/III
footnote path: no orbits, bounded neighborhoods."""

import pytest

from repro.eps import build_eps_template, eps_spec
from repro.synthesis import synthesize_ilp_ar, synthesize_ilp_mr


class TestWindowedTemplates:
    def test_mr_meets_target_on_sparse_template(self):
        t = build_eps_template(num_generators=4, window=2)
        assert t.interchangeable_groups == []
        spec = eps_spec(t, reliability_target=2e-6)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        assert res.reliability <= 2e-6

    def test_ar_meets_target_on_sparse_template(self):
        t = build_eps_template(num_generators=4, window=2)
        spec = eps_spec(t, reliability_target=2e-6)
        res = synthesize_ilp_ar(spec, backend="scipy")
        assert res.feasible
        assert res.approx_reliability <= 2e-6

    def test_sparse_costs_at_least_dense(self):
        """Removing allowed edges can only increase the optimal cost."""
        r_star = 2e-6
        dense = synthesize_ilp_ar(
            eps_spec(build_eps_template(4), reliability_target=r_star),
            backend="scipy",
        )
        sparse = synthesize_ilp_ar(
            eps_spec(build_eps_template(4, window=2), reliability_target=r_star),
            backend="scipy",
        )
        assert dense.feasible and sparse.feasible
        assert sparse.cost >= dense.cost - 1e-6

    def test_window_one_may_lack_redundancy(self):
        # window=1: each load reachable from exactly one chain per side;
        # a very tight target must be infeasible.
        t = build_eps_template(num_generators=4, window=1, sibling_ties=False)
        spec = eps_spec(t, reliability_target=1e-10)
        res = synthesize_ilp_mr(spec, backend="scipy", max_iterations=15)
        assert res.status == "infeasible"
