"""Tests for operating conditions and condition-dependent adequacy."""

import pytest

from repro.eps import build_eps_template, eps_requirements
from repro.synthesis import (
    AdequacyUnderConditions,
    OperatingCondition,
    SynthesisSpec,
    standard_flight_conditions,
    synthesize_ilp_mr,
)


class TestOperatingCondition:
    def test_frozen_and_normalized(self):
        cond = OperatingCondition("x", unavailable=["A"], shed_loads=["L"])
        assert cond.unavailable == ("A",)
        assert cond.shed_loads == ("L",)
        with pytest.raises(Exception):
            cond.name = "y"

    def test_standard_flight_conditions_cover_generators(self):
        t = build_eps_template(num_generators=6, include_apu=True)
        conditions = standard_flight_conditions(t)
        names = {c.name for c in conditions}
        assert "nominal" in names
        assert "APU-out" in names
        assert "emergency" in names
        # one N-1 condition per generator (incl. APU) plus nominal+emergency
        assert len(conditions) == 7 + 2


class TestAdequacyUnderConditions:
    def _spec(self, conditions):
        t = build_eps_template(num_generators=4, include_apu=True)
        reqs = eps_requirements(t) + [AdequacyUnderConditions(conditions)]
        return t, SynthesisSpec(template=t, requirements=reqs,
                                reliability_target=2e-3)

    def test_generator_out_condition_forces_backup(self):
        t, spec = self._spec([
            OperatingCondition("nominal"),
            OperatingCondition("LG1-out", unavailable=("LG1",)),
        ])
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        used_gens = [
            t.name_of(i) for i in res.architecture.used_nodes()
            if t.spec(i).capacity > 0
        ]
        # Demand is 70 kW; losing any single used generator must leave 70.
        for g in used_gens:
            remaining = sum(
                t.spec(t.index_of(n)).capacity for n in used_gens if n != g
            )
            if g == "LG1":
                assert remaining >= 70.0

    def test_shed_loads_reduce_required_supply(self):
        # Shedding every load in a condition makes it vacuous.
        all_loads = ["LL1", "LL2", "RL1", "RL2"]
        t, spec = self._spec([
            OperatingCondition("total-shed", unavailable=("LG1", "LG2", "RG1",
                                                          "RG2", "APU"),
                               shed_loads=tuple(all_loads)),
        ])
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible  # 0 supply >= 0 demand holds

    def test_unknown_component_rejected(self):
        t, spec = self._spec([
            OperatingCondition("typo", unavailable=("NOPE",)),
        ])
        with pytest.raises(KeyError):
            spec.build_encoder()

    def test_impossible_condition_infeasible(self):
        t, spec = self._spec([
            OperatingCondition("all-out", unavailable=("LG1", "LG2", "RG1",
                                                       "RG2", "APU")),
        ])
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.status == "infeasible"

    def test_standard_conditions_synthesize(self):
        t = build_eps_template(num_generators=4, include_apu=True)
        reqs = eps_requirements(t) + [
            AdequacyUnderConditions(standard_flight_conditions(t))
        ]
        spec = SynthesisSpec(template=t, requirements=reqs,
                             reliability_target=2e-3)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        assert res.reliability <= 2e-3
