"""Tests for the N-1 contingency requirement and edge (contactor) failures
in synthesis-facing code paths."""

import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.reliability import failure_probability, problem_from_architecture
from repro.synthesis import (
    IfFeedsThenFed,
    NMinusOneAdequacy,
    RequireIncomingEdge,
    SynthesisSpec,
    synthesize_ilp_mr,
)


def make_gen_template(ratings, demand):
    lib = Library(switch_cost=1.0)
    for i, rating in enumerate(ratings):
        lib.add(ComponentSpec(f"G{i}", "gen", cost=rating, capacity=rating,
                              failure_prob=1e-3, role=Role.SOURCE))
    lib.add(ComponentSpec("B0", "bus", cost=10, failure_prob=1e-3))
    lib.add(ComponentSpec("L0", "load", demand=demand, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    t = ArchitectureTemplate(lib, [f"G{i}" for i in range(len(ratings))] + ["B0", "L0"])
    for i in range(len(ratings)):
        t.allow_edge(f"G{i}", "B0")
    t.allow_edge("B0", "L0")
    return t


class TestNMinusOne:
    def _spec(self, ratings, demand, n_minus_one=True):
        t = make_gen_template(ratings, demand)
        reqs = [
            RequireIncomingEdge(nodes=["L0"], k=1),
            IfFeedsThenFed(via=["B0"], downstream=["L0"],
                           upstream=[f"G{i}" for i in range(len(ratings))]),
        ]
        if n_minus_one:
            reqs.append(NMinusOneAdequacy())
        return SynthesisSpec(template=t, requirements=reqs,
                             reliability_target=0.5)

    def test_forces_extra_generator(self):
        # demand 50; gens of 60 each. Without N-1 one gen suffices; with
        # N-1, losing the single gen must still leave 50 -> two gens.
        with_n1 = synthesize_ilp_mr(self._spec([60, 60, 60], 50), backend="scipy")
        without = synthesize_ilp_mr(
            self._spec([60, 60, 60], 50, n_minus_one=False), backend="scipy"
        )
        assert with_n1.feasible and without.feasible

        def gens_used(res):
            t = res.architecture.template
            return sum(
                1 for i in res.architecture.used_nodes()
                if t.spec(i).capacity > 0
            )

        assert gens_used(without) == 1
        assert gens_used(with_n1) >= 2

    def test_survives_largest_unit_loss(self):
        res = synthesize_ilp_mr(self._spec([80, 60, 60], 50), backend="scipy")
        t = res.architecture.template
        used = [
            t.spec(i) for i in res.architecture.used_nodes() if t.spec(i).capacity > 0
        ]
        total = sum(s.capacity for s in used)
        largest = max(s.capacity for s in used)
        assert total - largest >= 50

    def test_infeasible_when_template_cannot_cover(self):
        # two gens of 60: N-1 leaves 60 >= 70? No -> infeasible.
        spec = self._spec([60, 60], 70)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.status == "infeasible"

    def test_margin_parameter(self):
        t = make_gen_template([60, 60, 60], 40)
        spec = SynthesisSpec(
            template=t,
            requirements=[
                RequireIncomingEdge(nodes=["L0"], k=1),
                IfFeedsThenFed(via=["B0"], downstream=["L0"],
                               upstream=["G0", "G1", "G2"]),
                NMinusOneAdequacy(margin=70.0),  # 40 + 70 = 110 post-loss
            ],
            reliability_target=0.5,
        )
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        used_caps = sorted(
            t.spec(i).capacity for i in res.architecture.used_nodes()
            if t.spec(i).capacity > 0
        )
        assert sum(used_caps) - max(used_caps) >= 110


class TestEdgeFailures:
    def _template_with_failing_edge(self, q):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("S", "src", failure_prob=0.1, role=Role.SOURCE))
        lib.add(ComponentSpec("T", "snk", failure_prob=0.2, role=Role.SINK))
        lib.set_type_order(["src", "snk"])
        t = ArchitectureTemplate(lib, ["S", "T"])
        t.allow_edge("S", "T", failure_prob=q)
        return t

    def test_contactor_adds_series_term(self):
        t = self._template_with_failing_edge(0.3)
        arch = Architecture(t, [(0, 1)])
        prob = problem_from_architecture(arch, "T")
        assert failure_probability(prob) == pytest.approx(1 - 0.9 * 0.8 * 0.7)

    def test_perfect_contactor_unchanged(self):
        t = self._template_with_failing_edge(0.0)
        arch = Architecture(t, [(0, 1)])
        prob = problem_from_architecture(arch, "T")
        assert failure_probability(prob) == pytest.approx(1 - 0.9 * 0.8)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            self._template_with_failing_edge(1.5)

    def test_sibling_shorthand_incompatible_with_failing_edges(self):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("S", "src", failure_prob=0.1, role=Role.SOURCE))
        lib.add(ComponentSpec("B1", "bus", failure_prob=0.1))
        lib.add(ComponentSpec("B2", "bus", failure_prob=0.1))
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        lib.set_type_order(["src", "bus", "snk"])
        t = ArchitectureTemplate(lib, ["S", "B1", "B2", "T"])
        t.allow_edge("S", "B1", failure_prob=0.05)
        t.allow_bidirectional("B1", "B2")
        t.allow_edge("B2", "T")
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        arch = Architecture(t, [e("S", "B1"), e("B1", "B2"), e("B2", "T")])
        with pytest.raises(ValueError, match="sibling"):
            arch.expanded_graph()

    def test_redundant_contactors_improve_reliability(self):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("S", "src", failure_prob=0.0, role=Role.SOURCE))
        lib.add(ComponentSpec("M1", "mid", failure_prob=0.0))
        lib.add(ComponentSpec("M2", "mid", failure_prob=0.0))
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        lib.set_type_order(["src", "mid", "snk"])
        t = ArchitectureTemplate(lib, ["S", "M1", "M2", "T"])
        for m in ("M1", "M2"):
            t.allow_edge("S", m, failure_prob=0.1)
            t.allow_edge(m, "T", failure_prob=0.1)
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        single = Architecture(t, [e("S", "M1"), e("M1", "T")])
        double = Architecture(
            t, [e("S", "M1"), e("M1", "T"), e("S", "M2"), e("M2", "T")]
        )
        r1 = failure_probability(problem_from_architecture(single, "T"))
        r2 = failure_probability(problem_from_architecture(double, "T"))
        assert r1 == pytest.approx(1 - 0.81)
        assert r2 == pytest.approx((1 - 0.81) ** 2)
