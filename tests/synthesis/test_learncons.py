"""Unit tests for LEARNCONS internals: connected counts, ADDPATH targets,
FINDMINREDTYPE selection, saturation handling."""

import pytest

from repro.arch import Architecture
from repro.synthesis import learn_constraints
from repro.synthesis.learncons import (
    _connected_counts,
    _find_min_redundancy_type,
    _max_walk_lengths,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


def _arch(t, names):
    return Architecture(t, [(t.index_of(a), t.index_of(b)) for a, b in names])


class TestConnectedCounts:
    def test_single_chain(self):
        t = make_template(3)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts == {"gen": 1, "bus": 1, "load": 1}

    def test_two_disjoint_chains(self):
        t = make_template(3)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0"), ("G1", "B1"), ("B1", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["gen"] == 2 and counts["bus"] == 2

    def test_unconnected_components_not_counted(self):
        t = make_template(3)
        # G1->B1 exists but B1 has no edge to L0: gen G1 not counted.
        arch = _arch(t, [("G0", "B0"), ("B0", "L0"), ("G1", "B1")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["gen"] == 1

    def test_sink_counts_itself(self):
        t = make_template(2)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["load"] == 1


def _max_walk_lengths_for(t):
    n = t.num_types
    return {ctype: max(1, n - t.type_layer(ctype) + 1) for ctype in t.type_order}


class TestFindMinRedundancyType:
    def test_picks_minimum(self):
        counts = {"gen": 2, "bus": 1, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") == "bus"

    def test_skips_saturated(self):
        counts = {"gen": 1, "bus": 3, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") == "gen"

    def test_all_saturated_returns_none(self):
        counts = {"gen": 3, "bus": 3, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") is None

    def test_skip_excluded_even_if_minimal(self):
        counts = {"gen": 5, "load": 0}
        caps = {"gen": 6, "load": 4}
        assert _find_min_redundancy_type(counts, caps, ["gen", "load"],
                                         skip="load") == "gen"


class TestLearnConstraintsOutcome:
    def test_adds_constraints_when_below_target(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        before = enc.model.num_constrs
        outcome = learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6)
        assert outcome.added_constraints > 0
        assert not outcome.saturated
        assert enc.model.num_constrs > before
        # r/r* spans ~4 orders; rho ~ 2e-2 -> k = 2 paths estimated.
        assert outcome.estimated_k == 2

    def test_lazy_strategy_single_target(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        outcome = learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6,
                                    strategy="lazy")
        assert outcome.estimated_k == 0  # lazy never infers k
        assert outcome.added_constraints == 1  # one path, one sink

    def test_saturated_when_everything_connected(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=1e-12)
        enc = spec.build_encoder()
        # Fully redundant architecture: every allowed edge active.
        arch = Architecture(t, t.allowed_edges)
        outcome = learn_constraints(enc, spec, arch, r=1e-4, r_star=1e-12)
        assert outcome.saturated
        assert outcome.added_constraints == 0

    def test_learned_constraints_are_tagged(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6)
        tags = {c.tag for c in enc.model.constraints if c.tag.startswith("learned")}
        assert tags  # at least one learned.<type>.<sink> constraint
