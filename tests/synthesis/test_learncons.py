"""Unit tests for LEARNCONS internals: connected counts, ADDPATH targets,
FINDMINREDTYPE selection, saturation handling."""

import pytest

from repro.arch import Architecture
from repro.synthesis import SynthesisSpec, learn_constraints
from repro.synthesis.learncons import (
    _connected_counts,
    _find_min_redundancy_type,
    _max_walk_lengths,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


def _arch(t, names):
    return Architecture(t, [(t.index_of(a), t.index_of(b)) for a, b in names])


class TestConnectedCounts:
    def test_single_chain(self):
        t = make_template(3)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts == {"gen": 1, "bus": 1, "load": 1}

    def test_two_disjoint_chains(self):
        t = make_template(3)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0"), ("G1", "B1"), ("B1", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["gen"] == 2 and counts["bus"] == 2

    def test_unconnected_components_not_counted(self):
        t = make_template(3)
        # G1->B1 exists but B1 has no edge to L0: gen G1 not counted.
        arch = _arch(t, [("G0", "B0"), ("B0", "L0"), ("G1", "B1")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["gen"] == 1

    def test_sink_counts_itself(self):
        t = make_template(2)
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        counts = _connected_counts(arch, "L0", _max_walk_lengths_for(t))
        assert counts["load"] == 1


def _max_walk_lengths_for(t):
    n = t.num_types
    return {ctype: max(1, n - t.type_layer(ctype) + 1) for ctype in t.type_order}


class TestFindMinRedundancyType:
    def test_picks_minimum(self):
        counts = {"gen": 2, "bus": 1, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") == "bus"

    def test_skips_saturated(self):
        counts = {"gen": 1, "bus": 3, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") == "gen"

    def test_all_saturated_returns_none(self):
        counts = {"gen": 3, "bus": 3, "load": 1}
        caps = {"gen": 3, "bus": 3, "load": 1}
        assert _find_min_redundancy_type(counts, caps, ["gen", "bus", "load"],
                                         skip="load") is None

    def test_skip_excluded_even_if_minimal(self):
        counts = {"gen": 5, "load": 0}
        caps = {"gen": 6, "load": 4}
        assert _find_min_redundancy_type(counts, caps, ["gen", "load"],
                                         skip="load") == "gen"


class TestLearnConstraintsOutcome:
    def test_adds_constraints_when_below_target(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        before = enc.model.num_constrs
        outcome = learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6)
        assert outcome.added_constraints > 0
        assert not outcome.saturated
        assert enc.model.num_constrs > before
        # r/r* spans ~4 orders; rho ~ 2e-2 -> k = 2 paths estimated.
        assert outcome.estimated_k == 2

    def test_lazy_strategy_single_target(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        outcome = learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6,
                                    strategy="lazy")
        assert outcome.estimated_k == 0  # lazy never infers k
        assert outcome.added_constraints == 1  # one path, one sink

    def test_saturated_when_everything_connected(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=1e-12)
        enc = spec.build_encoder()
        # Fully redundant architecture: every allowed edge active.
        arch = Architecture(t, t.allowed_edges)
        outcome = learn_constraints(enc, spec, arch, r=1e-4, r_star=1e-12)
        assert outcome.saturated
        assert outcome.added_constraints == 0

    def test_learned_constraints_are_tagged(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-6)
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "B0"), ("B0", "L0")])
        learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6)
        tags = {c.tag for c in enc.model.constraints if c.tag.startswith("learned")}
        assert tags  # at least one learned.<type>.<sink> constraint


class TestSinkTypeSkip:
    """The sink's own type must be skipped wherever it sits in the
    partition order, not only when it happens to be last (regression:
    the k>=1 branch previously only dropped a *trailing* sink type)."""

    @staticmethod
    def _mid_sink_template(p=1e-2):
        # type_order = [gen, load, relay]: the sink L0 is load-typed, and
        # "load" sits in the MIDDLE of the partition order. L1 is a load
        # sibling with an allowed edge into L0, so an (incorrect)
        # load-redundancy constraint for L0 would actually be emitted.
        from repro.arch import ArchitectureTemplate, ComponentSpec, Library, Role

        lib = Library(switch_cost=1.0)
        for i in range(2):
            lib.add(ComponentSpec(f"G{i}", "gen", cost=50, capacity=100,
                                  failure_prob=p, role=Role.SOURCE))
            lib.add(ComponentSpec(f"L{i}", "load", cost=10, failure_prob=p,
                                  demand=10 if i == 0 else 0,
                                  role=Role.SINK if i == 0 else Role.INTERMEDIATE))
            lib.add(ComponentSpec(f"R{i}", "relay", cost=5, failure_prob=p))
        lib.set_type_order(["gen", "load", "relay"])
        t = ArchitectureTemplate(lib, ["G0", "G1", "L0", "L1", "R0", "R1"])
        for i in range(2):
            for j in range(2):
                t.allow_edge(f"G{i}", f"L{j}")
                t.allow_edge(f"L{i}", f"R{j}")
        t.allow_edge("L1", "L0")
        return t

    def test_mid_order_sink_type_not_enforced_k1(self):
        from repro.synthesis.spec import RequireIncomingEdge

        t = self._mid_sink_template()
        spec = SynthesisSpec(
            template=t,
            requirements=[RequireIncomingEdge(nodes=["L0"], k=1)],
            reliability_target=1e-6,
        )
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "L0")])
        outcome = learn_constraints(enc, spec, arch, r=2e-2, r_star=1e-6)
        assert outcome.estimated_k >= 1  # exercises the k>=1 branch
        assert outcome.added_constraints > 0
        tags = {c.tag for c in enc.model.constraints
                if c.tag.startswith("learned")}
        assert any(tag.startswith("learned.gen.") for tag in tags)
        # The sink's own type must not be enforced, even mid-order.
        assert not any(tag.startswith("learned.load.") for tag in tags)

    def test_mid_order_sink_type_not_enforced_k0(self):
        from repro.synthesis.spec import RequireIncomingEdge

        t = self._mid_sink_template()
        spec = SynthesisSpec(
            template=t,
            requirements=[RequireIncomingEdge(nodes=["L0"], k=1)],
            reliability_target=1e-6,
        )
        enc = spec.build_encoder()
        arch = _arch(t, [("G0", "L0")])
        # r barely above target: the fine-tuning (k == 0) branch.
        learn_constraints(enc, spec, arch, r=2e-6, r_star=1e-6)
        tags = {c.tag for c in enc.model.constraints
                if c.tag.startswith("learned")}
        assert not any(tag.startswith("learned.load.") for tag in tags)
