"""Tests for GENILP encoding: eq. 1 objective, delta linking, requirement
objects (eqs. 2-4), and decode round-trips."""

import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.synthesis import (
    ArchitectureEncoder,
    ConnectionBound,
    ForbidEdge,
    GlobalPowerAdequacy,
    IfConnectedThenConnected,
    IfFeedsThenFed,
    NodeBalance,
    RequireEdge,
    RequireIncomingEdge,
    SymmetryBreaking,
    SynthesisSpec,
)


def make_template():
    lib = Library(switch_cost=10.0)
    lib.add(ComponentSpec("G1", "gen", cost=100, capacity=60, role=Role.SOURCE,
                          failure_prob=1e-3))
    lib.add(ComponentSpec("G2", "gen", cost=100, capacity=40, role=Role.SOURCE,
                          failure_prob=1e-3))
    lib.add(ComponentSpec("B1", "bus", cost=200, failure_prob=1e-3))
    lib.add(ComponentSpec("B2", "bus", cost=200, failure_prob=1e-3))
    lib.add(ComponentSpec("L1", "load", demand=30, role=Role.SINK))
    lib.add(ComponentSpec("L2", "load", demand=20, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    t = ArchitectureTemplate(lib, ["G1", "G2", "B1", "B2", "L1", "L2"])
    for g in ("G1", "G2"):
        for b in ("B1", "B2"):
            t.allow_edge(g, b)
    for b in ("B1", "B2"):
        for l in ("L1", "L2"):
            t.allow_edge(b, l)
    t.allow_bidirectional("B1", "B2")
    return t


class TestEncoderObjective:
    def test_minimal_model_objective_is_zero_when_empty_allowed(self):
        t = make_template()
        enc = ArchitectureEncoder(t)
        res = enc.solve(backend="scipy")
        assert res.is_optimal
        assert res.objective == 0.0  # no requirement: empty architecture

    def test_cost_matches_architecture_cost(self):
        """Solver objective must equal eq. 1 evaluated on the decoded arch."""
        t = make_template()
        spec = SynthesisSpec(
            template=t,
            requirements=[
                RequireIncomingEdge(nodes=["L1", "L2"], k=1),
                IfFeedsThenFed(via=["B1", "B2"], downstream=["L1", "L2"],
                               upstream=["G1", "G2"]),
            ],
        )
        enc = spec.build_encoder()
        res = enc.solve(backend="scipy")
        assert res.is_optimal
        arch = enc.decode(res)
        assert res.objective == pytest.approx(arch.cost())

    def test_switch_charged_once_for_bidirectional_pair(self):
        t = make_template()
        enc = ArchitectureEncoder(t)
        enc.model.add_constr(enc.edge_var("B1", "B2") >= 1)
        enc.model.add_constr(enc.edge_var("B2", "B1") >= 1)
        res = enc.solve(backend="scipy")
        arch = enc.decode(res)
        # one switch pair + two bus components
        assert res.objective == pytest.approx(200 + 200 + 10)
        assert arch.num_switches() == 1

    def test_delta_pruning(self):
        t = make_template()
        enc = ArchitectureEncoder(t)
        enc.model.add_constr(enc.edge_var("G1", "B1") >= 1)
        res = enc.solve(backend="scipy")
        g2 = t.index_of("G2")
        assert res[enc.delta[g2]] == 0.0
        assert res[enc.delta[t.index_of("G1")]] == 1.0

    def test_decode_requires_values(self):
        t = make_template()
        enc = ArchitectureEncoder(t)
        enc.model.add_constr(enc.edge_var("G1", "B1") >= 2)  # infeasible
        res = enc.solve(backend="scipy")
        with pytest.raises(ValueError):
            enc.decode(res)


class TestRequirements:
    def _solve(self, *requirements, maximize_edges=False):
        t = make_template()
        spec = SynthesisSpec(template=t, requirements=list(requirements))
        enc = spec.build_encoder()
        res = enc.solve(backend="scipy")
        return t, enc, res

    def test_connection_bound_at_least_per_dest(self):
        t, enc, res = self._solve(
            ConnectionBound(sources=["G1", "G2"], dests=["B1"], k=2, per="dest")
        )
        assert res.is_optimal
        assert res[enc.edge_var("G1", "B1")] == 1.0
        assert res[enc.edge_var("G2", "B1")] == 1.0

    def test_connection_bound_exact_total(self):
        t, enc, res = self._solve(
            ConnectionBound(sources=["G1", "G2"], dests=["B1", "B2"], k=3,
                            sense="==", per="total")
        )
        active = sum(
            res[enc.edge_var(g, b)] for g in ("G1", "G2") for b in ("B1", "B2")
        )
        assert active == 3.0

    def test_connection_bound_at_most(self):
        t, enc, res = self._solve(
            RequireIncomingEdge(nodes=["L1"], k=1),
            ConnectionBound(sources=["B1", "B2"], dests=["L1"], k=1,
                            sense="<=", per="dest"),
        )
        total = res[enc.edge_var("B1", "L1")] + res[enc.edge_var("B2", "L1")]
        assert total == 1.0

    def test_connection_bound_only_if_used(self):
        t, enc, res = self._solve(
            RequireEdge("B1", "L1"),
            ConnectionBound(sources=["G1", "G2"], dests=["B1", "B2"], k=1,
                            per="dest", only_if_used=True),
        )
        # B1 used -> needs a generator; B2 unused -> no obligation.
        assert res[enc.edge_var("G1", "B1")] + res[enc.edge_var("G2", "B1")] >= 1.0
        assert res[enc.delta[t.index_of("B2")]] == 0.0

    def test_unsatisfiable_bound_raises_at_build(self):
        t = make_template()
        with pytest.raises(ValueError):
            SynthesisSpec(
                template=t,
                requirements=[
                    ConnectionBound(sources=["L1"], dests=["G1"], k=1, per="dest")
                ],
            ).build_encoder()

    def test_if_connected_then_connected(self):
        # G->B edge forces B->(load) edge.
        t, enc, res = self._solve(
            RequireEdge("G1", "B1"),
            IfConnectedThenConnected(upstream=["G1", "G2"], via=["B1", "B2"],
                                     downstream=["L1", "L2"]),
        )
        outs = res[enc.edge_var("B1", "L1")] + res[enc.edge_var("B1", "L2")]
        assert outs >= 1.0

    def test_if_feeds_then_fed(self):
        t, enc, res = self._solve(
            RequireEdge("B1", "L1"),
            IfFeedsThenFed(via=["B1", "B2"], downstream=["L1", "L2"],
                           upstream=["G1", "G2"]),
        )
        ins = res[enc.edge_var("G1", "B1")] + res[enc.edge_var("G2", "B1")]
        assert ins >= 1.0

    def test_node_balance(self):
        # B1 feeds both loads (total 50): needs >= 50 of generation in.
        t, enc, res = self._solve(
            RequireEdge("B1", "L1"),
            RequireEdge("B1", "L2"),
            NodeBalance("B1"),
        )
        supply = 60 * res[enc.edge_var("G1", "B1")] + 40 * res[enc.edge_var("G2", "B1")]
        assert supply >= 50.0

    def test_global_power_adequacy(self):
        t, enc, res = self._solve(GlobalPowerAdequacy())
        # total demand 50 -> G1 (60) alone suffices and is cheapest usage
        total = sum(
            t.spec(i).capacity * res[enc.delta[i]] for i in range(t.num_nodes)
        )
        assert total >= 50.0

    def test_forbid_edge(self):
        t, enc, res = self._solve(
            RequireIncomingEdge(nodes=["L1"], k=1),
            ForbidEdge("B1", "L1"),
        )
        assert res[enc.edge_var("B1", "L1")] == 0.0
        assert res[enc.edge_var("B2", "L1")] == 1.0

    def test_symmetry_breaking_orders_usage(self):
        t = make_template()
        t.declare_interchangeable(["B1", "B2"])
        spec = SynthesisSpec(
            template=t,
            requirements=[RequireIncomingEdge(nodes=["L1"], k=1), SymmetryBreaking()],
        )
        enc = spec.build_encoder()
        res = enc.solve(backend="scipy")
        assert res.is_optimal
        # in-degree ordering must hold: indeg(B1) >= indeg(B2)
        in1 = sum(res[v] for v in enc.in_edge_vars("B1"))
        in2 = sum(res[v] for v in enc.in_edge_vars("B2"))
        assert in1 >= in2

    def test_spec_sinks_default_and_override(self):
        t = make_template()
        spec = SynthesisSpec(template=t)
        assert spec.sinks() == ["L1", "L2"]
        spec2 = SynthesisSpec(template=t, sinks_of_interest=["L2"])
        assert spec2.sinks() == ["L2"]
