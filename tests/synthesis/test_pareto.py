"""Tests for the cost/reliability design-space exploration."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.synthesis import SynthesisResult, SynthesisSpec
from repro.synthesis.pareto import (
    TradeoffPoint,
    cheapest_under_target,
    explore_tradeoff,
    most_reliable_under_budget,
    pareto_front,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


@pytest.fixture(scope="module")
def sweep():
    t = make_template(4, p=1e-2)
    spec = make_spec(t, r_star=None)
    return spec, explore_tradeoff(
        spec, levels=[0.5, 1e-3, 1e-5], algorithm="ar", backend="scipy"
    )


class TestExploreTradeoff:
    def test_levels_sorted_loose_to_tight(self, sweep):
        _, points = sweep
        r_stars = [p.r_star for p in points]
        assert r_stars == sorted(r_stars, reverse=True)

    def test_costs_nondecreasing(self, sweep):
        _, points = sweep
        costs = [p.cost for p in points if p.feasible]
        assert costs == sorted(costs)

    def test_all_feasible_levels_meet_requirement_approximately(self, sweep):
        _, points = sweep
        for p in points:
            if p.feasible:
                assert p.result.approx_reliability <= p.r_star * (1 + 1e-9)

    def test_infeasible_levels_reported(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=None)
        points = explore_tradeoff(spec, [0.5, 1e-12], algorithm="ar",
                                  backend="scipy")
        feasibility = {p.r_star: p.feasible for p in points}
        assert feasibility[0.5] is True
        assert feasibility[1e-12] is False

    def test_mr_algorithm_supported(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=None)
        points = explore_tradeoff(spec, [1e-3], algorithm="mr", backend="scipy")
        assert points[0].feasible
        assert points[0].reliability <= 1e-3

    def test_unknown_algorithm_rejected(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=None)
        with pytest.raises(ValueError):
            explore_tradeoff(spec, [1e-3], algorithm="simulated-annealing")


class TestParetoFront:
    def test_front_is_nondominated(self, sweep):
        _, points = sweep
        front = pareto_front(points)
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.cost <= a.cost and b.reliability <= a.reliability
                    and (b.cost < a.cost or b.reliability < a.reliability)
                )
                assert not dominates

    def test_front_sorted_by_cost(self, sweep):
        _, points = sweep
        front = pareto_front(points)
        costs = [p.cost for p in front]
        assert costs == sorted(costs)

    def test_front_reliability_decreases_with_cost(self, sweep):
        _, points = sweep
        front = pareto_front(points)
        rels = [p.reliability for p in front]
        assert rels == sorted(rels, reverse=True)

    def test_duplicates_collapsed(self, sweep):
        _, points = sweep
        duplicated = list(points) + list(points)
        assert len(pareto_front(duplicated)) == len(pareto_front(points))


def _synthetic_point(cost, reliability, r_star=1e-3):
    return TradeoffPoint(
        r_star=r_star,
        result=SynthesisResult(
            status="optimal", architecture=None, cost=cost,
            reliability=reliability,
        ),
    )


#: A mix of dominated, non-dominated and duplicate designs; the front is
#: exactly [(1, 1e-2), (2, 1e-3), (4, 1e-5)].
_SYNTHETIC_POINTS = [
    _synthetic_point(1.0, 1e-2),
    _synthetic_point(2.0, 1e-3),
    _synthetic_point(2.0, 1e-3),   # duplicate of the previous design
    _synthetic_point(3.0, 1e-3),   # dominated (same r, higher cost)
    _synthetic_point(4.0, 1e-5),
    _synthetic_point(5.0, 1e-4),   # dominated by (4, 1e-5)
]
_EXPECTED_FRONT = [(1.0, 1e-2), (2.0, 1e-3), (4.0, 1e-5)]


class TestParetoFrontOrderInvariance:
    @given(perm=st.permutations(_SYNTHETIC_POINTS))
    def test_front_invariant_under_input_ordering(self, perm):
        front = pareto_front(perm)
        assert [(p.cost, p.reliability) for p in front] == _EXPECTED_FRONT

    def test_front_invariant_under_engine_parallelism(self, tmp_path):
        # Completion order in a pool is nondeterministic; the front must
        # not depend on it.
        from repro.engine import requirement_sweep, run_batch, tradeoff_points

        spec = make_spec(make_template(2, p=1e-2), r_star=None)
        batch = requirement_sweep(spec, [0.5, 1e-3], algorithm="ar",
                                  backend="scipy")
        fronts = []
        for jobs in (1, 2):
            points = tradeoff_points(run_batch(batch, jobs=jobs).results)
            fronts.append([(p.cost, p.reliability) for p in pareto_front(points)])
        assert fronts[0] == fronts[1]


class TestQueries:
    def test_cheapest_under_target(self, sweep):
        _, points = sweep
        choice = cheapest_under_target(points, 1e-2)
        assert choice is not None
        assert choice.reliability <= 1e-2
        cheaper = [
            p for p in points
            if p.feasible and p.reliability is not None
            and p.reliability <= 1e-2 and p.cost < choice.cost
        ]
        assert not cheaper

    def test_cheapest_under_impossible_target(self, sweep):
        _, points = sweep
        assert cheapest_under_target(points, 1e-30) is None

    def test_most_reliable_under_budget(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=None)
        # generous budget: should reach a redundant design
        generous = most_reliable_under_budget(
            spec, budget=1e5, algorithm="ar", backend="scipy", iterations=8
        )
        assert generous is not None and generous.feasible
        # tight budget: only the minimal single-chain design fits
        tight = most_reliable_under_budget(
            spec, budget=150.0, algorithm="ar", backend="scipy", iterations=8
        )
        assert tight is not None
        assert tight.cost <= 150.0
        assert generous.reliability <= tight.reliability

    def test_budget_below_minimal_cost(self):
        t = make_template(2, p=1e-2)
        spec = make_spec(t, r_star=None)
        assert most_reliable_under_budget(
            spec, budget=1.0, algorithm="ar", backend="scipy", iterations=4
        ) is None


class TestParetoDedupTolerance:
    """Near-duplicate points (relative differences below _DEDUP_REL_TOL in
    either coordinate) must collapse to one front entry."""

    def test_near_duplicate_cost_collapses(self):
        points = [
            _synthetic_point(2.0, 1e-3),
            _synthetic_point(2.0 * (1 + 1e-12), 1e-3),
        ]
        assert len(pareto_front(points)) == 1

    def test_near_duplicate_reliability_collapses(self):
        points = [
            _synthetic_point(2.0, 1e-3),
            _synthetic_point(2.0, 1e-3 * (1 + 1e-12)),
        ]
        assert len(pareto_front(points)) == 1

    def test_distinct_points_survive(self):
        points = [
            _synthetic_point(2.0, 1e-3),
            _synthetic_point(2.0, 1e-3 * (1 + 1e-6)),  # well above tol
        ]
        # The strictly better point dominates; only one remains -- but via
        # domination, not dedup. Make them incomparable instead:
        points = [
            _synthetic_point(2.0, 1e-3),
            _synthetic_point(3.0, 1e-4),
        ]
        assert len(pareto_front(points)) == 2

    @given(
        eps_cost=st.floats(min_value=0.0, max_value=1e-10),
        eps_rel=st.floats(min_value=0.0, max_value=1e-10),
    )
    def test_tiny_joint_perturbations_always_collapse(self, eps_cost, eps_rel):
        base = _synthetic_point(2.0, 1e-3)
        wobble = _synthetic_point(2.0 * (1 + eps_cost), 1e-3 * (1 + eps_rel))
        front = pareto_front([base, wobble])
        assert len(front) == 1

    @given(perm=st.permutations([
        _synthetic_point(1.0, 1e-2),
        _synthetic_point(1.0 * (1 + 1e-13), 1e-2),
        _synthetic_point(1.0, 1e-2 * (1 + 1e-13)),
        _synthetic_point(4.0, 1e-5),
    ]))
    def test_near_duplicates_invariant_under_ordering(self, perm):
        front = pareto_front(perm)
        assert len(front) == 2  # one (1, 1e-2)-cluster point + (4, 1e-5)
