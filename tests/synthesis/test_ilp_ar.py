"""Tests for ILP-AR (Algorithm 3): encoding eqs. 9-11 and the solved
architectures' redundancy degrees."""

import pytest

from repro.reliability import approximate_failure, worst_case_failure
from repro.synthesis import (
    synthesize_ilp_ar,
    synthesize_ilp_mr,
    template_jointly_implements,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


class TestTemplateJointlyImplements:
    def test_layered_template_all_types(self):
        t = make_template(3)
        assert template_jointly_implements(t, "L0") == ["gen", "bus", "load"]

    def test_unreachable_sink(self):
        t = make_template(2)
        # L0 with no allowed in-edges: strip them by rebuilding minimal.
        from repro.arch import ArchitectureTemplate

        t2 = ArchitectureTemplate(t.library, ["G0", "B0", "L0"])
        t2.allow_edge("G0", "B0")  # no edge into L0
        assert template_jointly_implements(t2, "L0") == []


class TestIlpArSynthesis:
    def test_loose_target_minimal_architecture(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_ar(make_spec(t, r_star=0.5), backend="scipy")
        assert res.feasible
        # single chain: one gen, one bus
        profile = approximate_failure(res.architecture, "L0").redundancy
        assert profile == {"gen": 1, "bus": 1, "load": 1}

    def test_tight_target_forces_h2(self):
        t = make_template(3, p=1e-2)
        # r~ with h=1: ~2e-2; with h=2: 2*2*(1e-2)^2 = 4e-4. Target between.
        res = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert res.feasible
        profile = approximate_failure(res.architecture, "L0").redundancy
        assert profile["gen"] >= 2 and profile["bus"] >= 2
        assert res.approx_reliability <= 1e-3

    def test_r_tilde_satisfies_target(self):
        t = make_template(4, p=1e-2)
        for r_star in (0.5, 1e-3, 1e-5):
            res = synthesize_ilp_ar(make_spec(t, r_star=r_star), backend="scipy")
            assert res.feasible, r_star
            assert res.approx_reliability <= r_star * (1 + 1e-9)

    def test_cost_monotone_in_target(self):
        t = make_template(4, p=1e-2)
        costs = []
        for r_star in (0.5, 1e-3, 1e-5):
            res = synthesize_ilp_ar(make_spec(t, r_star=r_star), backend="scipy")
            costs.append(res.cost)
        assert costs[0] <= costs[1] <= costs[2]
        assert costs[0] < costs[2]

    def test_infeasible_when_insufficient_redundancy(self):
        t = make_template(2, p=1e-2)
        # Best possible: h=2 for gens and buses -> r~ ~ 4e-4. Demand 1e-9.
        res = synthesize_ilp_ar(make_spec(t, r_star=1e-9), backend="scipy")
        assert res.status == "infeasible"

    def test_verify_false_skips_analysis(self):
        t = make_template(2, p=1e-2)
        res = synthesize_ilp_ar(make_spec(t, r_star=0.5), backend="scipy",
                                verify=False)
        assert res.feasible
        assert res.reliability is None
        assert res.approx_reliability is None

    def test_missing_target_rejected(self):
        t = make_template(2)
        with pytest.raises(ValueError):
            synthesize_ilp_ar(make_spec(t, r_star=None))

    def test_single_solve_no_iterations(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert res.iterations == []  # eager one-shot algorithm

    def test_exact_r_within_theorem2_optimism(self):
        """The exact r of the ILP-AR result may exceed r*, but only within
        the Theorem 2 bound (the paper's Fig. 3c phenomenon)."""
        t = make_template(4, p=1e-2)
        r_star = 1e-5
        res = synthesize_ilp_ar(make_spec(t, r_star=r_star), backend="scipy")
        approx = approximate_failure(res.architecture, "L0")
        assert approx.guaranteed_upper_bound(res.reliability)

    def test_model_stats_reported(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert res.model_stats["constraints"] > 10
        assert res.setup_time >= 0.0


class TestMrVsArAgreement:
    def test_both_algorithms_meet_the_same_target(self):
        t = make_template(3, p=1e-2)
        r_star = 1e-3
        mr = synthesize_ilp_mr(make_spec(t, r_star=r_star), backend="scipy")
        ar = synthesize_ilp_ar(make_spec(t, r_star=r_star), backend="scipy")
        assert mr.feasible and ar.feasible
        assert mr.reliability <= r_star
        # AR is approximate: its exact r may exceed r* within Theorem 2,
        # but must be in the same order of magnitude.
        assert ar.reliability <= 10 * r_star

    def test_ar_cost_close_to_mr_cost(self):
        t = make_template(3, p=1e-2)
        mr = synthesize_ilp_mr(make_spec(t, r_star=1e-3), backend="scipy")
        ar = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert ar.cost <= mr.cost * 1.5 + 1e-9
        assert mr.cost <= ar.cost * 1.5 + 1e-9
