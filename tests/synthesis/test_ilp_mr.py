"""Tests for ILP-MR (Algorithm 1) and LEARNCONS (Algorithm 2)."""

import math

import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.reliability import worst_case_failure
from repro.synthesis import (
    IfFeedsThenFed,
    RequireIncomingEdge,
    SynthesisSpec,
    estimate_paths,
    synthesize_ilp_mr,
)


def make_template(n_per_layer=3, p=1e-2):
    """Layered gen -> bus -> load template with full cross connectivity."""
    lib = Library(switch_cost=1.0)
    for i in range(n_per_layer):
        lib.add(ComponentSpec(f"G{i}", "gen", cost=50, capacity=100,
                              failure_prob=p, role=Role.SOURCE))
        lib.add(ComponentSpec(f"B{i}", "bus", cost=20, failure_prob=p))
    lib.add(ComponentSpec("L0", "load", demand=10, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    names = [f"G{i}" for i in range(n_per_layer)] + [
        f"B{i}" for i in range(n_per_layer)
    ] + ["L0"]
    t = ArchitectureTemplate(lib, names)
    for i in range(n_per_layer):
        for j in range(n_per_layer):
            t.allow_edge(f"G{i}", f"B{j}")
        t.allow_edge(f"B{i}", "L0")
    return t


def make_spec(t, r_star):
    gens = [n for n in (s.name for s in t.library) if n.startswith("G")]
    buses = [n for n in (s.name for s in t.library) if n.startswith("B")]
    return SynthesisSpec(
        template=t,
        requirements=[
            RequireIncomingEdge(nodes=["L0"], k=1),
            IfFeedsThenFed(via=buses, downstream=["L0"], upstream=gens),
        ],
        reliability_target=r_star,
    )


class TestEstimatePaths:
    def test_paper_eps_case(self):
        """Fig. 2 narrative: r = 6e-4, rho = 8e-4, r* = 2e-10 gives k = 2."""
        assert estimate_paths(6e-4, 2e-10, 8e-4) == 2

    def test_our_minimal_eps_case(self):
        assert estimate_paths(8e-4, 2e-10, 8e-4) == 2

    def test_already_satisfied(self):
        assert estimate_paths(1e-12, 1e-10, 1e-3) == 0

    def test_fine_tuning_returns_zero(self):
        # r slightly above r*: less than one path factor away.
        assert estimate_paths(2.8e-10, 2e-10, 8e-4) == 0

    def test_degenerate_rho(self):
        assert estimate_paths(1e-3, 1e-9, 0.0) == 0
        assert estimate_paths(1e-3, 1e-9, 1.0) == 0

    def test_zero_r(self):
        assert estimate_paths(0.0, 1e-9, 1e-3) == 0


class TestIlpMrLoop:
    def test_loose_target_single_iteration(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=0.5), backend="scipy")
        assert res.feasible
        assert res.num_iterations == 1
        assert res.reliability <= 0.5

    def test_tight_target_forces_redundancy(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-4), backend="scipy")
        assert res.feasible
        assert res.num_iterations >= 2
        assert res.reliability <= 1e-4
        # Redundancy costs more than the minimal single chain.
        assert res.cost > res.iterations[0].cost

    def test_result_architecture_satisfies_target_exactly_by_analysis(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-4), backend="scipy")
        r, _ = worst_case_failure(res.architecture, ["L0"])
        assert r == pytest.approx(res.reliability)
        assert r <= 1e-4

    def test_infeasible_when_template_lacks_redundancy(self):
        # 1 gen + 1 bus: max achievable reliability ~ 2p; demand 1e-9 fails.
        t = make_template(1, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-9), backend="scipy")
        assert res.status == "infeasible"
        assert not res.feasible

    def test_iteration_trace_monotone_reliability(self):
        t = make_template(4, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-5), backend="scipy")
        rs = [it.reliability for it in res.iterations]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(rs, rs[1:])), rs

    def test_lazy_strategy_needs_at_least_as_many_iterations(self):
        t = make_template(4, p=1e-2)
        fast = synthesize_ilp_mr(make_spec(t, r_star=1e-5), strategy="learncons",
                                 backend="scipy")
        slow = synthesize_ilp_mr(make_spec(t, r_star=1e-5), strategy="lazy",
                                 backend="scipy")
        assert fast.feasible and slow.feasible
        assert slow.num_iterations >= fast.num_iterations
        # Both meet the requirement.
        assert slow.reliability <= 1e-5 and fast.reliability <= 1e-5

    def test_missing_target_rejected(self):
        t = make_template(2)
        spec = make_spec(t, r_star=None)
        with pytest.raises(ValueError):
            synthesize_ilp_mr(spec)

    def test_costs_never_decrease_across_iterations(self):
        t = make_template(4, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-5), backend="scipy")
        costs = [it.cost for it in res.iterations]
        assert all(b >= a - 1e-6 for a, b in zip(costs, costs[1:])), costs

    def test_own_bnb_backend_on_small_instance(self):
        t = make_template(2, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-3), backend="bnb")
        assert res.feasible
        assert res.reliability <= 1e-3

    def test_model_stats_populated(self):
        t = make_template(2, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=0.5), backend="scipy")
        assert res.model_stats["variables"] > 0
        assert res.model_stats["constraints"] > 0

    def test_summary_renders(self):
        t = make_template(2, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=0.5), backend="scipy")
        text = res.summary()
        assert "ILP-MR" in text and "iter 1" in text


class TestIterationTiming:
    """IterationRecord timing fields reconcile with the result aggregates."""

    def test_per_iteration_times_positive_and_sum_to_aggregates(self):
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_mr(make_spec(t, r_star=1e-4), backend="scipy")
        assert res.feasible and res.num_iterations >= 2
        for record in res.iterations:
            assert record.solver_time > 0.0
            assert record.analysis_time > 0.0
        assert sum(r.solver_time for r in res.iterations) == pytest.approx(
            res.solver_time
        )
        assert sum(r.analysis_time for r in res.iterations) == pytest.approx(
            res.analysis_time
        )
        # setup + per-iteration solver/analysis account for total_time.
        accounted = res.setup_time + res.solver_time + res.analysis_time
        assert accounted == pytest.approx(res.total_time)

    def test_eps_paper_template_iteration_timing(self):
        from repro.eps import eps_requirements, paper_template
        from repro.synthesis import SynthesisSpec

        template = paper_template()
        spec = SynthesisSpec(
            template=template,
            requirements=eps_requirements(template),
            reliability_target=2e-4,
        )
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        assert all(r.solver_time > 0 and r.analysis_time > 0
                   for r in res.iterations)
        assert res.setup_time + sum(
            r.solver_time + r.analysis_time for r in res.iterations
        ) == pytest.approx(res.total_time)


class TestWarmStart:
    """Warm-vs-cold equivalence of the full ILP-MR loop (acceptance check)."""

    def test_warm_and_cold_reach_identical_result_bnb(self):
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-4)
        warm = synthesize_ilp_mr(spec, backend="bnb", warm=True)
        cold = synthesize_ilp_mr(spec, backend="bnb", warm=False)
        assert warm.status == cold.status == "optimal"
        assert warm.cost == cold.cost  # bit-identical optimal cost
        assert warm.num_iterations == cold.num_iterations
        assert warm.reliability == pytest.approx(cold.reliability)

    def test_warm_and_cold_agree_on_eps_instance(self):
        from repro.eps import build_eps_template, eps_spec

        spec = eps_spec(
            build_eps_template(num_generators=2), reliability_target=1e-3
        )
        warm = synthesize_ilp_mr(spec, backend="bnb", warm=True)
        cold = synthesize_ilp_mr(spec, backend="bnb", warm=False)
        assert warm.status == cold.status == "optimal"
        assert warm.cost == cold.cost

    def test_warm_flag_works_with_scipy_backend(self):
        # scipy has no warm interface; the flag must still be accepted and
        # only change export behavior, not results.
        t = make_template(3, p=1e-2)
        spec = make_spec(t, r_star=1e-4)
        warm = synthesize_ilp_mr(spec, backend="scipy", warm=True)
        cold = synthesize_ilp_mr(spec, backend="scipy", warm=False)
        assert warm.status == cold.status == "optimal"
        assert warm.cost == cold.cost
