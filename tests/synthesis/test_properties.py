"""Property-based tests for the synthesis algorithms' contracts.

Theorem 1 (ILP-MR soundness and completeness) and Theorem 3 (ILP-AR)
translate into machine-checkable properties:

* soundness — a returned architecture satisfies every interconnection
  requirement and (for MR/TSE) the reliability requirement exactly;
* completeness — UNFEASIBLE is returned only when even the *maximal*
  configuration (every allowed edge active) misses the requirement.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.reliability import worst_case_failure
from repro.synthesis import (
    IfFeedsThenFed,
    RequireIncomingEdge,
    SynthesisSpec,
    synthesize_ilp_ar,
    synthesize_ilp_mr,
)


@st.composite
def random_spec(draw):
    """Random small layered gen->bus->load synthesis problems."""
    n_gen = draw(st.integers(1, 3))
    n_bus = draw(st.integers(1, 3))
    p = draw(st.sampled_from([1e-3, 1e-2, 5e-2]))
    lib = Library(switch_cost=draw(st.sampled_from([0.0, 1.0, 10.0])))
    for i in range(n_gen):
        lib.add(ComponentSpec(f"G{i}", "gen", cost=10, capacity=100,
                              failure_prob=p, role=Role.SOURCE))
    for i in range(n_bus):
        lib.add(ComponentSpec(f"B{i}", "bus", cost=5, failure_prob=p))
    lib.add(ComponentSpec("L0", "load", demand=10, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    names = [f"G{i}" for i in range(n_gen)] + [f"B{i}" for i in range(n_bus)] + ["L0"]
    t = ArchitectureTemplate(lib, names)
    # random allowed edges, at least one full chain guaranteed
    t.allow_edge("G0", "B0")
    t.allow_edge("B0", "L0")
    for i in range(n_gen):
        for j in range(n_bus):
            if (i, j) != (0, 0) and draw(st.booleans()):
                t.allow_edge(f"G{i}", f"B{j}")
    for j in range(1, n_bus):
        if draw(st.booleans()):
            t.allow_edge(f"B{j}", "L0")
    r_star = draw(st.sampled_from([0.5, 1e-2, 1e-4, 1e-7, 1e-12]))
    spec = SynthesisSpec(
        template=t,
        requirements=[
            RequireIncomingEdge(nodes=["L0"], k=1),
            IfFeedsThenFed(via=[f"B{j}" for j in range(n_bus)],
                           downstream=["L0"],
                           upstream=[f"G{i}" for i in range(n_gen)]),
        ],
        reliability_target=r_star,
    )
    return spec


@given(random_spec())
@settings(max_examples=25, deadline=None)
def test_ilp_mr_sound_and_complete(spec):
    result = synthesize_ilp_mr(spec, backend="scipy")
    maximal = Architecture(spec.template, spec.template.allowed_edges)
    r_max, _ = worst_case_failure(maximal, spec.sinks())

    if result.feasible:
        # Soundness: reliability requirement met exactly.
        r, _ = worst_case_failure(result.architecture, spec.sinks())
        assert r <= spec.reliability_target * (1 + 1e-9)
        # Load is connected per the interconnection requirements.
        sink_idx = spec.template.index_of("L0")
        assert any(j == sink_idx for (_, j) in result.architecture.edges)
    else:
        # Completeness (Theorem 1): even the maximal architecture fails.
        assert r_max > spec.reliability_target


@given(random_spec())
@settings(max_examples=20, deadline=None)
def test_ilp_ar_soundness_on_its_own_metric(spec):
    from repro.reliability import approximate_failure

    result = synthesize_ilp_ar(spec, backend="scipy")
    if result.feasible:
        # The algebra's estimate of the returned architecture meets r*.
        for sink in spec.sinks():
            approx = approximate_failure(result.architecture, sink)
            assert approx.r_tilde <= spec.reliability_target * (1 + 1e-6)


@given(random_spec())
@settings(max_examples=15, deadline=None)
def test_mr_never_cheaper_than_interconnection_minimum(spec):
    """Reliability constraints can only increase the optimal cost."""
    base = SynthesisSpec(
        template=spec.template,
        requirements=list(spec.requirements),
        reliability_target=None,
    )
    enc = base.build_encoder()
    unconstrained = enc.solve(backend="scipy")
    assert unconstrained.is_optimal
    result = synthesize_ilp_mr(spec, backend="scipy")
    if result.feasible:
        assert result.cost >= unconstrained.objective - 1e-6
