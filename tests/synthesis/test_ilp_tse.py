"""Tests for ILP-TSE — the truncated exact encoding baseline."""

import pytest

from repro.reliability import worst_case_failure
from repro.synthesis import (
    synthesize_ilp_ar,
    synthesize_ilp_tse,
    truncation_tail,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


class TestTruncationTail:
    def test_zero_components(self):
        assert truncation_tail([], 2) == 0.0

    def test_order_covers_everything(self):
        assert truncation_tail([0.5, 0.5], 2) == pytest.approx(0.0, abs=1e-15)

    def test_single_component_order_zero(self):
        # tail = P(more than 0 fail) = p
        assert truncation_tail([0.3], 0) == pytest.approx(0.3)

    def test_two_component_order_one(self):
        # tail = P(both fail) = p^2
        assert truncation_tail([0.1, 0.1], 1) == pytest.approx(0.01)

    def test_poisson_binomial(self):
        probs = [0.1, 0.2, 0.3]
        # P(>1 failure) computed by hand: 1 - P(0) - P(1)
        p0 = 0.9 * 0.8 * 0.7
        p1 = 0.1 * 0.8 * 0.7 + 0.9 * 0.2 * 0.7 + 0.9 * 0.8 * 0.3
        assert truncation_tail(probs, 1) == pytest.approx(1 - p0 - p1)

    def test_monotone_in_order(self):
        probs = [0.05] * 6
        tails = [truncation_tail(probs, k) for k in range(4)]
        assert tails == sorted(tails, reverse=True)


class TestIlpTse:
    def test_result_is_guaranteed_feasible(self):
        """Unlike ILP-AR, a TSE result must satisfy r <= r* exactly."""
        t = make_template(3, p=1e-2)
        res = synthesize_ilp_tse(make_spec(t, r_star=1e-3), order=2,
                                 backend="scipy")
        assert res.feasible
        r, _ = worst_case_failure(res.architecture, ["L0"])
        assert r <= 1e-3

    def test_matches_ar_optimum_when_algebra_is_tight(self):
        t = make_template(3, p=1e-2)
        tse = synthesize_ilp_tse(make_spec(t, r_star=1e-3), order=2,
                                 backend="scipy")
        ar = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert tse.cost == pytest.approx(ar.cost)

    def test_insufficient_order_rejected(self):
        t = make_template(3, p=1e-2)
        # 6 failing comps at 1e-2: tail(1) ~ C(6,2)*1e-4 ~ 1.5e-3 > 1e-5.
        with pytest.raises(ValueError, match="truncation tail"):
            synthesize_ilp_tse(make_spec(t, r_star=1e-5), order=1,
                               backend="scipy")

    def test_order_one_with_loose_target(self):
        t = make_template(2, p=1e-2)
        res = synthesize_ilp_tse(make_spec(t, r_star=0.1), order=1,
                                 backend="scipy")
        assert res.feasible
        assert res.reliability <= 0.1

    def test_model_larger_than_ar(self):
        """The blow-up the paper predicts: TSE >> AR in model size."""
        t = make_template(3, p=1e-2)
        tse = synthesize_ilp_tse(make_spec(t, r_star=1e-3), order=2,
                                 backend="scipy")
        ar = synthesize_ilp_ar(make_spec(t, r_star=1e-3), backend="scipy")
        assert tse.model_stats["constraints"] > 2 * ar.model_stats["constraints"]

    def test_missing_target_rejected(self):
        t = make_template(2)
        with pytest.raises(ValueError):
            synthesize_ilp_tse(make_spec(t, r_star=None))

    def test_infeasible_when_redundancy_unavailable(self):
        t = make_template(1, p=1e-2)
        res = synthesize_ilp_tse(make_spec(t, r_star=1e-4), order=2,
                                 backend="scipy")
        # Single chain: r ~ 2e-2 > 1e-4; scenario constraints cannot hold.
        assert res.status == "infeasible"
