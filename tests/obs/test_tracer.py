"""Tracer core: nesting, attributes, no-op mode, context restoration."""

import threading

import pytest

from repro import obs
from repro.engine import TelemetryWriter, read_events


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert not obs.enabled()
        s = obs.span("anything", a=1)
        assert s is obs.NOOP_SPAN
        with s as inner:
            inner.set_attr("k", "v")  # swallowed
        assert obs.current_span() is None

    def test_set_attr_is_noop(self):
        obs.set_attr("k", "v")  # must not raise

    def test_noop_span_is_reentrant(self):
        with obs.span("a"):
            with obs.span("b"):
                pass  # same singleton twice — no state to corrupt


class TestNesting:
    def test_parent_child_links(self):
        with obs.tracing() as tracer:
            with obs.span("root") as root:
                with obs.span("child") as child:
                    with obs.span("grandchild") as grand:
                        assert obs.current_span() is grand
                    assert obs.current_span() is child
            assert obs.current_span() is None
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert root.parent_id is None
        assert len(tracer.spans) == 3

    def test_durations_nest(self):
        with obs.tracing():
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
        assert outer.finished and inner.finished
        assert outer.duration >= inner.duration >= 0.0

    def test_attrs_via_kwargs_and_set_attr(self):
        with obs.tracing() as tracer:
            with obs.span("s", index=3) as s:
                s.set_attr("cost", 12.5)
        (done,) = tracer.spans
        assert done.attrs == {"index": 3, "cost": 12.5}

    def test_name_attr_does_not_collide(self):
        with obs.tracing() as tracer:
            with obs.span("s", name="the-batch"):
                pass
        assert tracer.spans[0].name == "s"
        assert tracer.spans[0].attrs["name"] == "the-batch"

    def test_exception_marks_span_and_propagates(self):
        with obs.tracing() as tracer:
            with pytest.raises(RuntimeError):
                with obs.span("bad"):
                    raise RuntimeError("boom")
        (s,) = tracer.spans
        assert s.finished
        assert s.attrs["error"] == "RuntimeError"

    def test_sibling_threads_have_independent_stacks(self):
        seen = {}

        def work(label):
            with obs.span(f"thread.{label}"):
                cur = obs.current_span()
                seen[label] = cur.name if cur is not None else None

        with obs.tracing() as tracer:
            with obs.span("main"):
                threads = [
                    threading.Thread(target=work, args=(i,)) for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        # Each thread saw its own span as innermost, not "main"'s stack.
        assert seen == {0: "thread.0", 1: "thread.1"}
        assert len(tracer.spans) == 3


class TestInstallation:
    def test_tracing_restores_previous(self):
        outer = obs.Tracer()
        prev = obs.set_tracer(outer)
        try:
            with obs.tracing() as inner:
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer
        finally:
            obs.set_tracer(prev)

    def test_tracing_restores_on_exception(self):
        assert obs.get_tracer() is None
        with pytest.raises(ValueError):
            with obs.tracing():
                raise ValueError
        assert obs.get_tracer() is None


class TestStreaming:
    def test_writer_receives_start_end_pairs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, batch="trace") as writer:
            with obs.tracing(writer=writer):
                with obs.span("outer", phase=1):
                    with obs.span("inner"):
                        pass
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds == ["span_start", "span_start", "span_end", "span_end"]
        end_outer = [
            e for e in events if e["event"] == "span_end" and e["name"] == "outer"
        ][0]
        assert end_outer["attrs"] == {"phase": 1}
        assert end_outer["duration"] >= 0.0
        # span ts overrides the writer's wall clock, so start <= end.
        start_outer = [
            e for e in events
            if e["event"] == "span_start" and e["name"] == "outer"
        ][0]
        assert start_outer["ts"] <= end_outer["ts"]
