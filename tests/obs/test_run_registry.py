"""RunRegistry: bounded finished-ring eviction and thread safety."""

import threading

from repro.obs.server import RunRegistry


class TestFinishedRingEviction:
    def test_ring_bounded_and_keeps_newest_in_order(self):
        registry = RunRegistry(keep_finished=3)
        handles = [registry.start("batch", seq=i) for i in range(5)]
        for handle in handles:
            handle.finish(status="done")
        finished = registry.snapshot()["finished"]
        assert len(finished) == 3
        # Oldest two evicted; survivors keep finish order.
        assert [r["seq"] for r in finished] == [2, 3, 4]

    def test_active_runs_never_evicted(self):
        registry = RunRegistry(keep_finished=1)
        keepalive = [registry.start("batch", seq=i) for i in range(4)]
        registry.start("batch", seq=99).finish()
        registry.start("batch", seq=100).finish()
        assert len(registry) == 4
        assert [r["seq"] for r in registry.snapshot()["finished"]] == [100]
        for handle in keepalive:
            handle.finish()

    def test_double_finish_is_idempotent(self):
        registry = RunRegistry(keep_finished=4)
        handle = registry.start("batch")
        handle.finish(status="done")
        handle.finish(status="failed")  # late duplicate must be ignored
        (record,) = registry.snapshot()["finished"]
        assert record["status"] == "done"

    def test_eviction_across_interleaved_finishes(self):
        registry = RunRegistry(keep_finished=2)
        a = registry.start("batch", name="a")
        b = registry.start("batch", name="b")
        c = registry.start("batch", name="c")
        b.finish()
        a.finish()
        c.finish()
        names = [r["name"] for r in registry.snapshot()["finished"]]
        assert names == ["a", "c"]  # finish order, not start order


class TestConcurrency:
    def test_concurrent_register_and_finish(self):
        """Hammer one registry from many threads; every invariant holds."""
        registry = RunRegistry(keep_finished=16)
        runs_per_thread = 25
        threads = 8
        errors = []
        barrier = threading.Barrier(threads)

        def worker(tid):
            try:
                barrier.wait(timeout=10)
                for i in range(runs_per_thread):
                    handle = registry.start("stress", tid=tid, i=i)
                    handle.update(step=1)
                    handle.finish(status="done", step=2)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=30)
        assert not errors
        assert len(registry) == 0  # everything finished
        snapshot = registry.snapshot()
        assert snapshot["active"] == []
        assert len(snapshot["finished"]) == 16  # exactly the ring bound
        for record in snapshot["finished"]:
            assert record["status"] == "done"
            assert record["step"] == 2

    def test_concurrent_updates_on_shared_handle(self):
        registry = RunRegistry()
        handle = registry.start("shared")
        stop = threading.Event()

        def updater():
            i = 0
            while not stop.is_set():
                handle.update(i=i)
                i += 1

        def snapshotter():
            while not stop.is_set():
                registry.snapshot()

        pool = [threading.Thread(target=updater) for _ in range(3)]
        pool += [threading.Thread(target=snapshotter) for _ in range(2)]
        for t in pool:
            t.start()
        try:
            for t in pool:
                t.join(timeout=0.2)
        finally:
            stop.set()
            for t in pool:
                t.join(timeout=10)
        handle.finish()
        assert len(registry) == 0
