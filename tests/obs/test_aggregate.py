"""Cross-process metrics aggregation: delta, merge, telemetry replay."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def worker_like_registry():
    reg = MetricsRegistry()
    reg.counter("engine.jobs.completed").inc(3)
    reg.gauge("cache.hit_rate").set(0.75)
    h = reg.histogram("engine.job.seconds")
    for v in (0.01, 0.2, 3.0):
        h.observe(v)
    return reg


class TestSnapshotDelta:
    def test_counters_subtract_and_unchanged_dropped(self):
        reg = worker_like_registry()
        before = reg.snapshot()
        reg.counter("engine.jobs.completed").inc(2)
        reg.counter("other.calls").inc(5)
        delta = obs.snapshot_delta(before, reg.snapshot())
        assert delta["engine.jobs.completed"]["value"] == 2
        assert delta["other.calls"]["value"] == 5
        assert "cache.hit_rate" not in delta  # unchanged gauge dropped
        assert "engine.job.seconds" not in delta  # no new observations

    def test_gauge_keeps_last_write(self):
        reg = worker_like_registry()
        before = reg.snapshot()
        reg.gauge("cache.hit_rate").set(0.5)
        delta = obs.snapshot_delta(before, reg.snapshot())
        assert delta["cache.hit_rate"] == {"kind": "gauge", "value": 0.5}

    def test_histogram_count_sum_and_buckets_exact(self):
        reg = worker_like_registry()
        before = reg.snapshot()
        reg.histogram("engine.job.seconds").observe(0.2)
        reg.histogram("engine.job.seconds").observe(7.0)
        delta = obs.snapshot_delta(before, reg.snapshot())
        entry = delta["engine.job.seconds"]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(7.2)
        assert sum(entry["bucket_counts"]) == 2

    def test_empty_delta_for_identical_snapshots(self):
        snap = worker_like_registry().snapshot()
        assert obs.snapshot_delta(snap, snap) == {}


class TestMergeSnapshot:
    def test_counters_sum_gauges_last_write_histograms_fold(self):
        target = MetricsRegistry()
        target.counter("engine.jobs.completed").inc(10)
        target.histogram("engine.job.seconds").observe(1.0)
        merged = obs.merge_snapshot(
            worker_like_registry().snapshot(), target
        )
        assert merged == 3
        assert target.counter("engine.jobs.completed").value == 13
        assert target.gauge("cache.hit_rate").value == 0.75
        h = target.histogram("engine.job.seconds")
        assert h.count == 4
        assert h.total == pytest.approx(1.0 + 0.01 + 0.2 + 3.0)
        assert h.min == 0.01 and h.max == 3.0

    def test_bucket_counts_survive_the_merge(self):
        target = MetricsRegistry()
        obs.merge_snapshot(worker_like_registry().snapshot(), target)
        snap = target.snapshot()["engine.job.seconds"]
        assert sum(snap["bucket_counts"]) == 3

    def test_kind_conflict_skipped_not_fatal(self):
        target = MetricsRegistry()
        target.gauge("engine.jobs.completed").set(1.0)
        merged = obs.merge_snapshot(
            {"engine.jobs.completed": {"kind": "counter", "value": 4}},
            target,
        )
        assert merged == 0
        assert target.gauge("engine.jobs.completed").value == 1.0

    def test_merges_into_global_registry_by_default(self):
        obs.merge_snapshot({"global.calls": {"kind": "counter", "value": 2}})
        assert obs.counter("global.calls").value == 2


class TestTelemetryReplay:
    def events(self):
        return [
            {"event": "batch_start", "jobs": 2},
            {"event": "metrics_snapshot", "job": "a", "metrics": {
                "engine.jobs.completed": {"kind": "counter", "value": 1},
            }},
            {"event": "metrics_snapshot", "job": "b", "metrics": {
                "engine.jobs.completed": {"kind": "counter", "value": 1},
                "cache.hit_rate": {"kind": "gauge", "value": 0.5},
            }},
            {"event": "batch_end"},
        ]

    def test_iter_metrics_snapshots_filters_events(self):
        snaps = list(obs.iter_metrics_snapshots(self.events()))
        assert len(snaps) == 2

    def test_merge_telemetry_reconstructs_totals(self):
        reg = obs.merge_telemetry(self.events())
        assert reg.counter("engine.jobs.completed").value == 2
        assert reg.gauge("cache.hit_rate").value == 0.5
        # Fresh registry by default: the global one stays untouched.
        assert "engine.jobs.completed" not in obs.snapshot()

    def test_merge_telemetry_from_file(self, tmp_path):
        from repro.engine.telemetry import TelemetryWriter

        path = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(path, batch="unit") as writer:
            for event in self.events():
                writer.emit(event.pop("event"), **event)
        reg = obs.merge_telemetry(path)
        assert reg.counter("engine.jobs.completed").value == 2
