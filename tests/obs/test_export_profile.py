"""Exporters (Chrome trace, JSONL) and the profile aggregation/rendering."""

import json
import time

from repro import obs
from repro.engine import TelemetryWriter, read_events
from repro.report import render_metrics, render_profile


def make_trace():
    """root -> (step x2 -> leaf), plus a second root."""
    with obs.tracing() as tracer:
        with obs.span("root", run=1):
            for i in range(2):
                with obs.span("step", index=i):
                    with obs.span("leaf"):
                        time.sleep(0.001)
        with obs.span("other_root"):
            pass
    return tracer


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        tracer = make_trace()
        path = tmp_path / "trace.json"
        obs.write_chrome_trace(path, tracer.spans, metrics={"m": 1})
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["metrics"] == {"m": 1}
        events = doc["traceEvents"]
        assert len(events) == 6
        assert all(e["ph"] == "X" for e in events)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        # Start-ordered relative timestamps: first event is the root at 0.
        assert events[0]["name"] == "root" and events[0]["ts"] == 0
        step = [e for e in events if e["name"] == "step"][0]
        assert step["args"]["index"] == 0

    def test_unfinished_spans_are_skipped(self):
        with obs.tracing() as tracer:
            open_span = tracer.span("never_closed")
            with obs.span("closed"):
                pass
        assert not open_span.finished
        names = [e["name"] for e in obs.chrome_trace_events(tracer.spans)]
        assert names == ["closed"]

    def test_empty_trace(self):
        assert obs.chrome_trace_events([]) == []
        assert obs.chrome_trace([])["traceEvents"] == []


class TestJsonlExport:
    def test_batch_export_matches_streaming_format(self, tmp_path):
        tracer = make_trace()
        path = tmp_path / "spans.jsonl"
        with TelemetryWriter(path, batch="trace") as writer:
            n = obs.export_spans_jsonl(writer, tracer.spans)
        assert n == 6
        events = read_events(path)
        starts = [e for e in events if e["event"] == "span_start"]
        ends = [e for e in events if e["event"] == "span_end"]
        assert len(starts) == len(ends) == 6
        assert {e["span"] for e in starts} == {e["span"] for e in ends}
        root_end = [e for e in ends if e["name"] == "root"][0]
        assert root_end["attrs"] == {"run": 1}


class TestProfile:
    def test_aggregation(self):
        tracer = make_trace()
        roots = obs.build_profile(tracer.spans)
        assert [r.name for r in roots][0] == "root"  # hottest first
        root = roots[0]
        assert root.count == 1
        step = root.find("step")
        leaf = root.find("step/leaf")
        assert step.count == 2 and leaf.count == 2
        # Cumulative times telescope: root >= step >= leaf > 0.
        assert root.cum >= step.cum >= leaf.cum > 0
        # Self time excludes children.
        assert step.self_time <= step.cum - leaf.cum + 1e-9

    def test_flatten_is_depth_first(self):
        roots = obs.build_profile(make_trace().spans)
        names = [n.name for n in obs.flatten_profile(roots)]
        assert names == ["root", "step", "leaf", "other_root"]

    def test_orphaned_spans_become_roots(self):
        with obs.tracing() as tracer:
            parent = tracer.span("parent")
            with obs.span("child"):
                pass
            # parent never finishes
        del parent
        roots = obs.build_profile(tracer.spans)
        assert [r.name for r in roots] == ["child"]


class TestRendering:
    def test_render_profile_from_spans_and_roots(self):
        tracer = make_trace()
        from_spans = render_profile(tracer.spans)
        from_roots = render_profile(obs.build_profile(tracer.spans))
        assert from_spans == from_roots
        assert "root" in from_spans and "    leaf" in from_spans
        assert "% total" in from_spans

    def test_render_profile_limit(self):
        tracer = make_trace()
        text = render_profile(tracer.spans, limit=1)
        assert "root" in text and "leaf" not in text

    def test_render_metrics(self):
        obs.reset_metrics()
        try:
            obs.counter("c").inc(2)
            obs.gauge("g").set(0.5)
            obs.histogram("h").observe(1.0)
            text = render_metrics(obs.snapshot())
            assert "counter" in text and "gauge" in text and "histogram" in text
            assert "n=1" in text
        finally:
            obs.reset_metrics()
