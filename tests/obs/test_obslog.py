"""Structured JSON logging: sinks, levels, correlation fields."""

import io
import json

import pytest

from repro import obs
from repro.obs.obslog import read_log


@pytest.fixture(autouse=True)
def no_leftover_sink():
    obs.configure_obslog()
    yield
    obs.configure_obslog()


def records_of(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestSink:
    def test_disabled_by_default(self):
        assert not obs.obslog_enabled()
        obs.log("ignored.event", answer=42)  # must be a cheap no-op

    def test_stream_sink_emits_jsonl(self):
        stream = io.StringIO()
        obs.configure_obslog(stream=stream)
        obs.log("unit.event", answer=42)
        (rec,) = records_of(stream)
        assert rec["event"] == "unit.event"
        assert rec["level"] == "info"
        assert rec["answer"] == 42
        assert isinstance(rec["ts"], float)

    def test_path_sink_appends_and_roundtrips(self, tmp_path):
        path = tmp_path / "nested" / "run.log.jsonl"
        obs.configure_obslog(path=path)
        obs.log("first")
        obs.configure_obslog(path=path)  # reopen: append, not truncate
        obs.log("second")
        obs.configure_obslog()
        assert [r["event"] for r in read_log(path)] == ["first", "second"]

    def test_read_log_skips_truncated_tail(self, tmp_path):
        path = tmp_path / "run.log.jsonl"
        path.write_text('{"event": "good"}\n{"event": "trunc', encoding="utf-8")
        assert [r["event"] for r in read_log(path)] == ["good"]

    def test_level_filter(self):
        stream = io.StringIO()
        obs.configure_obslog(stream=stream, level="warning")
        obs.log("too.quiet")  # info < warning
        obs.log("loud.enough", level="error")
        (rec,) = records_of(stream)
        assert rec["event"] == "loud.enough"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs.configure_obslog(stream=io.StringIO(), level="shout")

    def test_broken_sink_degrades_to_noop(self):
        stream = io.StringIO()
        sink = obs.configure_obslog(stream=stream)
        stream.close()
        obs.log("into.the.void")  # must not raise
        assert not sink.enabled


class TestCorrelation:
    def test_log_context_fields_attach_and_nest(self):
        stream = io.StringIO()
        obs.configure_obslog(stream=stream)
        with obs.log_context(run="r-1"):
            with obs.log_context(job="j-7"):
                obs.log("inner")
            obs.log("outer")
        obs.log("outside")
        inner, outer, outside = records_of(stream)
        assert inner["run"] == "r-1" and inner["job"] == "j-7"
        assert outer["run"] == "r-1" and "job" not in outer
        assert "run" not in outside

    def test_current_log_context(self):
        assert obs.current_log_context() == {}
        with obs.log_context(run="r-2"):
            assert obs.current_log_context() == {"run": "r-2"}

    def test_span_correlation_when_tracing(self):
        stream = io.StringIO()
        obs.configure_obslog(stream=stream)
        with obs.tracing():
            with obs.span("unit.work"):
                obs.log("traced.event")
        (rec,) = records_of(stream)
        assert rec["span_name"] == "unit.work"
        assert rec["span"]

    def test_explicit_fields_win_over_context(self):
        stream = io.StringIO()
        obs.configure_obslog(stream=stream)
        with obs.log_context(run="ctx"):
            obs.log("event", run="explicit")
        (rec,) = records_of(stream)
        assert rec["run"] == "explicit"


class TestRotation:
    def _emit_many(self, n, payload="x" * 40):
        for i in range(n):
            obs.log("rotate.test", seq=i, payload=payload)

    def test_rotation_keeps_every_line_valid_jsonl(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        obs.configure_obslog(path=path, max_bytes=512, backups=3)
        self._emit_many(40)
        obs.configure_obslog()  # detach / flush
        rotated = sorted(tmp_path.glob("obs.jsonl*"))
        assert len(rotated) > 1, "expected at least one rotation"
        seqs = []
        for f in rotated:
            with f.open(encoding="utf-8") as fh:
                for line in fh:
                    rec = json.loads(line)  # every line must parse
                    assert rec["event"] == "rotate.test"
                    seqs.append(rec["seq"])
        # backups cap retention, so the oldest records are gone — but
        # what survives is a contiguous tail ending at the last emit
        seqs.sort()
        assert seqs == list(range(seqs[0], 40))

    def test_backups_shift_and_cap(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        obs.configure_obslog(path=path, max_bytes=200, backups=2)
        self._emit_many(60)
        obs.configure_obslog()
        assert path.exists()
        assert (tmp_path / "obs.jsonl.1").exists()
        assert (tmp_path / "obs.jsonl.2").exists()
        assert not (tmp_path / "obs.jsonl.3").exists()
        # newest records live in the live file, oldest were dropped
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["seq"] == 59

    def test_no_rotation_when_disabled(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        obs.configure_obslog(path=path)  # max_bytes=0 -> never rotate
        self._emit_many(50)
        obs.configure_obslog()
        assert not (tmp_path / "obs.jsonl.1").exists()
        assert len(read_log(path)) == 50

    def test_rotation_rejects_bad_backups(self, tmp_path):
        with pytest.raises(ValueError):
            obs.configure_obslog(
                path=tmp_path / "x.jsonl", max_bytes=100, backups=0
            )
