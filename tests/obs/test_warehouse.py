"""Tests for the SQLite telemetry warehouse (`repro.obs.warehouse`)."""

import json

import pytest

from repro import obs
from repro.obs.warehouse import TelemetryWarehouse


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_metrics()
    obs.configure_obslog()
    obs.configure_auto_ingest(None)
    yield
    obs.reset_metrics()
    obs.configure_obslog()
    obs.configure_auto_ingest(None)


def telemetry_events(batch="b-1", jobs=2):
    """A minimal but complete telemetry journal for one batch."""
    t = 100.0
    events = [
        {"ts": t, "batch": batch, "event": "batch_start", "name": "unit",
         "jobs": jobs, "workers": 0, "cache_dir": None},
    ]
    for i in range(jobs):
        events.append({"ts": t + i, "batch": batch, "event": "job_start",
                       "job": f"job-{i}", "kind": "solve", "mode": "inproc"})
        events.append({"ts": t + i + 0.5, "batch": batch, "event": "job_end",
                       "job": f"job-{i}", "ok": True, "attempts": 1,
                       "wall_time": 0.5, "cache_hits": 1, "cache_misses": 0,
                       "error": None})
    events.append({"ts": t + 9, "batch": batch, "event": "span_end",
                   "span": "s-1", "parent": None, "name": "engine.batch",
                   "duration": 9.0, "attrs": {"jobs": jobs}})
    events.append({"ts": t + 9, "batch": batch, "event": "bnb_event",
                   "solve": "solve-1", "kind": "incumbent", "node": 3,
                   "depth": 2, "objective": 41.5})
    events.append({"ts": t + 10, "batch": batch, "event": "batch_end",
                   "name": "unit", "wall_time": 10.0, "ok": jobs,
                   "failed": 0, "cache_hits": jobs, "cache_misses": 0,
                   "stopped": False})
    return events


def write_journal(path, events):
    with path.open("w", encoding="utf-8") as fh:
        for e in events:
            fh.write(json.dumps(e) + "\n")


class TestIngest:
    def test_counts_match_journal_ground_truth(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        events = telemetry_events(jobs=3)
        write_journal(journal, events)
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        counts = wh.ingest_file(journal)
        # ground truth straight from the journal itself
        job_ends = sum(1 for e in events if e["event"] == "job_end")
        spans = sum(1 for e in events if e["event"] in ("span_end",
                                                        "worker_span"))
        bnb = sum(1 for e in events if e["event"] == "bnb_event")
        assert counts["batches"] == 1
        assert counts["jobs"] == job_ends == 3
        assert counts["spans"] == spans == 1
        assert counts["bnb_events"] == bnb == 1
        totals = wh.counts()
        assert totals["jobs"] == 3
        assert totals["batches"] == 1
        wh.close()

    def test_reingest_is_idempotent(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        write_journal(journal, telemetry_events())
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        wh.ingest_file(journal)
        second = wh.ingest_file(journal)
        assert sum(second.values()) == 0
        assert wh.counts()["jobs"] == 2
        wh.close()

    def test_incremental_append_only_reads_new_lines(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        events = telemetry_events(jobs=2)
        write_journal(journal, events[:3])  # batch_start + first job pair
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        first = wh.ingest_file(journal)
        assert first["jobs"] == 1
        with journal.open("a", encoding="utf-8") as fh:
            for e in events[3:]:
                fh.write(json.dumps(e) + "\n")
        second = wh.ingest_file(journal)
        assert second["jobs"] == 1  # only the new job_end
        assert wh.counts()["jobs"] == 2
        wh.close()

    def test_partial_trailing_line_deferred(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        events = telemetry_events()
        write_journal(journal, events)
        # simulate a writer mid-line: append half a record, no newline
        with journal.open("a", encoding="utf-8") as fh:
            fh.write('{"ts": 1, "batch": "b-1", "eve')
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        wh.ingest_file(journal)  # must not raise
        assert wh.counts()["batches"] == 1
        wh.close()

    def test_obslog_kind_sniffed(self, tmp_path):
        logfile = tmp_path / "obs.jsonl"
        write_journal(logfile, [
            {"ts": 1.0, "level": "info", "event": "run.created",
             "run": "r-1"},
            {"ts": 2.0, "level": "warning", "event": "job.retry",
             "run": "r-1", "job": "j-1"},
        ])
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        counts = wh.ingest_file(logfile)
        assert counts["logs"] == 2
        rows = wh.query(
            "SELECT event FROM logs ORDER BY ts")
        assert [r["event"] for r in rows] == ["run.created", "job.retry"]
        wh.close()

    def test_retry_and_timeout_events_roll_into_job_row(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        events = [
            {"ts": 1, "batch": "b", "event": "batch_start", "name": "u",
             "jobs": 1, "workers": 0},
            {"ts": 2, "batch": "b", "event": "job_retry", "job": "j",
             "attempt": 1},
            {"ts": 3, "batch": "b", "event": "job_timeout", "job": "j",
             "attempt": 2},
            {"ts": 4, "batch": "b", "event": "job_end", "job": "j",
             "ok": True, "attempts": 3, "wall_time": 2.0,
             "cache_hits": 0, "cache_misses": 1, "error": None},
        ]
        write_journal(journal, events)
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        wh.ingest_file(journal)
        (row,) = wh.query("SELECT retries, timeouts, attempts FROM jobs")
        assert row["retries"] == 1
        assert row["timeouts"] == 1
        assert row["attempts"] == 3
        wh.close()

    def test_metrics_snapshot_expands_to_deltas(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        write_journal(journal, [
            {"ts": 1, "batch": "b", "event": "metrics_snapshot",
             "worker_pid": 42, "metrics": {
                 "engine.jobs.completed": {"kind": "counter", "value": 5},
                 "engine.job.seconds": {"kind": "histogram", "count": 5,
                                        "sum": 2.5},
             }},
        ])
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        counts = wh.ingest_file(journal)
        assert counts["metric_deltas"] == 2
        rows = {r["metric"]: r for r in wh.query(
            "SELECT metric, kind, value, count FROM metric_deltas")}
        assert rows["engine.jobs.completed"]["value"] == 5
        assert rows["engine.job.seconds"]["value"] == 2.5
        assert rows["engine.job.seconds"]["count"] == 5
        wh.close()


class TestQueryGuard:
    def test_writes_rejected(self, tmp_path):
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        for sql in ("DELETE FROM jobs", "DROP TABLE jobs",
                    "INSERT INTO jobs (batch, job) VALUES ('a', 'b')"):
            with pytest.raises(ValueError):
                wh.query(sql)
        wh.close()

    def test_select_allowed(self, tmp_path):
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        assert wh.query("SELECT COUNT(*) AS n FROM jobs")[0]["n"] == 0
        wh.close()


class TestVacuum:
    def test_keep_batches_drops_oldest(self, tmp_path):
        wh = TelemetryWarehouse(tmp_path / "wh.db")
        for i in range(3):
            events = telemetry_events(batch=f"b-{i}")
            for e in events:
                e["ts"] += i * 100  # stagger start times
            wh.ingest_events(events, kind="telemetry", source=f"mem-{i}")
        removed = wh.vacuum(keep_batches=1)
        assert removed["batches"] == 2
        remaining = wh.query("SELECT batch FROM batches")
        assert [r["batch"] for r in remaining] == ["b-2"]
        # child tables swept too
        assert wh.counts()["jobs"] == 2
        wh.close()


class TestAutoIngest:
    def test_maybe_auto_ingest_when_armed(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        write_journal(journal, telemetry_events())
        db = tmp_path / "wh.db"
        obs.configure_auto_ingest(db)
        assert obs.auto_ingest_path() == db
        obs.maybe_auto_ingest(journal)
        wh = TelemetryWarehouse(db)
        assert wh.counts()["batches"] == 1
        wh.close()

    def test_disarmed_is_noop(self, tmp_path):
        journal = tmp_path / "tel.jsonl"
        write_journal(journal, telemetry_events())
        obs.configure_auto_ingest(None)
        obs.maybe_auto_ingest(journal)
        assert not (tmp_path / "wh.db").exists()

    def test_env_fallback(self, tmp_path, monkeypatch):
        db = tmp_path / "env.db"
        monkeypatch.setenv("REPRO_WAREHOUSE", str(db))
        assert obs.auto_ingest_path() == db

    def test_ingest_failure_swallowed(self, tmp_path):
        obs.configure_auto_ingest(tmp_path / "wh.db")
        obs.maybe_auto_ingest(tmp_path / "missing.jsonl")  # must not raise
