"""Sampling profiler: collapsed-stack capture and export."""

import re
import threading
import time

import pytest

from repro.obs import SamplingProfiler

#: ``frame;frame;... count`` — the format flamegraph.pl consumes.
_COLLAPSED_LINE = re.compile(r"^[^ ;]+(;[^ ;]+)* \d+$")


def spin(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(i * i for i in range(200))


class TestCapture:
    def test_samples_the_calling_thread(self):
        with SamplingProfiler(interval=0.001) as prof:
            spin(0.15)
        assert prof.samples > 10
        assert prof.counts
        joined = prof.collapsed()
        assert "spin" in joined
        # Root-first ordering: this test function is an ancestor of spin.
        for line in joined.splitlines():
            if "spin" in line:
                stack = line.rsplit(" ", 1)[0].split(";")
                assert stack.index(
                    "tests.obs.test_sampling.spin"
                ) > stack.index(
                    "tests.obs.test_sampling."
                    "TestCapture.test_samples_the_calling_thread"
                )
                break
        else:
            pytest.fail("no sampled stack contains spin()")

    def test_all_threads_mode_prefixes_thread_ids(self):
        stop = threading.Event()
        worker = threading.Thread(target=lambda: stop.wait(2.0))
        worker.start()
        try:
            with SamplingProfiler(interval=0.001, all_threads=True) as prof:
                spin(0.05)
        finally:
            stop.set()
            worker.join()
        assert prof.counts
        assert all(stack[0].startswith("thread-") for stack in prof.counts)

    def test_stop_is_idempotent_and_restart_safe(self):
        prof = SamplingProfiler(interval=0.001)
        prof.start().start()
        spin(0.02)
        prof.stop().stop()
        assert not prof.running

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_max_depth_truncates_stacks(self):
        def recurse(n):
            if n == 0:
                spin(0.05)
            else:
                recurse(n - 1)

        with SamplingProfiler(interval=0.001, max_depth=5) as prof:
            recurse(40)
        assert prof.counts
        assert max(len(s) for s in prof.counts) <= 5


class TestExport:
    def test_collapsed_format(self):
        with SamplingProfiler(interval=0.001) as prof:
            spin(0.05)
        lines = prof.collapsed().splitlines()
        assert lines
        for line in lines:
            assert _COLLAPSED_LINE.match(line), line

    def test_write_collapsed_creates_parents(self, tmp_path):
        with SamplingProfiler(interval=0.001) as prof:
            spin(0.05)
        out = prof.write_collapsed(tmp_path / "deep" / "prof.collapsed")
        assert out.exists()
        assert out.read_text() == prof.collapsed()

    def test_top_counts_by_leaf(self):
        with SamplingProfiler(interval=0.001) as prof:
            spin(0.1)
        top = prof.top(3)
        assert top
        assert top == sorted(top, key=lambda kv: -kv[1])
        assert sum(c for _, c in prof.top(10_000)) == sum(
            prof.counts.values()
        )

    def test_empty_profiler_exports_empty(self):
        prof = SamplingProfiler()
        assert prof.collapsed() == ""
        assert prof.top() == []
        assert len(prof) == 0
