"""TraceContext: minting, derivation, wire round-trip, span adoption."""

import os

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_context():
    obs.set_trace_context(None)
    yield
    obs.set_trace_context(None)


class TestTraceContext:
    def test_mint_is_unique_16_hex(self):
        ids = {obs.TraceContext.mint().trace_id for _ in range(8)}
        assert len(ids) == 8
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex or raise

    def test_derive_is_a_pure_function_of_the_seed(self):
        a = obs.TraceContext.derive("run-0042")
        b = obs.TraceContext.derive("run-0042")
        c = obs.TraceContext.derive("run-0043")
        assert a.trace_id == b.trace_id
        assert a.trace_id != c.trace_id
        assert len(a.trace_id) == 16

    def test_dict_round_trip(self):
        ctx = obs.TraceContext(
            "ab" * 8, parent_uid="123.7", fields={"run": "r1"}
        )
        assert obs.TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_with_fields_merges_without_mutating(self):
        ctx = obs.TraceContext.mint(run="r1")
        child = ctx.with_fields(job_digest="abc")
        assert ctx.fields == {"run": "r1"}
        assert child.fields == {"run": "r1", "job_digest": "abc"}
        assert child.trace_id == ctx.trace_id

    def test_reparent_keeps_trace_id(self):
        with obs.tracing() as tracer:
            with tracer.span("root") as root:
                ctx = obs.TraceContext.mint().reparent(root)
                assert ctx.parent_uid == f"{os.getpid()}.{root.span_id}"

    def test_scoped_activation_restores_previous(self):
        outer = obs.TraceContext.mint()
        obs.set_trace_context(outer)
        with obs.trace_context(obs.TraceContext.mint()):
            assert obs.current_trace_context() is not outer
        assert obs.current_trace_context() is outer


class TestSpanAdoption:
    def test_root_span_adopts_active_context(self):
        ctx = obs.TraceContext("f" * 16, parent_uid="999.3")
        with obs.trace_context(ctx):
            with obs.tracing() as tracer:
                with tracer.span("engine.job"):
                    pass
        (s,) = tracer.spans
        assert s.trace_id == ctx.trace_id
        assert s.remote_parent == "999.3"

    def test_child_spans_inherit_parent_not_context(self):
        ctx = obs.TraceContext("f" * 16, parent_uid="999.3")
        with obs.trace_context(ctx):
            with obs.tracing() as tracer:
                with tracer.span("outer"):
                    with tracer.span("inner"):
                        pass
        inner, outer = tracer.spans  # finish order
        assert inner.name == "inner"
        assert inner.trace_id == ctx.trace_id
        assert inner.remote_parent is None  # local parent wins
        assert inner.parent_id == outer.span_id

    def test_no_context_means_no_trace_id(self):
        with obs.tracing() as tracer:
            with tracer.span("plain"):
                pass
        assert tracer.spans[0].trace_id is None

    def test_from_span_parents_under_live_span(self):
        ctx0 = obs.TraceContext("a" * 16)
        with obs.trace_context(ctx0):
            with obs.tracing() as tracer:
                with tracer.span("batch") as batch:
                    derived = obs.TraceContext.from_span(batch, batch="b1")
        assert derived.trace_id == ctx0.trace_id
        assert derived.parent_uid == f"{os.getpid()}.{batch.span_id}"
        assert derived.fields == {"batch": "b1"}


class TestSpanRecord:
    def test_wire_format_for_remote_root(self):
        ctx = obs.TraceContext("c" * 16, parent_uid="42.1")
        with obs.trace_context(ctx):
            with obs.tracing() as tracer:
                with tracer.span("engine.job", job="j1"):
                    pass
        record = obs.span_record(tracer.spans[0], pid=777)
        assert record["uid"] == f"777.{tracer.spans[0].span_id}"
        assert record["parent"] == "42.1"  # remote parent for roots
        assert record["trace"] == ctx.trace_id
        assert record["pid"] == 777
        assert record["attrs"] == {"job": "j1"}
        assert record["dur"] >= 0.0

    def test_nested_span_parents_locally(self):
        with obs.tracing() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        inner = tracer.spans[0]
        record = obs.span_record(inner, pid=777)
        assert record["parent"] == f"777.{inner.parent_id}"

    def test_absorb_record_lands_on_active_tracer(self):
        with obs.tracing() as tracer:
            obs.absorb_record({"uid": "1.1", "trace": "t"})
        assert tracer.records == [{"uid": "1.1", "trace": "t"}]
        obs.absorb_record({"uid": "2.2"})  # no tracer: silently dropped
