"""Live endpoint: Prometheus exposition conformance, run registry, HTTP."""

import json
import re
import urllib.request

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.server import (
    ObsServer,
    RunRegistry,
    escape_label_value,
    prometheus_name,
    render_prometheus,
)
from tests.synthesis.test_ilp_mr import make_spec, make_template


@pytest.fixture(autouse=True)
def clean_state():
    obs.reset_metrics()
    obs.reset_run_registry()
    yield
    obs.reset_metrics()
    obs.reset_run_registry()


def http_get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read().decode("utf-8")


class TestNamesAndEscaping:
    def test_dotted_names_sanitized(self):
        assert prometheus_name("engine.jobs.completed") == (
            "repro_engine_jobs_completed"
        )
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == r"a\"b"
        assert escape_label_value("a\\b") == r"a\\b"
        assert escape_label_value("a\nb") == r"a\nb"


class TestPrometheusRendering:
    def test_counter_gets_total_suffix_and_headers(self):
        text = render_prometheus(
            metrics={"x.calls": {"kind": "counter", "value": 3}},
            runs=RunRegistry(),
        )
        assert "# HELP repro_x_calls_total" in text
        assert "# TYPE repro_x_calls_total counter" in text
        assert "repro_x_calls_total 3\n" in text

    def test_every_sample_has_help_and_type(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.2)
        text = render_prometheus(metrics=reg.snapshot(), runs=RunRegistry())
        names = set()
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            names.add(re.match(r"([a-zA-Z0-9_:]+)", line).group(1))
        for name in names:
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert (
                f"# HELP {name} " in text or f"# HELP {base} " in text
            ), name
            assert (
                f"# TYPE {name} " in text or f"# TYPE {base} " in text
            ), name

    def test_unset_gauge_is_omitted(self):
        text = render_prometheus(
            metrics={"g": {"kind": "gauge", "value": None}},
            runs=RunRegistry(),
        )
        assert "repro_g" not in text

    def test_histogram_buckets_cumulative_and_monotone(self):
        reg = MetricsRegistry()
        h = reg.histogram("h.seconds")
        for v in (0.0002, 0.3, 0.3, 7.0, 1e9):  # 1e9 beyond the last bound
            h.observe(v)
        text = render_prometheus(metrics=reg.snapshot(), runs=RunRegistry())
        buckets = re.findall(
            r'repro_h_seconds_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert buckets[-1][0] == "+Inf"
        counts = [int(c) for _, c in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert counts[-1] == 5
        bounds = [float(b) for b, _ in buckets[:-1]]
        assert bounds == sorted(bounds)
        assert "repro_h_seconds_count 5" in text
        assert "repro_h_seconds_sum" in text

    def test_histogram_le_boundary_is_inclusive(self):
        # le semantics: a value exactly on a bound lands in that bucket.
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.1)  # 0.1 is a default bound
        text = render_prometheus(metrics=reg.snapshot(), runs=RunRegistry())
        (le_01,) = re.findall(r'repro_h_bucket\{le="0\.1"\} (\d+)', text)
        assert int(le_01) == 1

    def test_pre_bucket_snapshot_still_conformant(self):
        # A merged snapshot from an older worker may lack bucket data.
        text = render_prometheus(
            metrics={"h": {"kind": "histogram", "count": 4, "sum": 2.0,
                           "min": 0.1, "max": 1.0}},
            runs=RunRegistry(),
        )
        assert 'repro_h_bucket{le="+Inf"} 4' in text
        assert "repro_h_count 4" in text

    def test_active_runs_gauge_labeled_per_kind(self):
        runs = RunRegistry()
        runs.start("ilp_mr")
        runs.start("ilp_mr")
        runs.start("batch")
        text = render_prometheus(metrics={}, runs=runs)
        assert 'repro_runs_active{kind="batch"} 1' in text
        assert 'repro_runs_active{kind="ilp_mr"} 2' in text

    def test_no_active_runs_renders_zero(self):
        text = render_prometheus(metrics={}, runs=RunRegistry())
        assert "repro_runs_active 0" in text


class TestRunRegistry:
    def test_start_update_finish_lifecycle(self):
        reg = RunRegistry()
        run = reg.start("ilp_mr", strategy="learncons", iteration=0)
        run.update(iteration=1, cost=13.0)
        snap = reg.snapshot()
        (active,) = snap["active"]
        assert active["kind"] == "ilp_mr"
        assert active["status"] == "running"
        assert active["iteration"] == 1 and active["cost"] == 13.0
        run.finish(status="optimal")
        snap = reg.snapshot()
        assert snap["active"] == []
        (done,) = snap["finished"]
        assert done["status"] == "optimal"
        assert done["elapsed"] >= 0

    def test_double_finish_is_idempotent(self):
        reg = RunRegistry()
        run = reg.start("batch")
        run.finish(status="done")
        run.finish(status="error")
        (done,) = reg.snapshot()["finished"]
        assert done["status"] == "done"

    def test_finished_ring_is_bounded(self):
        reg = RunRegistry(keep_finished=3)
        for i in range(7):
            reg.start("batch", index=i).finish()
        finished = reg.snapshot()["finished"]
        assert [r["index"] for r in finished] == [4, 5, 6]

    def test_run_ids_unique(self):
        reg = RunRegistry()
        ids = {reg.start("x").run_id for _ in range(5)}
        assert len(ids) == 5


class TestObsServer:
    def test_healthz_metrics_and_404(self):
        with ObsServer(port=0) as server:
            health = json.loads(http_get(server.url + "/healthz"))
            assert health["status"] == "ok"
            obs.counter("unit.calls").inc(2)
            text = http_get(server.url + "/metrics")
            assert "repro_unit_calls_total 2" in text
            with pytest.raises(urllib.error.HTTPError):
                http_get(server.url + "/nope")

    def test_server_registers_metrics_observer(self):
        assert not obs.enabled()
        with ObsServer(port=0):
            assert obs.enabled()
        assert not obs.enabled()

    def test_runs_endpoint_sees_scripted_ilp_mr_iterations(self):
        """Drive a run handle the way the ILP-MR loop does — two
        iterations — and watch the /runs JSON change under a live scrape."""
        with ObsServer(port=0) as server:
            run = obs.run_registry().start(
                "ilp_mr", strategy="learncons", target=2e-10, iteration=0
            )
            run.update(iteration=1, cost=13007.0, reliability=8e-4,
                       worst_sink="RL2")
            doc = json.loads(http_get(server.url + "/runs"))
            (active,) = doc["active"]
            assert active["iteration"] == 1 and active["cost"] == 13007.0

            run.update(iteration=2, cost=39015.0, reliability=5e-10)
            doc = json.loads(http_get(server.url + "/runs"))
            (active,) = doc["active"]
            assert active["iteration"] == 2 and active["cost"] == 39015.0

            run.finish(status="optimal", cost=39015.0)
            doc = json.loads(http_get(server.url + "/runs"))
            assert doc["active"] == []
            (done,) = doc["finished"]
            assert done["status"] == "optimal"

    def test_real_ilp_mr_run_lands_in_registry(self):
        """An actual multi-iteration ILP-MR run must leave a finished
        /runs record carrying its final iteration count and status."""
        from repro.synthesis import synthesize_ilp_mr

        spec = make_spec(make_template(2, p=1e-2), r_star=1e-3)
        result = synthesize_ilp_mr(spec, backend="scipy")
        assert result.feasible
        assert result.num_iterations >= 2  # needs learned redundancy
        finished = obs.run_registry().snapshot()["finished"]
        (record,) = [r for r in finished if r["kind"] == "ilp_mr"]
        assert record["status"] == "optimal"
        assert record["iteration"] == result.num_iterations
        assert record["cost"] == result.cost


class TestEphemeralPort:
    def test_port_zero_surfaces_actual_bound_port(self):
        with ObsServer(port=0) as server:
            assert server.port != 0
            assert f":{server.port}" in server.url
            health = json.loads(http_get(server.url + "/healthz"))
            assert health["status"] == "ok"

    def test_startup_log_line_carries_bound_port(self, tmp_path):
        """`--serve 0` used to log port 0; the startup record must show
        the real ephemeral port (and remember what was requested)."""
        log_path = tmp_path / "obs.jsonl"
        obs.configure_obslog(path=log_path)
        try:
            with ObsServer(port=0) as server:
                bound = server.port
        finally:
            obs.configure_obslog()
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ]
        (started,) = [
            r for r in records if r["event"] == "obs.server_started"
        ]
        assert started["port"] == bound != 0
        assert started["requested_port"] == 0
        assert f":{bound}" in started["url"]

    def test_explicit_port_logged_verbatim(self, tmp_path):
        import socket

        # Grab a free fixed port first so the explicit-port path is exact.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        log_path = tmp_path / "obs.jsonl"
        obs.configure_obslog(path=log_path)
        try:
            with ObsServer(port=port) as server:
                assert server.port == port
        finally:
            obs.configure_obslog()
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines() if line
        ]
        (started,) = [
            r for r in records if r["event"] == "obs.server_started"
        ]
        assert started["port"] == started["requested_port"] == port
