"""Metrics registry: instruments, get-or-create, snapshot, reset."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestInstruments:
    def test_counter(self):
        c = obs.counter("x.calls")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert obs.counter("x.calls") is c  # get-or-create

    def test_gauge(self):
        g = obs.gauge("x.level")
        assert g.value is None
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram(self):
        h = obs.histogram("x.seconds")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == 2.0

    def test_empty_histogram_snapshot_has_no_min_max(self):
        obs.histogram("empty")
        snap = obs.snapshot()["empty"]
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_kind_collision_rejected(self):
        obs.counter("same.name")
        with pytest.raises(TypeError):
            obs.gauge("same.name")


class TestRegistry:
    def test_snapshot_shape_and_order(self):
        obs.counter("b").inc()
        obs.gauge("a").set(7)
        snap = obs.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "gauge", "value": 7}
        assert snap["b"] == {"kind": "counter", "value": 1}

    def test_reset_clears(self):
        obs.counter("x").inc()
        obs.reset_metrics()
        assert obs.snapshot() == {}

    def test_independent_registries(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        assert "x" not in obs.snapshot()
        assert len(r) == 1
