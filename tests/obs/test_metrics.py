"""Metrics registry: instruments, get-or-create, snapshot, reset."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


class TestInstruments:
    def test_counter(self):
        c = obs.counter("x.calls")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert obs.counter("x.calls") is c  # get-or-create

    def test_gauge(self):
        g = obs.gauge("x.level")
        assert g.value is None
        g.set(2.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram(self):
        h = obs.histogram("x.seconds")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0 and h.max == 3.0
        assert h.mean == 2.0

    def test_empty_histogram_snapshot_has_no_min_max(self):
        obs.histogram("empty")
        snap = obs.snapshot()["empty"]
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_kind_collision_rejected(self):
        obs.counter("same.name")
        with pytest.raises(TypeError):
            obs.gauge("same.name")


class TestRegistry:
    def test_snapshot_shape_and_order(self):
        obs.counter("b").inc()
        obs.gauge("a").set(7)
        snap = obs.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "gauge", "value": 7}
        assert snap["b"] == {"kind": "counter", "value": 1}

    def test_reset_clears(self):
        obs.counter("x").inc()
        obs.reset_metrics()
        assert obs.snapshot() == {}

    def test_independent_registries(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        assert "x" not in obs.snapshot()
        assert len(r) == 1


class TestQuantiles:
    def test_quantile_interpolates_within_bucket(self):
        # One bucket (0.1, 0.25] holding all 4 observations: the q-th
        # estimate interpolates linearly across the bucket's width.
        h = obs.histogram("q.seconds")
        for v in (0.15, 0.18, 0.2, 0.22):
            h.observe(v)
        p50 = h.quantile(0.5)
        assert 0.1 < p50 < 0.25
        # rank 2 of 4 -> halfway through the bucket
        assert p50 == pytest.approx(0.1 + (0.25 - 0.1) * 0.5)

    def test_quantile_clamped_to_observed_range(self):
        h = obs.histogram("q.clamp")
        h.observe(0.3)
        assert h.quantile(0.0) == pytest.approx(0.3)
        assert h.quantile(1.0) == pytest.approx(0.3)
        assert h.quantile(0.99) <= 0.3

    def test_quantile_orders_monotonically(self):
        h = obs.histogram("q.mono")
        for v in (0.001, 0.01, 0.1, 1.0, 10.0, 20.0, 40.0, 100.0):
            h.observe(v)
        qs = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.95, 0.99)]
        assert qs == sorted(qs)
        assert qs[-1] <= 100.0

    def test_empty_histogram_has_no_quantile(self):
        assert obs.histogram("q.empty").quantile(0.5) is None

    def test_invalid_q_rejected(self):
        h = obs.histogram("q.bad")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_from_snapshot_matches_live(self):
        h = obs.histogram("q.snap")
        for v in (0.05, 0.2, 0.7, 3.0):
            h.observe(v)
        snap = obs.snapshot()["q.snap"]
        for q in (0.5, 0.95):
            assert obs.quantile_from_snapshot(snap, q) == pytest.approx(
                h.quantile(q)
            )

    def test_quantile_from_snapshot_without_buckets(self):
        assert obs.quantile_from_snapshot({"count": 3}, 0.5) is None

    def test_overflow_bucket_uses_observed_max(self):
        h = obs.histogram("q.overflow")
        h.observe(1000.0)  # beyond the largest default bound (300)
        assert h.quantile(0.5) == pytest.approx(1000.0)
