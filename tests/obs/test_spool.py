"""Telemetry spools and the coordinator-side collector."""

import json

import pytest

from repro import obs
from repro.engine.telemetry import TelemetryWriter, read_events


@pytest.fixture(autouse=True)
def _clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def spool_lines(path):
    return [json.loads(line) for line in
            path.read_text(encoding="utf-8").splitlines()]


class TestTelemetrySpool:
    def test_buffers_until_flush(self, tmp_path):
        spool = obs.TelemetrySpool(tmp_path / "spools" / "worker-1.jsonl")
        spool.emit("worker_log", record={"msg": "hi"})
        assert not spool.path.exists()
        spool.flush()
        (line,) = spool_lines(spool.path)
        assert line["event"] == "worker_log"
        assert line["record"] == {"msg": "hi"}

    def test_ship_metrics_is_a_delta_since_construction(self, tmp_path):
        obs.counter("unit.spool.pre").inc(5)  # pre-existing: never shipped
        spool = obs.TelemetrySpool(tmp_path / "worker-1.jsonl")
        assert spool.ship_metrics() is False  # nothing moved yet
        with obs.observed():
            obs.counter("unit.spool.calls").inc(3)
        assert spool.ship_metrics() is True
        spool.flush()
        (line,) = spool_lines(spool.path)
        assert line["event"] == "metrics_snapshot"
        assert line["metrics"]["unit.spool.calls"]["value"] == 3
        assert "unit.spool.pre" not in line["metrics"]

    def test_emit_span_serializes_the_record(self, tmp_path):
        with obs.tracing() as tracer:
            with tracer.span("engine.job"):
                pass
        spool = obs.TelemetrySpool(tmp_path / "worker-1.jsonl")
        spool.emit_span(tracer.spans[0])
        spool.flush()
        (line,) = spool_lines(spool.path)
        assert line["event"] == "worker_span"
        assert line["name"] == "engine.job"
        assert "uid" in line and "ts" in line and "dur" in line

    def test_unwritable_spool_degrades_to_noop(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        spool = obs.TelemetrySpool(target / "worker-1.jsonl")
        spool.emit("worker_log", record={})
        spool.flush()  # must not raise
        spool.emit("worker_log", record={})
        spool.close()


class TestSpoolCollector:
    def test_folds_metrics_spans_and_reemits(self, tmp_path):
        spool_dir = tmp_path / "spools"
        spool = obs.TelemetrySpool(spool_dir / "worker-321.jsonl")
        spool.emit("metrics_snapshot", worker_pid=321, metrics={
            "unit.collect.jobs": {"kind": "counter", "value": 2},
        })
        spool.emit("worker_span", name="engine.job", uid="321.1",
                   parent="1.9", trace="t" * 16, pid=321, tid=1,
                   ts=1.0, dur=0.5, attrs={})
        spool.flush()

        telemetry = tmp_path / "telemetry.jsonl"
        with TelemetryWriter(str(telemetry), batch="b") as writer:
            with obs.tracing() as tracer:
                collector = obs.SpoolCollector(spool_dir, writer=writer)
                assert collector.poll() == 2
                assert collector.poll() == 0  # offsets advanced

        assert obs.counter("unit.collect.jobs").value == 2
        assert collector.worker_snapshots()[321][
            "unit.collect.jobs"]["value"] == 2
        (record,) = collector.span_records
        assert record["uid"] == "321.1"
        assert tracer.records == [record]
        events = {e["event"] for e in read_events(telemetry)}
        assert {"metrics_snapshot", "worker_span"} <= events

    def test_partial_lines_wait_for_completion(self, tmp_path):
        spool_dir = tmp_path / "spools"
        spool_dir.mkdir()
        path = spool_dir / "worker-1.jsonl"
        collector = obs.SpoolCollector(spool_dir)
        whole = json.dumps({"event": "worker_log", "record": {}})
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(whole + "\n")
            fh.write(whole[:10])  # mid-flush tail
            fh.flush()
        assert collector.poll() == 1
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(whole[10:] + "\n")
        assert collector.poll() == 1  # the completed line, exactly once

    def test_backlog_counts_unfolded_bytes(self, tmp_path):
        spool_dir = tmp_path / "spools"
        spool = obs.TelemetrySpool(spool_dir / "worker-1.jsonl")
        spool.emit("worker_log", record={"msg": "x"})
        spool.flush()
        collector = obs.SpoolCollector(spool_dir)
        assert collector.backlog() > 0
        assert obs.spool_backlog(spool_dir, collector) == collector.backlog()
        collector.poll()
        assert collector.backlog() == 0
        # Standalone (no collector): total spooled bytes.
        assert obs.spool_backlog(spool_dir) > 0

    def test_missing_dir_is_empty_not_an_error(self, tmp_path):
        collector = obs.SpoolCollector(tmp_path / "nope")
        assert collector.poll() == 0
        assert collector.backlog() == 0
        assert obs.spool_backlog(tmp_path / "nope") == 0
