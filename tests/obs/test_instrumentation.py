"""The stack under tracing: synthesis, reliability, solver, engine, cache.

These tests pin the acceptance criteria of the observability PR: span
names are stable API (the CLI profile tree and the TUTORIAL reference
them), per-iteration spans exist, and span cumulative times reconcile
with the coarse aggregates ``SynthesisResult`` already reported.
"""

import pytest

from repro import obs
from repro.arch import ArchitectureTemplate, ComponentSpec, Library, Role
from repro.engine import ReliabilityCache, run_batch
from repro.engine.jobs import requirement_sweep
from repro.reliability import (
    failure_probability,
    problem_from_architecture,
    reliability_cache,
)
from repro.reliability.registry import run_engine
from repro.synthesis import (
    IfFeedsThenFed,
    RequireIncomingEdge,
    SynthesisSpec,
    synthesize_ilp_ar,
    synthesize_ilp_mr,
)


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


def make_template(n_per_layer=3, p=1e-2):
    lib = Library(switch_cost=1.0)
    for i in range(n_per_layer):
        lib.add(ComponentSpec(f"G{i}", "gen", cost=50, capacity=100,
                              failure_prob=p, role=Role.SOURCE))
        lib.add(ComponentSpec(f"B{i}", "bus", cost=20, failure_prob=p))
    lib.add(ComponentSpec("L0", "load", demand=10, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    names = [f"G{i}" for i in range(n_per_layer)] + [
        f"B{i}" for i in range(n_per_layer)
    ] + ["L0"]
    t = ArchitectureTemplate(lib, names)
    for i in range(n_per_layer):
        for j in range(n_per_layer):
            t.allow_edge(f"G{i}", f"B{j}")
        t.allow_edge(f"B{i}", "L0")
    return t


def make_spec(t, r_star):
    gens = [n for n in (s.name for s in t.library) if n.startswith("G")]
    buses = [n for n in (s.name for s in t.library) if n.startswith("B")]
    return SynthesisSpec(
        template=t,
        requirements=[
            RequireIncomingEdge(nodes=["L0"], k=1),
            IfFeedsThenFed(via=buses, downstream=["L0"], upstream=gens),
        ],
        reliability_target=r_star,
    )


class TestIlpMrSpans:
    def test_one_iteration_span_per_iteration(self):
        with obs.tracing() as tracer:
            res = synthesize_ilp_mr(
                make_spec(make_template(3), 1e-4), backend="scipy"
            )
        assert res.feasible and res.num_iterations >= 2
        iters = [s for s in tracer.spans if s.name == "ilp_mr.iteration"]
        assert len(iters) == res.num_iterations
        assert sorted(s.attrs["index"] for s in iters) == list(
            range(1, res.num_iterations + 1)
        )
        # Every iteration carries its candidate's cost and reliability.
        assert all("cost" in s.attrs and "reliability" in s.attrs for s in iters)

    def test_span_times_reconcile_with_result_aggregates(self):
        with obs.tracing() as tracer:
            res = synthesize_ilp_mr(
                make_spec(make_template(3), 1e-4), backend="scipy"
            )
        roots = obs.build_profile(tracer.spans)
        root = next(r for r in roots if r.name == "ilp_mr")
        solve = root.find("ilp_mr.iteration/ilp_mr.solve")
        analysis = root.find("ilp_mr.iteration/ilp_mr.analysis")
        assert solve.count == res.num_iterations
        assert analysis.count == res.num_iterations
        # Acceptance: within 5% of the result's own aggregates.
        assert solve.cum == pytest.approx(res.solver_time, rel=0.05)
        assert analysis.cum == pytest.approx(res.analysis_time, rel=0.05)

    def test_learncons_spans_on_all_but_last_iteration(self):
        with obs.tracing() as tracer:
            res = synthesize_ilp_mr(
                make_spec(make_template(3), 1e-4), backend="scipy"
            )
        learns = [s for s in tracer.spans if s.name == "ilp_mr.learncons"]
        assert len(learns) == res.num_iterations - 1

    def test_untraced_run_identical(self):
        spec = make_spec(make_template(3), 1e-4)
        with obs.tracing():
            traced = synthesize_ilp_mr(spec, backend="scipy")
        plain = synthesize_ilp_mr(make_spec(make_template(3), 1e-4),
                                  backend="scipy")
        assert traced.cost == plain.cost
        assert traced.reliability == plain.reliability
        assert traced.num_iterations == plain.num_iterations


class TestIlpArSpans:
    def test_encode_solve_analysis_phases(self):
        with obs.tracing() as tracer:
            res = synthesize_ilp_ar(
                make_spec(make_template(3), 1e-3), backend="scipy"
            )
        assert res.feasible
        names = {s.name for s in tracer.spans}
        assert {"ilp_ar", "ilp_ar.encode", "ilp_ar.solve",
                "ilp_ar.analysis"} <= names
        encode = next(s for s in tracer.spans if s.name == "ilp_ar.encode")
        # Eq. 9-11 indicator count is reported on the encode span.
        assert encode.attrs["x_ijk"] > 0
        assert encode.attrs["sinks"] == 1


class TestReliabilitySpans:
    def test_run_engine_span_and_metrics(self):
        arch = synthesize_ilp_mr(
            make_spec(make_template(2), 1e-3), backend="scipy"
        ).architecture
        problem = problem_from_architecture(arch, "L0")
        with obs.tracing() as tracer:
            value = run_engine("bdd", problem)
        (s,) = [x for x in tracer.spans if x.name == "reliability.engine"]
        assert s.attrs["engine"] == "bdd"
        assert s.attrs["nodes"] > 0 and s.attrs["edges"] > 0
        assert s.attrs["value"] == value
        # BDD engine reports its compiled size on the span.
        assert s.attrs["bdd_nodes"] > 0 and s.attrs["path_count"] > 0
        snap = obs.snapshot()
        assert snap["reliability.engine.bdd.calls"]["value"] == 1
        assert snap["reliability.engine.bdd.seconds"]["count"] == 1

    def test_sdp_reports_path_count(self):
        arch = synthesize_ilp_mr(
            make_spec(make_template(2), 1e-3), backend="scipy"
        ).architecture
        problem = problem_from_architecture(arch, "L0")
        with obs.tracing() as tracer:
            run_engine("sdp", problem)
        (s,) = [x for x in tracer.spans if x.name == "reliability.engine"]
        assert s.attrs["path_count"] > 0

    def test_analysis_span_marks_cache_hits(self):
        arch = synthesize_ilp_mr(
            make_spec(make_template(2), 1e-3), backend="scipy"
        ).architecture
        with reliability_cache(ReliabilityCache(None)):
            with obs.tracing() as tracer:
                failure_probability(arch, sink="L0")
                failure_probability(arch, sink="L0")
        spans = [s for s in tracer.spans if s.name == "reliability.analysis"]
        assert [s.attrs["cached"] for s in spans] == [False, True]

    def test_cache_counters_surface_as_gauges(self):
        arch = synthesize_ilp_mr(
            make_spec(make_template(2), 1e-3), backend="scipy"
        ).architecture
        with reliability_cache(ReliabilityCache(None)):
            with obs.tracing():
                failure_probability(arch, sink="L0")
                failure_probability(arch, sink="L0")
        snap = obs.snapshot()
        assert snap["reliability.cache.hits"]["value"] == 1
        assert snap["reliability.cache.misses"]["value"] == 1
        assert snap["reliability.cache.stores"]["value"] == 1
        assert snap["reliability.cache.hit_rate"]["value"] == 0.5
        # Per-method analysis counters: one computed call, one cache hit.
        assert snap["reliability.analysis.bdd.calls"]["value"] == 1
        assert snap["reliability.analysis.cache_hits"]["value"] == 1
        assert snap["reliability.analysis.bdd.seconds"]["count"] == 1


class TestBnBMetrics:
    def test_bnb_stats_reach_metrics_and_span(self):
        with obs.tracing() as tracer:
            res = synthesize_ilp_mr(
                make_spec(make_template(2), 1e-3), backend="bnb"
            )
        assert res.feasible
        snap = obs.snapshot()
        assert snap["ilp.bnb.solves"]["value"] >= 1
        assert snap["ilp.bnb.nodes"]["value"] >= 1
        assert snap["ilp.bnb.incumbents"]["value"] >= 1
        assert snap["ilp.bnb.seconds"]["count"] == snap["ilp.bnb.solves"]["value"]
        assert snap["ilp.bnb.gap_at_exit"]["value"] == pytest.approx(0.0)
        solve_spans = [s for s in tracer.spans if s.name == "ilp.solve"]
        assert solve_spans
        assert all(s.attrs["backend"] == "bnb" for s in solve_spans)
        assert any(s.attrs.get("bnb_nodes", 0) >= 1 for s in solve_spans)


class TestEngineSpans:
    def test_batch_and_job_spans_in_serial_mode(self):
        spec = make_spec(make_template(3), None)
        batch = requirement_sweep(
            spec, [1e-2, 1e-3], algorithm="mr", backend="scipy"
        )
        with obs.tracing() as tracer:
            outcome = run_batch(batch, jobs=1)
        assert outcome.num_failed == 0
        batch_spans = [s for s in tracer.spans if s.name == "engine.batch"]
        job_spans = [s for s in tracer.spans if s.name == "engine.job"]
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["jobs"] == 2
        assert batch_spans[0].attrs["failed"] == 0
        assert len(job_spans) == 2
        # Jobs nest under the batch; synthesis spans nest under jobs.
        assert all(s.parent_id == batch_spans[0].span_id for s in job_spans)
        mr_roots = [s for s in tracer.spans if s.name == "ilp_mr"]
        job_ids = {s.span_id for s in job_spans}
        assert all(s.parent_id in job_ids for s in mr_roots)
