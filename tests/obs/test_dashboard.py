"""Tests for the `repro top` dashboard plumbing (`repro.obs.dashboard`)."""

import pytest

from repro import obs
from repro.obs.dashboard import (
    DashboardClient,
    build_dashboard_model,
    histogram_quantile,
    parse_prometheus,
    render_dashboard,
)

SCRAPE = """\
# HELP repro_engine_jobs_completed_total Jobs finished.
# TYPE repro_engine_jobs_completed_total counter
repro_engine_jobs_completed_total 42
# TYPE repro_reliability_cache_hits gauge
repro_reliability_cache_hits 30
repro_reliability_cache_misses 10
# TYPE repro_engine_job_seconds histogram
repro_engine_job_seconds_bucket{le="0.1"} 10
repro_engine_job_seconds_bucket{le="1"} 30
repro_engine_job_seconds_bucket{le="10"} 40
repro_engine_job_seconds_bucket{le="+Inf"} 40
repro_engine_job_seconds_sum 55.5
repro_engine_job_seconds_count 40
repro_ilp_bnb_incumbent_objective 41.5
"""


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_metrics()
    obs.configure_obslog()
    yield
    obs.reset_metrics()
    obs.configure_obslog()


class TestParsePrometheus:
    def test_samples_and_types(self):
        parsed = parse_prometheus(SCRAPE)
        assert parsed["types"]["repro_engine_jobs_completed_total"] == \
            "counter"
        samples = parsed["samples"]
        assert samples["repro_engine_jobs_completed_total"] == [({}, 42.0)]
        assert samples["repro_reliability_cache_hits"] == [({}, 30.0)]
        buckets = samples["repro_engine_job_seconds_bucket"]
        assert ({"le": "0.1"}, 10.0) in buckets
        assert ({"le": "+Inf"}, 40.0) in buckets

    def test_roundtrip_from_live_registry(self):
        # whatever render_prometheus writes, the dashboard must parse
        obs.counter("engine.jobs.completed").inc(3)
        obs.histogram("engine.job.seconds").observe(0.5)
        parsed = parse_prometheus(obs.render_prometheus())
        assert parsed["samples"]["repro_engine_jobs_completed_total"] == \
            [({}, 3.0)]
        assert parsed["samples"]["repro_engine_job_seconds_count"] == \
            [({}, 1.0)]


class TestHistogramQuantile:
    def test_median_from_cumulative_buckets(self):
        parsed = parse_prometheus(SCRAPE)
        p50 = histogram_quantile(parsed, "repro_engine_job_seconds", 0.5)
        # rank 20 of 40 falls in the (0.1, 1] bucket
        assert 0.1 < p50 <= 1.0
        p99 = histogram_quantile(parsed, "repro_engine_job_seconds", 0.99)
        assert p99 > p50

    def test_missing_series_is_none(self):
        parsed = parse_prometheus(SCRAPE)
        assert histogram_quantile(parsed, "no_such_series", 0.5) is None

    def test_agrees_with_live_histogram(self):
        h = obs.histogram("engine.job.seconds")
        for v in (0.05, 0.2, 0.7, 3.0, 8.0):
            h.observe(v)
        parsed = parse_prometheus(obs.render_prometheus())
        for q in (0.5, 0.95):
            est = histogram_quantile(parsed, "repro_engine_job_seconds", q)
            # scrape loses min/max, so clamping may differ at the tails —
            # mid-distribution the two paths must land in the same bucket
            assert est == pytest.approx(h.quantile(q), rel=0.5)


class TestModel:
    def test_unreachable_model(self):
        model = build_dashboard_model(
            url="http://x", health=None, runs=None, alerts=None,
            metrics=None, now=10.0)
        assert model["reachable"] is False
        assert model["status"] == "unreachable"

    def test_model_folds_endpoints(self):
        health = {"status": "degraded",
                  "queue": {"pending": 3, "leased": 1,
                            "workers": {"42": {"jobs": 7}}}}
        runs = {"active": [{"run_id": "r-1", "state": "running",
                            "progress": {"done": 2, "total": 4}}],
                "finished": []}
        alerts = {"firing": [{"rule": "hot", "severity": "critical",
                              "message": "x"}],
                  "rules": [{"name": "hot"}, {"name": "cold"}]}
        model = build_dashboard_model(
            url="http://x", health=health, runs=runs, alerts=alerts,
            metrics=parse_prometheus(SCRAPE), now=100.0)
        assert model["status"] == "degraded"
        assert model["queue"] == {"pending": 3, "leased": 1}
        assert model["workers"] == {"42": {"jobs": 7}}
        assert model["rules"] == 2
        assert [a["rule"] for a in model["alerts"]] == ["hot"]
        tp = model["throughput"]
        assert tp["jobs_total"] == 42.0
        assert tp["cache_hit_rate"] == pytest.approx(0.75)
        assert tp["job_seconds_p50"] is not None
        assert model["bnb"]["incumbent"] == 41.5
        assert model["bnb"]["trail"] == [41.5]

    def test_jobs_per_s_delta_against_previous(self):
        first = build_dashboard_model(
            url="http://x", health=None, runs=None, alerts=None,
            metrics=parse_prometheus(SCRAPE), now=100.0)
        bumped = SCRAPE.replace(
            "repro_engine_jobs_completed_total 42",
            "repro_engine_jobs_completed_total 52")
        second = build_dashboard_model(
            url="http://x", health=None, runs=None, alerts=None,
            metrics=parse_prometheus(bumped), previous=first, now=105.0)
        assert second["throughput"]["jobs_per_s"] == pytest.approx(2.0)

    def test_incumbent_trail_dedups_and_caps(self):
        trail = None
        for step, incumbent in enumerate(
                [50.0, 50.0, 45.0, 45.0, 41.5] + [40.0 - i for i in range(15)]):
            scrape = SCRAPE.replace(
                "repro_ilp_bnb_incumbent_objective 41.5",
                f"repro_ilp_bnb_incumbent_objective {incumbent}")
            model = build_dashboard_model(
                url="http://x", health=None, runs=None, alerts=None,
                metrics=parse_prometheus(scrape), trail=trail,
                now=float(step))
            trail = model["bnb"]["trail"]
        assert len(trail) == 12  # capped
        assert trail[-1] == 26.0
        # consecutive duplicates collapsed
        assert all(a != b for a, b in zip(trail, trail[1:]))


class TestRender:
    def test_render_plain_text_panels(self):
        health = {"status": "degraded", "queue": {"pending": 3}}
        alerts = {"firing": [{"rule": "hot", "severity": "critical",
                              "message": "queue on fire", "value": 9.0}],
                  "rules": [{"name": "hot"}]}
        runs = {"active": [{"run_id": "r-1", "state": "running",
                            "progress": {"done": 2, "total": 4}}],
                "finished": []}
        model = build_dashboard_model(
            url="http://x", health=health, runs=runs, alerts=alerts,
            metrics=parse_prometheus(SCRAPE), now=100.0)
        lines = render_dashboard(model, width=100)
        text = "\n".join(lines)
        assert "degraded" in text
        assert "hot" in text and "queue on fire" in text
        assert "r-1" in text
        assert all(len(line) <= 100 for line in lines)

    def test_render_unreachable(self):
        model = build_dashboard_model(
            url="http://x", health=None, runs=None, alerts=None,
            metrics=None, now=1.0)
        text = "\n".join(render_dashboard(model))
        assert "unreachable" in text


class TestClient:
    def test_poll_against_live_server(self):
        from repro.obs.alerts import AlertEngine, AlertRule
        from repro.obs.server import ObsServer

        rule = AlertRule(name="synthetic", type="threshold", params={
            "metric": "engine.jobs.completed", "op": ">", "value": 0})
        server = ObsServer(host="127.0.0.1", port=0,
                           alerts=AlertEngine([rule], health=dict),
                           alert_interval=3600)
        server.start()
        try:
            obs.counter("engine.jobs.completed").inc(2)
            client = DashboardClient(f"http://127.0.0.1:{server.port}")
            model = client.poll()
            assert model["reachable"] is True
            assert model["throughput"]["jobs_total"] == 2.0
            assert [a["rule"] for a in model["alerts"]] == ["synthetic"]
        finally:
            server.stop()

    def test_poll_unreachable_endpoint(self):
        client = DashboardClient("http://127.0.0.1:1", timeout=0.2)
        model = client.poll()
        assert model["reachable"] is False
