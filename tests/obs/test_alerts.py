"""Tests for the declarative alert-rule engine (`repro.obs.alerts`)."""

import json
import urllib.request

import pytest

from repro import obs
from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    _parse_toml_minimal,
    load_alert_rules,
    parse_alert_rules,
)

RULES_TOML = """\
# fleet alert rules
[[rule]]
name = "too-many-failures"
type = "threshold"
severity = "critical"
description = "any failed job is a page"
metric = "engine.jobs.failed"
op = ">"
value = 0

[[rule]]
name = "slow-solves"
type = "threshold"
metric = "engine.job.seconds.p95"
op = ">"
value = 30.0

[[rule]]
name = "stuck-lease"
type = "stuck_lease"
source = "queue"
ttl = 60
"""


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_metrics()
    obs.configure_obslog()
    yield
    obs.reset_metrics()
    obs.configure_obslog()


class TestRuleParsing:
    def test_parse_toml_rules(self):
        rules = parse_alert_rules(RULES_TOML)
        assert [r.name for r in rules] == [
            "too-many-failures", "slow-solves", "stuck-lease"]
        assert rules[0].severity == "critical"
        assert rules[0].params["metric"] == "engine.jobs.failed"
        assert rules[2].type == "stuck_lease"
        assert rules[2].params["ttl"] == 60

    def test_minimal_fallback_matches_tomllib(self):
        # the 3.10 fallback must agree with tomllib on alert files
        doc = _parse_toml_minimal(RULES_TOML)
        try:
            import tomllib
        except ImportError:
            pass
        else:
            assert doc == tomllib.loads(RULES_TOML)
        assert len(doc["rule"]) == 3
        assert doc["rule"][1]["value"] == 30.0
        assert doc["rule"][2]["ttl"] == 60

    def test_unknown_rule_type_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", type="wishful_thinking")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            AlertRule(name="x", type="threshold", severity="apocalyptic")

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_alert_rules(tmp_path / "nope.toml") == []

    def test_load_roundtrip(self, tmp_path):
        path = tmp_path / "alerts.toml"
        path.write_text(RULES_TOML, encoding="utf-8")
        assert len(load_alert_rules(path)) == 3


def threshold_rule(metric="t.metric", op=">", value=5.0, **kw):
    params = {"metric": metric, "op": op, "value": value}
    params.update(kw.pop("params", {}))
    return AlertRule(name=kw.pop("name", "t"), type="threshold",
                     params=params, **kw)


class TestThreshold:
    def test_fires_on_breach_and_resolves(self):
        engine = AlertEngine([threshold_rule()], health=dict)
        obs.gauge("t.metric").set(3.0)
        assert engine.evaluate(now=1.0) == []
        obs.gauge("t.metric").set(7.0)
        (alert,) = engine.evaluate(now=2.0)
        assert alert["rule"] == "t"
        assert alert["since"] == 2.0
        assert "breach" in alert["message"]
        obs.gauge("t.metric").set(1.0)
        assert engine.evaluate(now=3.0) == []

    def test_exactly_one_firing_edge(self):
        engine = AlertEngine([threshold_rule()], health=dict)
        obs.gauge("t.metric").set(9.0)
        for now in (1.0, 2.0, 3.0):
            engine.evaluate(now=now)
        snap = obs.snapshot()
        assert snap["obs.alerts.fired"]["value"] == 1
        assert "obs.alerts.resolved" not in snap
        # the since timestamp pins the original edge
        (alert,) = engine.firing()
        assert alert["since"] == 1.0

    def test_histogram_quantile_statistic(self):
        rule = threshold_rule(metric="t.seconds.p95", value=1.0)
        engine = AlertEngine([rule], health=dict)
        h = obs.histogram("t.seconds")
        for _ in range(20):
            h.observe(0.01)
        assert engine.evaluate(now=1.0) == []
        for _ in range(20):
            h.observe(9.0)
        (alert,) = engine.evaluate(now=2.0)
        assert alert["value"] > 1.0

    def test_health_source_threshold(self):
        health = {"queue": {"pending": 12}}
        rule = AlertRule(name="deep-queue", type="threshold", params={
            "source": "health", "key": "queue.pending",
            "op": ">=", "value": 10})
        engine = AlertEngine([rule], health=lambda: health)
        (alert,) = engine.evaluate(now=1.0)
        assert alert["rule"] == "deep-queue"
        health["queue"]["pending"] = 0
        assert engine.evaluate(now=2.0) == []

    def test_missing_metric_never_fires(self):
        engine = AlertEngine([threshold_rule(metric="no.such")],
                             health=dict)
        assert engine.evaluate(now=1.0) == []

    def test_bad_rule_is_contained(self):
        # an unknown op raises inside _evaluate_rule; the engine logs
        # and moves on instead of taking the evaluation loop down
        bad = threshold_rule(name="bad", op="!?")
        good = threshold_rule(name="good")
        engine = AlertEngine([bad, good], health=dict)
        obs.gauge("t.metric").set(9.0)
        firing = engine.evaluate(now=1.0)
        assert [a["rule"] for a in firing] == ["good"]


class TestRateOfChange:
    def test_fires_when_slope_exceeds_threshold(self):
        rule = AlertRule(name="roc", type="rate_of_change", params={
            "metric": "r.metric", "threshold": 1.0, "window": 60})
        engine = AlertEngine([rule], health=dict)
        g = obs.gauge("r.metric")
        g.set(0.0)
        assert engine.evaluate(now=0.0) == []
        g.set(50.0)  # +50 in 10s -> 5.0/s
        (alert,) = engine.evaluate(now=10.0)
        assert alert["value"] == pytest.approx(5.0)
        g.set(50.0)  # flat again -> resolves once window slides
        assert engine.evaluate(now=100.0) == []


class TestSloBurn:
    def test_burn_rate(self):
        rule = AlertRule(name="slo", type="slo_burn", params={
            "bad": "s.bad", "total": "s.total",
            "objective": 0.99, "burn": 2.0, "window": 300})
        engine = AlertEngine([rule], health=dict)
        bad, total = obs.gauge("s.bad"), obs.gauge("s.total")
        bad.set(0)
        total.set(0)
        assert engine.evaluate(now=0.0) == []
        # 10 bad of 100 -> 10% errors against a 1% budget: 10x burn
        bad.set(10)
        total.set(100)
        (alert,) = engine.evaluate(now=60.0)
        assert alert["value"] == pytest.approx(10.0)
        # same window, no *new* errors -> burn decays under the limit
        bad.set(10)
        total.set(10_000)
        assert engine.evaluate(now=120.0) == []


class TestStuckLease:
    def test_stuck_lease_from_health(self):
        health = {"queue": {"oldest_lease_age": 5.0}}
        rule = AlertRule(name="lease", type="stuck_lease", params={
            "source": "queue", "ttl": 60})
        engine = AlertEngine([rule], health=lambda: health)
        assert engine.evaluate(now=1.0) == []
        health["queue"]["oldest_lease_age"] = 300.0
        (alert,) = engine.evaluate(now=2.0)
        assert "worker lost" in alert["message"]
        snap = obs.snapshot()
        assert snap["obs.alerts.fired"]["value"] == 1


class TestHeartbeatSilence:
    class _Runs:
        def __init__(self, runs):
            self._runs = runs

        def active(self):
            return self._runs

    def test_silent_run_fires(self):
        rule = AlertRule(name="hb", type="heartbeat_silence",
                         params={"window": 120})
        runs = self._Runs([
            {"run_id": "r-live", "updated_at": 990.0},
            {"run_id": "r-dead", "updated_at": 100.0},
        ])
        engine = AlertEngine([rule], runs=runs, health=dict)
        (alert,) = engine.evaluate(now=1000.0)
        assert "r-dead" in alert["message"]

    def test_fresh_runs_quiet(self):
        rule = AlertRule(name="hb", type="heartbeat_silence",
                         params={"window": 120})
        engine = AlertEngine(
            [rule], runs=self._Runs([{"run_id": "r", "updated_at": 995.0}]),
            health=dict)
        assert engine.evaluate(now=1000.0) == []


class TestViews:
    def test_snapshot_document(self):
        engine = AlertEngine([threshold_rule()], health=dict)
        obs.gauge("t.metric").set(9.0)
        engine.evaluate(now=5.0)
        doc = engine.snapshot()
        assert doc["evaluated_at"] == 5.0
        assert doc["rules"][0]["name"] == "t"
        assert doc["firing"][0]["rule"] == "t"

    def test_health_degrades_while_firing(self):
        engine = AlertEngine([threshold_rule()], health=dict)
        assert engine.health()["degraded"] is False
        obs.gauge("t.metric").set(9.0)
        engine.evaluate(now=1.0)
        doc = engine.health()
        assert doc["degraded"] is True
        assert doc["alerts"] == ["t"]


class TestServerIntegration:
    def test_api_alerts_and_healthz(self):
        from repro.obs.server import ObsServer

        engine = AlertEngine([threshold_rule(name="synthetic")],
                             health=dict)
        server = ObsServer(host="127.0.0.1", port=0, alerts=engine,
                           alert_interval=3600)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"

            def get(path):
                with urllib.request.urlopen(base + path, timeout=5) as resp:
                    return json.loads(resp.read().decode("utf-8"))

            doc = get("/api/alerts")
            assert doc["firing"] == []
            assert get("/healthz")["status"] == "ok"

            obs.gauge("t.metric").set(9.0)
            doc = get("/api/alerts")
            assert [f["rule"] for f in doc["firing"]] == ["synthetic"]
            health = get("/healthz")
            assert health["status"] == "degraded"
            assert health["alerts"]["firing"] == 1
        finally:
            server.stop()
