"""Tests for the batch executor: serial/parallel equivalence, retries,
timeouts, and the job builders."""

import os

import pytest

from repro.engine import (
    BatchSpec,
    Job,
    budget_bisection,
    contingency_sweep,
    execute_job,
    iter_batch,
    register_runner,
    reliability_map,
    requirement_sweep,
    run_batch,
    scaling_sweep,
    tradeoff_points,
)
from repro.reliability import failure_probability
from repro.synthesis import pareto_front
from tests.synthesis.test_ilp_mr import make_spec, make_template

LEVELS = [0.5, 1e-3]


def sweep_spec():
    return make_spec(make_template(2, p=1e-2), r_star=None)


def result_key(res):
    return (res.status, res.cost, res.reliability)


class TestBuilders:
    def test_requirement_sweep_orders_loose_to_tight(self):
        batch = requirement_sweep(sweep_spec(), [1e-6, 0.5, 1e-3])
        assert [j.meta["r_star"] for j in batch.jobs] == [0.5, 1e-3, 1e-6]
        assert all(j.kind == "synthesize" for j in batch.jobs)

    def test_requirement_sweep_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            requirement_sweep(sweep_spec(), LEVELS, algorithm="annealing")

    def test_options_forwarded_to_payload(self):
        batch = requirement_sweep(
            sweep_spec(), [1e-3], backend="scipy", mip_rel_gap=1e-2
        )
        options = batch.jobs[0].payload["options"]
        assert options == {"backend": "scipy", "mip_rel_gap": 1e-2}

    def test_contingency_sweep_jobs(self):
        # Loose enough that a single surviving bus chain still meets it.
        spec = make_spec(make_template(2, p=1e-2), r_star=0.1)
        batch = contingency_sweep(spec, ["B0"], backend="scipy")
        assert [j.meta["outage"] for j in batch.jobs] == [None, "B0"]
        outcome = run_batch(batch)
        by_id = outcome.by_id()
        assert by_id["outage=none"].unwrap().feasible
        # With B0 knocked out the other bus still carries the load.
        res = by_id["outage=B0"].unwrap()
        assert res.feasible
        assert not any(
            "B0" in (res.architecture.template.name_of(i),
                     res.architecture.template.name_of(j))
            for (i, j) in res.architecture.edges
        )

    def test_budget_bisection_job(self):
        spec = make_spec(make_template(2, p=1e-2), r_star=None)
        batch = budget_bisection(spec, [1000.0], backend="scipy")
        outcome = run_batch(batch)
        point = outcome.results[0].unwrap()
        assert point is not None
        assert point.cost <= 1000.0


class TestSerialExecution:
    def test_requirement_sweep_matches_direct_synthesis(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="mr",
                                  backend="scipy")
        outcome = run_batch(batch)
        assert outcome.num_failed == 0
        assert outcome.jobs_used == 1
        points = tradeoff_points(outcome.results)
        assert [p.r_star for p in points] == sorted(LEVELS, reverse=True)
        for p in points:
            assert p.feasible
            assert p.reliability <= p.r_star

    def test_reliability_map_matches_failure_probability(self):
        from tests.engine.test_cache import small_arch

        arch = small_arch()
        outcome = run_batch(reliability_map(arch, method="bdd"))
        for res in outcome.results:
            direct = failure_probability(arch, sink=res.meta["sink"],
                                         method="bdd")
            assert res.unwrap() == direct

    def test_unknown_job_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(Job(job_id="x", kind="teleport", payload={}))

    def test_semantic_failure_contained(self):
        register_runner("boom", _boom)
        outcome = run_batch(BatchSpec("boom", [
            Job(job_id="a", kind="boom", payload={}),
            Job(job_id="b", kind="boom", payload={"ok": True}),
        ]))
        by_id = outcome.by_id()
        assert not by_id["a"].ok
        assert by_id["a"].error_type == "RuntimeError"
        assert by_id["a"].attempts == 1  # semantic errors are not retried
        assert by_id["b"].ok and by_id["b"].value == 42
        with pytest.raises(RuntimeError, match="job 'a' failed"):
            outcome.values()

    def test_transient_failure_retried(self, tmp_path):
        register_runner("flaky", _flaky)
        marker = tmp_path / "attempts"
        outcome = run_batch(
            BatchSpec("flaky", [Job(
                job_id="f", kind="flaky",
                payload={"marker": str(marker), "fail_times": 2},
            )]),
            retries=2,
        )
        res = outcome.results[0]
        assert res.ok
        assert res.attempts == 3

    def test_transient_retries_exhausted(self, tmp_path):
        register_runner("flaky", _flaky)
        marker = tmp_path / "attempts"
        outcome = run_batch(
            BatchSpec("flaky", [Job(
                job_id="f", kind="flaky",
                payload={"marker": str(marker), "fail_times": 5},
            )]),
            retries=1,
        )
        res = outcome.results[0]
        assert not res.ok
        assert res.error_type == "OSError"
        assert res.attempts == 2


class TestParallelExecution:
    def test_pool_matches_serial(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="mr",
                                  backend="scipy")
        serial = run_batch(batch, jobs=1)
        pooled = run_batch(batch, jobs=2)
        assert pooled.num_failed == 0
        assert [r.job_id for r in pooled.results] == [
            r.job_id for r in serial.results
        ]
        for a, b in zip(serial.values(), pooled.values()):
            assert result_key(a) == result_key(b)
        assert all(r.worker_pid != os.getpid() for r in pooled.results)

    def test_pareto_front_invariant_under_parallelism(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="ar",
                                  backend="scipy")
        serial = pareto_front(tradeoff_points(run_batch(batch, jobs=1).results))
        pooled = pareto_front(tradeoff_points(run_batch(batch, jobs=2).results))
        assert [(p.cost, p.reliability) for p in serial] == [
            (p.cost, p.reliability) for p in pooled
        ]

    def test_iter_batch_streams_all_results(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="ar",
                                  backend="scipy")
        seen = {res.job_id for res in iter_batch(batch, jobs=2)}
        assert seen == set(batch.job_ids())

    def test_pool_timeout_enforced(self):
        register_runner("sleep", _sleep)
        outcome = run_batch(
            BatchSpec("sleepy", [
                Job(job_id="slow", kind="sleep", payload={"seconds": 6.0}),
                Job(job_id="fast", kind="sleep", payload={"seconds": 0.0}),
            ]),
            jobs=2, timeout=1.0, retries=0,
        )
        by_id = outcome.by_id()
        assert by_id["fast"].ok
        assert not by_id["slow"].ok
        assert by_id["slow"].error_type == "TimeoutError"


def multi_sink_arch(n_sinks=4):
    """A fully wired gen->bus->loads architecture with ``n_sinks`` sinks.

    Each sink's reliability subproblem is distinct (different relevant
    subgraph), so serial and pool runs see identical cache behaviour —
    no cross-job hits for serial mode to enjoy and pool mode to miss.
    """
    from repro.arch import (
        Architecture,
        ArchitectureTemplate,
        ComponentSpec,
        Library,
        Role,
    )

    lib = Library(switch_cost=1.0)
    for i in range(2):
        lib.add(ComponentSpec(f"G{i}", "gen", cost=50, capacity=100,
                              failure_prob=1e-2, role=Role.SOURCE))
        lib.add(ComponentSpec(f"B{i}", "bus", cost=20, failure_prob=1e-2))
    for s in range(n_sinks):
        lib.add(ComponentSpec(f"L{s}", "load", demand=10, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    names = ["G0", "G1", "B0", "B1"] + [f"L{s}" for s in range(n_sinks)]
    t = ArchitectureTemplate(lib, names)
    for i in range(2):
        for j in range(2):
            t.allow_edge(f"G{i}", f"B{j}")
        for s in range(n_sinks):
            t.allow_edge(f"B{i}", f"L{s}")
    return Architecture(t, t.allowed_edges)


class TestWorkerMetricsAggregation:
    """Pool workers' metrics must survive the trip home (the jobs>1
    metrics-loss fix): after a parallel batch the parent registry reports
    the same per-engine call totals as a serial run of the same batch."""

    def run_with_metrics(self, jobs, telemetry=None):
        from repro import obs

        obs.reset_metrics()
        outcome = run_batch(
            reliability_map(multi_sink_arch(), method="bdd"),
            jobs=jobs, telemetry=telemetry,
        )
        assert outcome.num_failed == 0
        snap = obs.snapshot()
        obs.reset_metrics()
        return outcome, {
            name: data["value"]
            for name, data in snap.items()
            if data["kind"] == "counter"
        }

    def test_pool_counters_match_serial(self):
        _, serial = self.run_with_metrics(jobs=1)
        _, pooled = self.run_with_metrics(jobs=2)
        assert serial["engine.jobs.completed"] == 4
        assert pooled == serial

    def test_job_results_carry_metrics_deltas(self):
        outcome, _ = self.run_with_metrics(jobs=2)
        for res in outcome.results:
            assert res.metrics, "pool results must ship a metrics delta"
            assert res.metrics["engine.jobs.completed"]["value"] == 1

    def test_metrics_snapshots_land_in_telemetry(self, tmp_path):
        from repro import obs
        from repro.engine import read_events

        telemetry = str(tmp_path / "telemetry.jsonl")
        outcome, counters = self.run_with_metrics(jobs=2, telemetry=telemetry)
        snaps = [e for e in read_events(telemetry)
                 if e["event"] == "metrics_snapshot"]
        assert len(snaps) == len(outcome.results)
        assert {s["job"] for s in snaps} == set(outcome.by_id())
        assert all(s["worker_pid"] != os.getpid() for s in snaps)
        # The artifact alone reconstructs the worker totals.
        replayed = obs.merge_telemetry(telemetry)
        assert replayed.counter("engine.jobs.completed").value == (
            counters["engine.jobs.completed"]
        )

    def test_serial_mode_does_not_double_count(self, tmp_path):
        from repro.engine import read_events

        telemetry = str(tmp_path / "telemetry.jsonl")
        _, counters = self.run_with_metrics(jobs=1, telemetry=telemetry)
        assert counters["engine.jobs.completed"] == 4
        snaps = [e for e in read_events(telemetry)
                 if e["event"] == "metrics_snapshot"]
        assert snaps == []  # serial jobs tick the parent registry directly

    def test_batch_registers_a_live_run(self):
        from repro import obs

        obs.reset_run_registry()
        outcome, _ = self.run_with_metrics(jobs=1)
        finished = obs.run_registry().snapshot()["finished"]
        (record,) = [r for r in finished if r["kind"] == "batch"]
        assert record["status"] == "done"
        assert record["done"] == len(outcome.results)
        assert record["failed"] == 0
        obs.reset_run_registry()


# Module-level runners so they pickle / survive the fork into pool workers.


def _boom(job):
    if job.payload.get("ok"):
        return 42
    raise RuntimeError("intentional failure")


def _flaky(job):
    marker = job.payload["marker"]
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            attempts = int(fh.read() or 0)
    attempts += 1
    with open(marker, "w") as fh:
        fh.write(str(attempts))
    if attempts <= job.payload["fail_times"]:
        raise OSError(f"transient glitch #{attempts}")
    return attempts


def _sleep(job):
    import time

    time.sleep(job.payload["seconds"])
    return "done"


def _echo(job):
    return job.payload["i"]


class TestStreamingHooks:
    """The on_result / should_stop hooks the service runner drives."""

    def test_on_result_streams_in_completion_order(self):
        register_runner("echo", _echo)
        batch = BatchSpec("echo", [
            Job(job_id=f"e{i}", kind="echo", payload={"i": i})
            for i in range(4)
        ])
        seen = []
        outcome = run_batch(batch, on_result=lambda r: seen.append(r.job_id))
        assert seen == [f"e{i}" for i in range(4)]
        assert not outcome.stopped

    def test_should_stop_breaks_at_job_boundary(self):
        register_runner("echo", _echo)
        batch = BatchSpec("echo", [
            Job(job_id=f"e{i}", kind="echo", payload={"i": i})
            for i in range(10)
        ])
        done = []

        outcome = run_batch(
            batch,
            on_result=lambda r: done.append(r.job_id),
            should_stop=lambda: len(done) >= 3,
        )
        assert outcome.stopped
        assert len(outcome.results) == 3

    def test_should_stop_before_first_job(self):
        register_runner("echo", _echo)
        batch = BatchSpec("echo", [
            Job(job_id="e0", kind="echo", payload={"i": 0}),
        ])
        outcome = run_batch(batch, should_stop=lambda: True)
        assert outcome.stopped
        assert outcome.results == []

    def test_batch_end_telemetry_records_stopped(self, tmp_path):
        from repro.engine import read_events

        register_runner("echo", _echo)
        batch = BatchSpec("echo", [
            Job(job_id=f"e{i}", kind="echo", payload={"i": i})
            for i in range(3)
        ])
        telemetry = tmp_path / "t.jsonl"
        run_batch(batch, telemetry=str(telemetry), should_stop=lambda: True)
        (end,) = [
            e for e in read_events(telemetry) if e["event"] == "batch_end"
        ]
        assert end["stopped"] is True


class _FakeFuture:
    """Stand-in for a pool future whose completion the test scripts."""

    def __init__(self):
        self._value = None
        self._exc = None
        self._done = False
        self.was_cancelled = False

    def set_result(self, value):
        self._value, self._done = value, True

    def set_exception(self, exc):
        self._exc, self._done = exc, True

    def done(self):
        return self._done

    def exception(self):
        return self._exc

    def result(self):
        if self._exc is not None:
            raise self._exc
        return self._value

    def cancel(self):
        if self._done:
            return False
        self.was_cancelled = True
        self._done = True
        return True


def _wrapped_ok(value):
    """A _worker_run-shaped payload for a scripted success."""
    return {
        "value": value,
        "wall_time": 0.0,
        "worker_pid": 4242,
        "cache_hits": 0,
        "cache_misses": 0,
        "metrics": None,
    }


class TestPoolRebuildDedup:
    """Regression: rebuilding a broken pool while other futures are in
    flight must not execute an already-completed job a second time (the
    old rebuild path resubmitted *every* pending future, double-counting
    the finished ones in results, telemetry, and metrics)."""

    def test_rebuild_does_not_resubmit_completed_job(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        from repro.engine import executor as executor_mod

        pools = []

        class FakePool:
            def __init__(self, max_workers=None, initializer=None,
                         initargs=()):
                self.futures = {}     # job_id -> latest future
                self.submitted = []   # job_ids, in submission order
                pools.append(self)

            def submit(self, fn, job, trace=None):
                fut = _FakeFuture()
                self.submitted.append(job.job_id)
                self.futures[job.job_id] = fut
                if len(pools) > 1:
                    # Any job the rebuilt pool receives "executes"
                    # instantly — so a buggy resubmission of B would
                    # surface as a second submission, not a hang.
                    fut.set_result(_wrapped_ok(f"{job.job_id}-redone"))
                return fut

            def shutdown(self, wait=False, cancel_futures=False):
                pass

        calls = {"n": 0}

        def fake_wait(fs, timeout=None, return_when=None):
            calls["n"] += 1
            if calls["n"] == 1:
                # B finishes fine; A's worker dies. wait() reports only
                # A — B's completed future is still "in flight" when the
                # executor decides to rebuild the pool.
                pools[0].futures["B"].set_result(_wrapped_ok("B-done"))
                fut_a = pools[0].futures["A"]
                fut_a.set_exception(BrokenProcessPool("worker died"))
                return {fut_a}, {f for f in fs if f is not fut_a}
            done = {f for f in fs if f.done()}
            return done, set(fs) - done

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", FakePool)
        monkeypatch.setattr(executor_mod, "wait", fake_wait)

        batch = BatchSpec("rebuild", [
            Job(job_id="A", kind="noop", payload={}),
            Job(job_id="B", kind="noop", payload={}),
        ])
        results = list(iter_batch(batch, jobs=2, retries=1))

        assert sorted(r.job_id for r in results) == ["A", "B"]
        by_id = {r.job_id: r for r in results}
        # B's first (and only) execution is the one reported.
        assert by_id["B"].value == "B-done"
        assert by_id["B"].attempts == 1
        # A was resubmitted to the rebuilt pool.
        assert by_id["A"].value == "A-redone"
        assert by_id["A"].attempts == 2
        submissions = [j for p in pools for j in p.submitted]
        assert submissions.count("B") == 1, "completed job was re-executed"
        assert submissions.count("A") == 2
        assert len(pools) == 2
