"""Tests for the batch executor: serial/parallel equivalence, retries,
timeouts, and the job builders."""

import os

import pytest

from repro.engine import (
    BatchSpec,
    Job,
    budget_bisection,
    contingency_sweep,
    execute_job,
    iter_batch,
    register_runner,
    reliability_map,
    requirement_sweep,
    run_batch,
    scaling_sweep,
    tradeoff_points,
)
from repro.reliability import failure_probability
from repro.synthesis import pareto_front
from tests.synthesis.test_ilp_mr import make_spec, make_template

LEVELS = [0.5, 1e-3]


def sweep_spec():
    return make_spec(make_template(2, p=1e-2), r_star=None)


def result_key(res):
    return (res.status, res.cost, res.reliability)


class TestBuilders:
    def test_requirement_sweep_orders_loose_to_tight(self):
        batch = requirement_sweep(sweep_spec(), [1e-6, 0.5, 1e-3])
        assert [j.meta["r_star"] for j in batch.jobs] == [0.5, 1e-3, 1e-6]
        assert all(j.kind == "synthesize" for j in batch.jobs)

    def test_requirement_sweep_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            requirement_sweep(sweep_spec(), LEVELS, algorithm="annealing")

    def test_options_forwarded_to_payload(self):
        batch = requirement_sweep(
            sweep_spec(), [1e-3], backend="scipy", mip_rel_gap=1e-2
        )
        options = batch.jobs[0].payload["options"]
        assert options == {"backend": "scipy", "mip_rel_gap": 1e-2}

    def test_contingency_sweep_jobs(self):
        # Loose enough that a single surviving bus chain still meets it.
        spec = make_spec(make_template(2, p=1e-2), r_star=0.1)
        batch = contingency_sweep(spec, ["B0"], backend="scipy")
        assert [j.meta["outage"] for j in batch.jobs] == [None, "B0"]
        outcome = run_batch(batch)
        by_id = outcome.by_id()
        assert by_id["outage=none"].unwrap().feasible
        # With B0 knocked out the other bus still carries the load.
        res = by_id["outage=B0"].unwrap()
        assert res.feasible
        assert not any(
            "B0" in (res.architecture.template.name_of(i),
                     res.architecture.template.name_of(j))
            for (i, j) in res.architecture.edges
        )

    def test_budget_bisection_job(self):
        spec = make_spec(make_template(2, p=1e-2), r_star=None)
        batch = budget_bisection(spec, [1000.0], backend="scipy")
        outcome = run_batch(batch)
        point = outcome.results[0].unwrap()
        assert point is not None
        assert point.cost <= 1000.0


class TestSerialExecution:
    def test_requirement_sweep_matches_direct_synthesis(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="mr",
                                  backend="scipy")
        outcome = run_batch(batch)
        assert outcome.num_failed == 0
        assert outcome.jobs_used == 1
        points = tradeoff_points(outcome.results)
        assert [p.r_star for p in points] == sorted(LEVELS, reverse=True)
        for p in points:
            assert p.feasible
            assert p.reliability <= p.r_star

    def test_reliability_map_matches_failure_probability(self):
        from tests.engine.test_cache import small_arch

        arch = small_arch()
        outcome = run_batch(reliability_map(arch, method="bdd"))
        for res in outcome.results:
            direct = failure_probability(arch, sink=res.meta["sink"],
                                         method="bdd")
            assert res.unwrap() == direct

    def test_unknown_job_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(Job(job_id="x", kind="teleport", payload={}))

    def test_semantic_failure_contained(self):
        register_runner("boom", _boom)
        outcome = run_batch(BatchSpec("boom", [
            Job(job_id="a", kind="boom", payload={}),
            Job(job_id="b", kind="boom", payload={"ok": True}),
        ]))
        by_id = outcome.by_id()
        assert not by_id["a"].ok
        assert by_id["a"].error_type == "RuntimeError"
        assert by_id["a"].attempts == 1  # semantic errors are not retried
        assert by_id["b"].ok and by_id["b"].value == 42
        with pytest.raises(RuntimeError, match="job 'a' failed"):
            outcome.values()

    def test_transient_failure_retried(self, tmp_path):
        register_runner("flaky", _flaky)
        marker = tmp_path / "attempts"
        outcome = run_batch(
            BatchSpec("flaky", [Job(
                job_id="f", kind="flaky",
                payload={"marker": str(marker), "fail_times": 2},
            )]),
            retries=2,
        )
        res = outcome.results[0]
        assert res.ok
        assert res.attempts == 3

    def test_transient_retries_exhausted(self, tmp_path):
        register_runner("flaky", _flaky)
        marker = tmp_path / "attempts"
        outcome = run_batch(
            BatchSpec("flaky", [Job(
                job_id="f", kind="flaky",
                payload={"marker": str(marker), "fail_times": 5},
            )]),
            retries=1,
        )
        res = outcome.results[0]
        assert not res.ok
        assert res.error_type == "OSError"
        assert res.attempts == 2


class TestParallelExecution:
    def test_pool_matches_serial(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="mr",
                                  backend="scipy")
        serial = run_batch(batch, jobs=1)
        pooled = run_batch(batch, jobs=2)
        assert pooled.num_failed == 0
        assert [r.job_id for r in pooled.results] == [
            r.job_id for r in serial.results
        ]
        for a, b in zip(serial.values(), pooled.values()):
            assert result_key(a) == result_key(b)
        assert all(r.worker_pid != os.getpid() for r in pooled.results)

    def test_pareto_front_invariant_under_parallelism(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="ar",
                                  backend="scipy")
        serial = pareto_front(tradeoff_points(run_batch(batch, jobs=1).results))
        pooled = pareto_front(tradeoff_points(run_batch(batch, jobs=2).results))
        assert [(p.cost, p.reliability) for p in serial] == [
            (p.cost, p.reliability) for p in pooled
        ]

    def test_iter_batch_streams_all_results(self):
        batch = requirement_sweep(sweep_spec(), LEVELS, algorithm="ar",
                                  backend="scipy")
        seen = {res.job_id for res in iter_batch(batch, jobs=2)}
        assert seen == set(batch.job_ids())

    def test_pool_timeout_enforced(self):
        register_runner("sleep", _sleep)
        outcome = run_batch(
            BatchSpec("sleepy", [
                Job(job_id="slow", kind="sleep", payload={"seconds": 6.0}),
                Job(job_id="fast", kind="sleep", payload={"seconds": 0.0}),
            ]),
            jobs=2, timeout=1.0, retries=0,
        )
        by_id = outcome.by_id()
        assert by_id["fast"].ok
        assert not by_id["slow"].ok
        assert by_id["slow"].error_type == "TimeoutError"


# Module-level runners so they pickle / survive the fork into pool workers.


def _boom(job):
    if job.payload.get("ok"):
        return 42
    raise RuntimeError("intentional failure")


def _flaky(job):
    marker = job.payload["marker"]
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as fh:
            attempts = int(fh.read() or 0)
    attempts += 1
    with open(marker, "w") as fh:
        fh.write(str(attempts))
    if attempts <= job.payload["fail_times"]:
        raise OSError(f"transient glitch #{attempts}")
    return attempts


def _sleep(job):
    import time

    time.sleep(job.payload["seconds"])
    return "done"
