"""Tests for the persistent content-addressed reliability cache."""

import networkx as nx
import pytest

from repro.engine import (
    ReliabilityCache,
    reliability_map,
    requirement_sweep,
    run_batch,
)
from repro.engine.cache import problem_digest
from repro.reliability import (
    ReliabilityProblem,
    failure_probability,
    get_reliability_cache,
    reliability_cache,
)
from repro.synthesis import explore_tradeoff, synthesize_ilp_ar
from tests.synthesis.test_ilp_mr import make_spec, make_template


def small_problem(p_sink=0.01):
    g = nx.DiGraph()
    g.add_node("G0", p=0.1)
    g.add_node("G1", p=0.1)
    g.add_node("L0", p=p_sink)
    g.add_edge("G0", "L0")
    g.add_edge("G1", "L0")
    return ReliabilityProblem(g, ("G0", "G1"), "L0")


def small_arch():
    t = make_template(2, p=1e-2)
    spec = make_spec(t, r_star=None)
    result = synthesize_ilp_ar(
        make_spec(t, r_star=1e-3), backend="scipy"
    )
    assert result.feasible
    return result.architecture


class TestProblemDigest:
    def test_independent_of_insertion_order(self):
        g1 = nx.DiGraph()
        g1.add_node("A", p=0.1)
        g1.add_node("B", p=0.2)
        g1.add_edge("A", "B")
        g2 = nx.DiGraph()
        g2.add_node("B", p=0.2)
        g2.add_node("A", p=0.1)
        g2.add_edge("A", "B")
        p1 = ReliabilityProblem(g1, ("A",), "B")
        p2 = ReliabilityProblem(g2, ("A",), "B")
        assert problem_digest(p1, "bdd") == problem_digest(p2, "bdd")

    def test_sensitive_to_probability_bits(self):
        a = small_problem(p_sink=0.01)
        b = small_problem(p_sink=0.01 + 1e-16)
        assert problem_digest(a, "bdd") != problem_digest(b, "bdd")

    def test_sensitive_to_method(self):
        p = small_problem()
        assert problem_digest(p, "bdd") != problem_digest(p, "sdp")

    def test_ignores_irrelevant_nodes(self):
        p = small_problem()
        g = p.graph.copy()
        g.add_node("orphan", p=0.5)
        augmented = ReliabilityProblem(g, p.sources, p.sink)
        assert problem_digest(p, "bdd") == problem_digest(augmented, "bdd")


class TestReliabilityCache:
    def test_memory_roundtrip_and_stats(self):
        cache = ReliabilityCache(None)
        problem = small_problem()
        assert cache.lookup(problem, "bdd") is None
        cache.store(problem, "bdd", 0.25)
        assert cache.lookup(problem, "bdd") == 0.25
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert 0.0 < cache.stats.hit_rate < 1.0

    def test_sqlite_persists_across_instances(self, tmp_path):
        problem = small_problem()
        value = 0.123456789012345678  # exercises REAL round-trip precision
        with ReliabilityCache(tmp_path / "c") as first:
            first.store(problem, "bdd", value)
        with ReliabilityCache(tmp_path / "c") as second:
            got = second.lookup(problem, "bdd")
        assert got == value  # bit-identical
        with ReliabilityCache(tmp_path / "c") as third:
            assert len(third) == 1

    def test_hook_serves_cached_value(self):
        problem = small_problem()
        with reliability_cache(ReliabilityCache(None)) as cache:
            cold = failure_probability(problem, method="bdd")
            warm = failure_probability(problem, method="bdd")
            assert get_reliability_cache() is cache
        assert cold == warm
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert get_reliability_cache() is None

    def test_hook_value_matches_uncached(self):
        problem = small_problem()
        bare = failure_probability(problem, method="bdd")
        with reliability_cache(ReliabilityCache(None)):
            hooked = failure_probability(problem, method="bdd")
        assert hooked == bare


class TestCachedSweeps:
    LEVELS = [0.5, 1e-3]

    def test_warm_sweep_bit_identical_with_hits(self, tmp_path):
        spec = make_spec(make_template(2, p=1e-2), r_star=None)
        batch = requirement_sweep(spec, self.LEVELS, algorithm="mr",
                                  backend="scipy")
        cold = run_batch(batch, cache_dir=str(tmp_path / "relcache"))
        warm = run_batch(batch, cache_dir=str(tmp_path / "relcache"))
        assert cold.cache_hits == 0 or cold.cache_hits < warm.cache_hits
        assert warm.cache_hits > 0
        for a, b in zip(cold.values(), warm.values()):
            assert a.status == b.status
            assert a.cost == b.cost
            assert a.reliability == b.reliability  # bit-identical floats

    def test_explore_tradeoff_cached_matches_uncached(self, tmp_path):
        spec = make_spec(make_template(2, p=1e-2), r_star=None)
        plain = explore_tradeoff(spec, self.LEVELS, algorithm="mr",
                                 backend="scipy")
        cached = explore_tradeoff(spec, self.LEVELS, algorithm="mr",
                                  backend="scipy",
                                  cache_dir=str(tmp_path / "c"))
        rewarmed = explore_tradeoff(spec, self.LEVELS, algorithm="mr",
                                    backend="scipy",
                                    cache_dir=str(tmp_path / "c"))
        for a, b, c in zip(plain, cached, rewarmed):
            assert a.r_star == b.r_star == c.r_star
            assert a.cost == b.cost == c.cost
            assert a.reliability == b.reliability == c.reliability

    def test_cache_roundtrips_across_worker_processes(self, tmp_path):
        arch = small_arch()
        batch = reliability_map(arch, method="bdd")
        cache_dir = str(tmp_path / "xproc")
        first = run_batch(batch, jobs=2, cache_dir=cache_dir)
        assert first.num_failed == 0
        # Entries written by pool workers are visible to a fresh handle in
        # this (parent) process...
        with ReliabilityCache(cache_dir) as cache:
            assert len(cache) > 0
        # ...and a second parallel run is served from the shared file.
        second = run_batch(batch, jobs=2, cache_dir=cache_dir)
        assert second.cache_hits > 0
        assert second.values() == first.values()


class TestClosedConnectionDegradation:
    """A dead SQLite handle must degrade to the in-memory layer, never
    raise out of get/put/len (regression: a connection closed behind the
    cache's back used to propagate sqlite3.ProgrammingError into
    failure_probability)."""

    def test_get_put_len_survive_external_close(self, tmp_path):
        cache = ReliabilityCache(tmp_path / "c")
        problem = small_problem()
        cache.store(problem, "bdd", 0.25)
        cache._conn.close()  # closed behind the cache's back
        # get: falls back to the in-memory copy of the stored entry.
        assert cache.lookup(problem, "bdd") == 0.25
        # put: lands in memory, no exception.
        other = small_problem(p_sink=0.02)
        cache.store(other, "bdd", 0.5)
        assert cache.lookup(other, "bdd") == 0.5
        # len: counts the in-memory layer.
        assert len(cache) == 2
        cache.close()  # idempotent even though sqlite is already gone

    def test_closed_property(self, tmp_path):
        cache = ReliabilityCache(tmp_path / "c")
        assert not cache.closed
        cache.close()
        assert cache.closed
        memory = ReliabilityCache(None)
        assert not memory.closed  # nothing to close in memory-only mode

    def test_analysis_continues_after_close(self, tmp_path):
        problem = small_problem()
        cache = ReliabilityCache(tmp_path / "c")
        with reliability_cache(cache):
            cold = failure_probability(problem, method="bdd")
            cache._conn.close()
            warm = failure_probability(problem, method="bdd")
        assert warm == cold


class TestPayloadStorage:
    def test_payload_roundtrips_problem(self):
        from repro.engine.cache import problem_from_payload, problem_payload

        problem = small_problem(p_sink=0.01 + 1e-16)
        payload = problem_payload(problem, "bdd")
        back = problem_from_payload(payload)
        # Bit-exact probabilities and identical topology.
        assert problem_digest(back, "bdd") == problem_digest(problem, "bdd")
        for n in back.graph.nodes:
            assert back.graph.nodes[n]["p"] == problem.graph.nodes[n]["p"]

    def test_store_persists_payload(self, tmp_path):
        import json
        import sqlite3

        from repro.engine.cache import CACHE_FILENAME, payload_digest

        problem = small_problem()
        with ReliabilityCache(tmp_path / "c") as cache:
            cache.store(problem, "bdd", 0.25)
        conn = sqlite3.connect(str(tmp_path / "c" / CACHE_FILENAME))
        digest, blob = conn.execute(
            "SELECT digest, problem FROM reliability"
        ).fetchone()
        conn.close()
        assert blob is not None
        assert payload_digest(json.loads(blob)) == digest

    def test_migration_adds_problem_column(self, tmp_path):
        import sqlite3
        import time

        from repro.engine.cache import CACHE_FILENAME

        # A cache file from before the payload column existed.
        directory = tmp_path / "c"
        directory.mkdir()
        conn = sqlite3.connect(str(directory / CACHE_FILENAME))
        conn.execute(
            "CREATE TABLE reliability (digest TEXT PRIMARY KEY, "
            "method TEXT NOT NULL, value REAL NOT NULL, "
            "created_at REAL NOT NULL)"
        )
        conn.execute(
            "INSERT INTO reliability VALUES ('d1', 'bdd', 0.5, ?)",
            (time.time(),),
        )
        conn.commit()
        conn.close()
        with ReliabilityCache(directory) as cache:
            # Old entry still readable; new entries carry payloads.
            assert cache.get("d1") == 0.5
            cache.store(small_problem(), "bdd", 0.25)
            assert len(cache) == 2


class TestConcurrentServiceWorkers:
    """The WAL + busy-timeout configuration service workers rely on."""

    def test_wal_mode_and_busy_timeout_pragmas(self, tmp_path):
        with ReliabilityCache(str(tmp_path), busy_timeout_ms=12345) as cache:
            (mode,) = cache._conn.execute(
                "PRAGMA journal_mode"
            ).fetchone()
            assert mode.lower() == "wal"
            (timeout,) = cache._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout == 12345

    def test_default_busy_timeout(self, tmp_path):
        with ReliabilityCache(str(tmp_path)) as cache:
            (timeout,) = cache._conn.execute(
                "PRAGMA busy_timeout"
            ).fetchone()
            assert timeout == 30_000

    def test_one_cache_shared_across_threads(self, tmp_path):
        """Worker threads share the process-wide cache instance; the
        connection must accept cross-thread use without sqlite errors."""
        import threading

        cache = ReliabilityCache(str(tmp_path))
        errors = []
        barrier = threading.Barrier(4)

        def worker(tid):
            try:
                barrier.wait(timeout=10)
                for i in range(50):
                    digest = f"t{tid}-{i}"
                    cache.put(digest, "bdd", float(i))
                    assert cache.get(digest) == float(i)
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        pool = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=30)
        assert not errors
        assert len(cache) == 200
        cache.close()
        # Everything persisted: a fresh instance sees all 200 entries.
        with ReliabilityCache(str(tmp_path)) as reopened:
            assert len(reopened) == 200

    def test_two_instances_same_file_interleave(self, tmp_path):
        """Two connections on one WAL file (the multi-process shape)."""
        a = ReliabilityCache(str(tmp_path))
        b = ReliabilityCache(str(tmp_path))
        try:
            a.put("shared-1", "bdd", 0.25)
            assert b.get("shared-1") == 0.25
            b.put("shared-2", "sdp", 0.5)
            assert a.get("shared-2") == 0.5
        finally:
            a.close()
            b.close()
