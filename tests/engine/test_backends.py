"""Cache backends: LRU bound, sharded tier, and cross-backend equivalence.

The chain contract: whichever tier stores a reliability value, every
backend must hand back the *bit-identical* float — a sweep's results may
never depend on which cache configuration executed it.
"""

import threading

import pytest

from repro.engine.backends import (
    BACKEND_NAMES,
    CacheBackend,
    make_backend,
)
from repro.engine.backends.memory import MemoryBackend
from repro.engine.backends.sharded import (
    DEFAULT_SHARDS,
    MAX_SHARDS,
    MIN_SHARDS,
    ShardedBackend,
)
from repro.engine.backends.sqlite import SQLiteBackend
from repro.engine.cache import ReliabilityCache, problem_digest
from repro.reliability import failure_probability
from repro.reliability.exact import reliability_cache
from repro.verify.corpus import corpus_cases


def _digest(i: int) -> str:
    return f"{i:064x}"


class TestProtocol:
    def test_every_backend_satisfies_the_protocol(self, tmp_path):
        backends = [
            MemoryBackend(),
            SQLiteBackend(tmp_path / "one.sqlite"),
            ShardedBackend(tmp_path / "sharded"),
        ]
        for backend in backends:
            assert isinstance(backend, CacheBackend)
            backend.close()

    def test_make_backend_names(self, tmp_path):
        assert make_backend("memory", str(tmp_path)) is None
        assert make_backend("sqlite", None) is None
        sql = make_backend("auto", str(tmp_path / "a"))
        shd = make_backend("auto", str(tmp_path / "b"), shards=16)
        explicit = make_backend("sharded", str(tmp_path / "c"))
        try:
            assert sql.name == "sqlite"
            assert shd.name == "sharded" and shd.shards == 16
            assert explicit.name == "sharded" and explicit.shards == DEFAULT_SHARDS
        finally:
            for b in (sql, shd, explicit):
                b.close()

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            make_backend("redis", str(tmp_path))
        assert "sqlite" in BACKEND_NAMES and "sharded" in BACKEND_NAMES


class TestMemoryLRU:
    def test_bound_evicts_oldest_first(self):
        backend = MemoryBackend(max_entries=3)
        for i in range(3):
            backend.put(_digest(i), "bdd", float(i))
        # Touch 0 so 1 becomes the least recently used.
        assert backend.get(_digest(0)) == 0.0
        backend.put(_digest(3), "bdd", 3.0)
        assert backend.evictions == 1
        assert backend.get(_digest(1)) is None
        assert backend.get(_digest(0)) == 0.0
        assert len(backend) == 3

    def test_first_write_wins_refreshes_recency(self):
        backend = MemoryBackend(max_entries=2)
        backend.put(_digest(0), "bdd", 0.5)
        backend.put(_digest(1), "bdd", 1.5)
        backend.put(_digest(0), "bdd", 99.0)  # dup: value kept, recency bumped
        backend.put(_digest(2), "bdd", 2.5)   # evicts 1, not 0
        assert backend.get(_digest(0)) == 0.5
        assert backend.get(_digest(1)) is None

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryBackend(max_entries=0)

    def test_cache_front_tier_is_bounded(self, tmp_path):
        cache = ReliabilityCache(str(tmp_path), max_memory_entries=4)
        with cache:
            for i in range(10):
                cache.put(_digest(i), "bdd", float(i))
            assert cache.memory_evictions == 6
            # Evicted entries re-read from the persistent tier, not lost.
            assert cache.get(_digest(0)) == 0.0
            assert len(cache) == 10

    def test_degraded_to_memory_stays_bounded(self, tmp_path):
        # Regression: a broken SQLite tier degrades the cache to its
        # memory tier, and the LRU bound must keep holding there.
        cache = ReliabilityCache(str(tmp_path), max_memory_entries=3)
        cache.put(_digest(0), "bdd", 0.0)
        cache._conn.close()  # break the persistent tier behind its back
        for i in range(1, 8):
            cache.put(_digest(i), "bdd", float(i))
        assert cache.memory_evictions == 8 - 3
        assert len(cache._memory) == 3
        assert cache.get(_digest(7)) == 7.0
        assert cache.get(_digest(1)) is None  # evicted, tier broken: miss


class TestShardedBackend:
    def test_shard_count_bounds(self, tmp_path):
        for bad in (MIN_SHARDS - 1, MAX_SHARDS + 1, 0):
            with pytest.raises(ValueError):
                ShardedBackend(tmp_path / "bad", shards=bad)

    def test_routing_is_stable_and_in_range(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16)
        for i in range(64):
            shard = backend.shard_of(_digest(i * 7919))
            assert 0 <= shard < 16
            assert shard == backend.shard_of(_digest(i * 7919))
        backend.close()

    def test_persisted_shard_count_wins_on_reopen(self, tmp_path):
        first = ShardedBackend(tmp_path, shards=32)
        first.put(_digest(1), "bdd", 0.25)
        first.close()
        # Reopening with a different requested count must keep 32 — a
        # resize would re-route digests away from their stored shard.
        second = ShardedBackend(tmp_path, shards=128)
        assert second.shards == 32
        assert second.get(_digest(1)) == 0.25
        second.close()

    def test_lazy_shards_and_len(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=64)
        for i in range(20):
            backend.put(_digest(i), "bdd", float(i))
        open_files = sum(1 for b in backend._backends if b is not None)
        assert 0 < open_files <= 20
        assert len(backend) == 20
        backend.close()
        assert backend.closed
        assert backend.get(_digest(0)) is None  # closed: degrade to miss

    def test_shard_stats_count_traffic(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16)
        backend.put(_digest(5), "bdd", 0.5)
        assert backend.get(_digest(5)) == 0.5
        assert backend.get(_digest(6)) is None
        stats = backend.shard_stats()
        assert sum(s["stores"] for s in stats) == 1
        assert sum(s["hits"] for s in stats) == 1
        assert sum(s["misses"] for s in stats) == 1
        backend.close()

    def test_concurrent_writers_lose_nothing(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16)
        per_thread, threads = 50, 8
        errors = []

        def hammer(t: int) -> None:
            try:
                for i in range(per_thread):
                    backend.put(_digest(t * per_thread + i), "bdd",
                                float(t * per_thread + i))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        workers = [threading.Thread(target=hammer, args=(t,))
                   for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not errors
        assert len(backend) == per_thread * threads
        for n in range(0, per_thread * threads, 37):
            assert backend.get(_digest(n)) == float(n)
        backend.close()


class TestCrossBackendEquivalence:
    """Memory, SQLite, and sharded caches must be bit-identical."""

    def _cases(self):
        return [c for c in corpus_cases(include_eps=False)][:8]

    def test_corpus_values_bit_identical_across_backends(self, tmp_path):
        cases = self._cases()
        baseline = [failure_probability(c.problem, method="bdd")
                    for c in cases]

        configs = {
            "memory": dict(cache_dir=None),
            "sqlite": dict(cache_dir=str(tmp_path / "sql"), backend="sqlite"),
            "sharded": dict(cache_dir=str(tmp_path / "shard"),
                            backend="sharded", shards=16),
        }
        for name, kwargs in configs.items():
            cache = ReliabilityCache(**kwargs)
            with cache, reliability_cache(cache):
                cold = [failure_probability(c.problem, method="bdd")
                        for c in cases]
                warm = [failure_probability(c.problem, method="bdd")
                        for c in cases]
            assert cold == baseline, f"{name} cold values diverged"
            assert warm == baseline, f"{name} warm values diverged"
            assert cache.stats.hits >= len(cases), name

    def test_sqlite_and_sharded_store_identical_bits(self, tmp_path):
        cases = self._cases()
        sql = ReliabilityCache(str(tmp_path / "sql"), backend="sqlite")
        shd = ReliabilityCache(str(tmp_path / "shard"), backend="sharded",
                               shards=16)
        with sql, shd:
            for case in cases:
                with reliability_cache(sql):
                    failure_probability(case.problem, method="bdd")
                with reliability_cache(shd):
                    failure_probability(case.problem, method="bdd")
            for case in cases:
                digest = problem_digest(case.problem, "bdd")
                a = sql.get(digest)
                b = shd.get(digest)
                assert a is not None and b is not None
                assert a.hex() == b.hex(), case.name

    def test_warm_reopen_serves_identical_floats(self, tmp_path):
        cases = self._cases()
        values = {}
        with ReliabilityCache(str(tmp_path), backend="sharded",
                              shards=16) as cache, reliability_cache(cache):
            for case in cases:
                values[case.name] = failure_probability(case.problem,
                                                        method="bdd")
        # Fresh process simulation: new cache object over the same files.
        with ReliabilityCache(str(tmp_path), backend="sharded") as warm, \
                reliability_cache(warm):
            for case in cases:
                again = failure_probability(case.problem, method="bdd")
                assert again.hex() == values[case.name].hex()
            assert warm.stats.hits == len(cases)
            assert warm.stats.misses == 0


class TestWriteBackBatching:
    def test_flush_lands_on_batch_threshold(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16, batch_size=4)
        # Route everything to one shard so the threshold is exercised.
        digests = [d for d in (_digest(i) for i in range(200))
                   if backend.shard_of(d) == 0][:4]
        shard_file = backend.path / "relcache-000.sqlite"
        for d in digests[:3]:
            backend.put(d, "bdd", 0.5)
        before = SQLiteBackend(shard_file)
        assert len(before) == 0  # still buffered
        before.close()
        backend.put(digests[3], "bdd", 0.5)  # 4th write: group commit
        after = SQLiteBackend(shard_file)
        assert len(after) == 4
        after.close()
        backend.close()

    def test_reads_see_buffered_writes(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16, batch_size=100)
        backend.put(_digest(1), "bdd", 0.125)
        assert backend.get(_digest(1)) == 0.125  # read-your-writes
        backend.close()

    def test_close_flushes_for_a_cold_reopen(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16, batch_size=100)
        for i in range(10):
            backend.put(_digest(i), "bdd", float(i))
        backend.close()
        reopened = ShardedBackend(tmp_path)
        for i in range(10):
            assert reopened.get(_digest(i)) == float(i)
        reopened.close()

    def test_len_counts_buffered_entries(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16, batch_size=100)
        for i in range(7):
            backend.put(_digest(i), "bdd", float(i))
        assert len(backend) == 7
        backend.close()

    def test_first_write_wins_inside_the_buffer(self, tmp_path):
        backend = ShardedBackend(tmp_path, shards=16, batch_size=100)
        backend.put(_digest(1), "bdd", 0.25)
        backend.put(_digest(1), "bdd", 0.75)
        assert backend.get(_digest(1)) == 0.25
        backend.close()

    def test_batch_size_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedBackend(tmp_path, batch_size=0)
