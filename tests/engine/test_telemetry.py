"""Tests for the JSONL run telemetry and its report rendering."""

import json

from repro.engine import (
    TelemetryWriter,
    read_events,
    requirement_sweep,
    run_batch,
    summarize_telemetry,
)
from repro.report import render_batch_summary
from tests.synthesis.test_ilp_mr import make_spec, make_template


def small_batch():
    spec = make_spec(make_template(2, p=1e-2), r_star=None)
    return requirement_sweep(spec, [0.5, 1e-3], algorithm="ar",
                             backend="scipy")


class TestTelemetryWriter:
    def test_disabled_writer_is_noop(self):
        writer = TelemetryWriter(None)
        assert not writer.enabled
        writer.emit("anything", x=1)  # must not raise
        writer.close()

    def test_events_are_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, batch="unit") as writer:
            writer.emit("batch_start", name="unit", jobs=2)
            writer.emit("job_end", job="a", ok=True)
        events = read_events(path)
        assert [e["event"] for e in events] == ["batch_start", "job_end"]
        assert all(e["batch"].startswith("unit-") for e in events)
        assert all("ts" in e for e in events)

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"event": "x", "batch": "b"}) + "\n{\"trunc")
        assert [e["event"] for e in read_events(path)] == ["x"]


class TestBatchTelemetry:
    def test_run_batch_emits_lifecycle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        outcome = run_batch(small_batch(), telemetry=str(path))
        assert outcome.telemetry_path == str(path)
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "batch_start"
        assert kinds[-1] == "batch_end"
        assert kinds.count("job_start") == 2
        assert kinds.count("job_end") == 2
        end = events[-1]
        assert end["wall_time"] > 0
        assert {"cache_hits", "cache_misses", "ok", "failed"} <= set(end)

    def test_appended_runs_summarize_separately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        cache_dir = str(tmp_path / "cache")
        run_batch(small_batch(), telemetry=str(path), cache_dir=cache_dir)
        run_batch(small_batch(), telemetry=str(path), cache_dir=cache_dir)
        summaries = summarize_telemetry(path)
        assert len(summaries) == 2
        cold, warm = summaries
        assert cold["name"] == warm["name"] == "requirement-sweep"
        assert cold["jobs"] == warm["jobs"] == 2
        assert warm["cache_hits"] > 0
        assert all(s["wall_time"] is not None for s in summaries)

    def test_render_batch_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_batch(small_batch(), telemetry=str(path))
        text = render_batch_summary(summarize_telemetry(path))
        assert "requirement-sweep" in text
        assert "wall (s)" in text
        assert "hit rate" in text
