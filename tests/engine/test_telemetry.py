"""Tests for the JSONL run telemetry and its report rendering."""

import json

from repro.engine import (
    TelemetryWriter,
    read_events,
    requirement_sweep,
    run_batch,
    summarize_telemetry,
)
from repro.report import render_batch_summary
from tests.synthesis.test_ilp_mr import make_spec, make_template


def small_batch():
    spec = make_spec(make_template(2, p=1e-2), r_star=None)
    return requirement_sweep(spec, [0.5, 1e-3], algorithm="ar",
                             backend="scipy")


class TestTelemetryWriter:
    def test_disabled_writer_is_noop(self):
        writer = TelemetryWriter(None)
        assert not writer.enabled
        writer.emit("anything", x=1)  # must not raise
        writer.close()

    def test_events_are_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, batch="unit") as writer:
            writer.emit("batch_start", name="unit", jobs=2)
            writer.emit("job_end", job="a", ok=True)
        events = read_events(path)
        assert [e["event"] for e in events] == ["batch_start", "job_end"]
        assert all(e["batch"].startswith("unit-") for e in events)
        assert all("ts" in e for e in events)

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"event": "x", "batch": "b"}) + "\n{\"trunc")
        assert [e["event"] for e in read_events(path)] == ["x"]

    def test_emit_after_close_degrades_to_noop(self, tmp_path):
        # Regression: emit() used to hit "I/O operation on closed file".
        path = tmp_path / "t.jsonl"
        writer = TelemetryWriter(path, batch="unit")
        writer.emit("batch_start", name="unit")
        writer.close()
        writer.emit("after_close", x=1)  # must not raise
        assert not writer.enabled
        assert [e["event"] for e in read_events(path)] == ["batch_start"]

    def test_emit_on_externally_closed_handle_degrades(self, tmp_path):
        # A handle closed underneath the writer (not via close()) must
        # also degrade to the path=None no-op contract, permanently.
        path = tmp_path / "t.jsonl"
        writer = TelemetryWriter(path, batch="unit")
        writer.emit("one")
        writer._fh.close()
        writer.emit("two")  # must not raise; drops the broken handle
        assert not writer.enabled
        writer.emit("three")  # still a no-op
        writer.close()
        assert [e["event"] for e in read_events(path)] == ["one"]


class TestBatchTelemetry:
    def test_run_batch_emits_lifecycle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        outcome = run_batch(small_batch(), telemetry=str(path))
        assert outcome.telemetry_path == str(path)
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "batch_start"
        assert kinds[-1] == "batch_end"
        assert kinds.count("job_start") == 2
        assert kinds.count("job_end") == 2
        end = events[-1]
        assert end["wall_time"] > 0
        assert {"cache_hits", "cache_misses", "ok", "failed"} <= set(end)

    def test_appended_runs_summarize_separately(self, tmp_path):
        path = tmp_path / "run.jsonl"
        cache_dir = str(tmp_path / "cache")
        run_batch(small_batch(), telemetry=str(path), cache_dir=cache_dir)
        run_batch(small_batch(), telemetry=str(path), cache_dir=cache_dir)
        summaries = summarize_telemetry(path)
        assert len(summaries) == 2
        cold, warm = summaries
        assert cold["name"] == warm["name"] == "requirement-sweep"
        assert cold["jobs"] == warm["jobs"] == 2
        assert warm["cache_hits"] > 0
        assert all(s["wall_time"] is not None for s in summaries)

    def test_render_batch_summary(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_batch(small_batch(), telemetry=str(path))
        text = render_batch_summary(summarize_telemetry(path))
        assert "requirement-sweep" in text
        assert "wall (s)" in text
        assert "hit rate" in text

    def test_completed_batch_not_flagged_incomplete(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_batch(small_batch(), telemetry=str(path))
        (summary,) = summarize_telemetry(path)
        assert summary["incomplete"] is False


class TestCrashedBatch:
    def events(self, ts0=1000.0):
        return [
            {"ts": ts0, "batch": "b-1", "event": "batch_start",
             "name": "crashy", "jobs": 3},
            {"ts": ts0 + 1.0, "batch": "b-1", "event": "job_start", "job": "j1"},
            {"ts": ts0 + 4.5, "batch": "b-1", "event": "job_end", "job": "j1",
             "ok": True},
            # ... crash: no batch_end ever recorded.
        ]

    def test_wall_time_falls_back_to_event_span(self):
        (summary,) = summarize_telemetry(self.events())
        assert summary["incomplete"] is True
        assert summary["wall_time"] == 4.5  # last_ts - first_ts
        assert summary["jobs"] == 3 and summary["ok"] == 1

    def test_render_marks_incomplete_wall_time(self):
        text = render_batch_summary(summarize_telemetry(self.events()))
        assert "4.50*" in text

    def test_single_event_batch_gets_zero_wall_time(self):
        (summary,) = summarize_telemetry(self.events()[:1])
        assert summary["incomplete"] is True
        assert summary["wall_time"] == 0.0

    def test_span_events_do_not_pollute_summaries(self):
        events = self.events() + [
            {"ts": 2000.0, "batch": "trace-1", "event": "span_start",
             "span": 1, "name": "ilp_mr"},
            {"ts": 2900.0, "batch": "trace-1", "event": "span_end",
             "span": 1, "name": "ilp_mr", "duration": 900.0},
        ]
        summaries = summarize_telemetry(events)
        assert [s["batch"] for s in summaries] == ["b-1"]


class TestCompletedJobs:
    def test_job_end_map_with_latest_outcome_winning(self, tmp_path):
        from repro.engine import completed_jobs

        path = tmp_path / "t.jsonl"
        with TelemetryWriter(path, batch="b") as writer:
            writer.emit("job_start", job="a")
            writer.emit("job_end", job="a", ok=False)
            writer.emit("job_end", job="b", ok=True)
        # A retry in a later batch overrides the earlier failure.
        with TelemetryWriter(path, batch="b") as writer:
            writer.emit("job_end", job="a", ok=True)
        finished = completed_jobs(path)
        assert finished == {"a": True, "b": True}

    def test_accepts_parsed_events_and_ignores_other_records(self):
        from repro.engine import completed_jobs

        events = [
            {"event": "batch_start", "jobs": 2},
            {"event": "job_end", "job": "x", "ok": True},
            {"event": "job_end"},  # no job id: not attributable
            {"event": "span_start", "job": "x"},
        ]
        assert completed_jobs(events) == {"x": True}
