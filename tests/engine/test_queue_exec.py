"""File-backed work queue: digests, leases, expiry, workers, dedup.

Most tests drive :class:`FileWorkQueue` and :func:`run_worker` in-process
for determinism; the end-to-end equivalence tests spawn real worker
processes through ``executor="queue"``.
"""

import json
import os
import threading

import pytest

from repro.engine import BatchSpec, Job, iter_batch, run_batch
from repro.engine.executor import _RUNNERS, register_runner
from repro.engine.queue_exec import (
    FileWorkQueue,
    Lease,
    iter_queue,
    job_digest,
    run_worker,
)


def _noop_job(i, value=None):
    return Job(job_id=f"n{i}", kind="noop",
               payload={"value": value if value is not None else i})


def _backdate_lease(queue, digest, seconds=3600.0):
    path = queue.leased_dir / f"{digest}.json"
    old = path.stat().st_mtime - seconds
    os.utime(path, (old, old))


class TestJobDigest:
    def test_same_computation_same_digest(self):
        a = Job(job_id="a", kind="noop", payload={"value": 1})
        b = Job(job_id="b", kind="noop", payload={"value": 1},
                meta={"label": "other"})
        assert job_digest(a) == job_digest(b)

    def test_payload_and_kind_change_the_digest(self):
        base = Job(job_id="a", kind="noop", payload={"value": 1})
        other_payload = Job(job_id="a", kind="noop", payload={"value": 2})
        other_kind = Job(job_id="a", kind="reliability",
                         payload={"value": 1})
        digests = {job_digest(base), job_digest(other_payload),
                   job_digest(other_kind)}
        assert len(digests) == 3

    def test_digest_is_hex_sha256(self):
        digest = job_digest(_noop_job(0))
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestFileWorkQueue:
    def test_enqueue_statuses(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        job = _noop_job(0)
        digest, status = queue.enqueue(job)
        assert status == "enqueued"
        assert queue.enqueue(job) == (digest, "duplicate")
        queue.write_result(digest, {"ok": True, "attempts": 1,
                                    "wrapped": {}})
        assert queue.enqueue(job) == (digest, "cached")

    def test_claim_is_exclusive(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        digest, _ = queue.enqueue(_noop_job(0))
        lease = queue.claim()
        assert lease == Lease(digest=digest, attempts=1)
        assert queue.claim() is None
        counts = queue.counts()
        assert counts["pending"] == 0 and counts["leased"] == 1

    def test_release_bumps_attempts(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(_noop_job(0))
        lease = queue.claim()
        queue.release(lease)
        again = queue.claim()
        assert again.attempts == 2
        assert queue.counts()["leased"] == 1

    def test_heartbeat_self_heals_a_deleted_lease(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(_noop_job(0))
        lease = queue.claim()
        (queue.leased_dir / f"{lease.digest}.json").unlink()
        queue.heartbeat(lease)
        token = json.loads(
            (queue.leased_dir / f"{lease.digest}.json").read_text()
        )
        assert token["attempts"] == lease.attempts

    def test_requeue_expired_skips_fresh_leases(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(_noop_job(0))
        queue.claim()
        assert queue.requeue_expired(lease_ttl=60.0) == (0, 0)

    def test_requeue_expired_requeues_with_bumped_attempts(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        digest, _ = queue.enqueue(_noop_job(0))
        queue.claim()
        _backdate_lease(queue, digest)
        assert queue.requeue_expired(lease_ttl=60.0) == (1, 0)
        lease = queue.claim()
        assert lease.attempts == 2

    def test_requeue_expired_fails_at_max_attempts(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        digest, _ = queue.enqueue(_noop_job(0))
        queue.claim()
        _backdate_lease(queue, digest)
        queue.requeue_expired(lease_ttl=60.0, max_attempts=2)
        lease = queue.claim()
        assert lease.attempts == 2
        _backdate_lease(queue, digest)
        assert queue.requeue_expired(lease_ttl=60.0, max_attempts=2) == (0, 1)
        record = queue.load_result(digest)
        assert record["ok"] is False
        assert record["error_type"] == "TimeoutError"
        assert record["attempts"] == 2

    def test_requeue_discards_lease_that_already_has_a_result(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        digest, _ = queue.enqueue(_noop_job(0))
        queue.claim()
        queue.write_result(digest, {"ok": True, "attempts": 1,
                                    "wrapped": {}})
        _backdate_lease_ok = queue.counts()["leased"] == 0
        assert _backdate_lease_ok  # write_result dropped the lease
        assert queue.requeue_expired(lease_ttl=60.0) == (0, 0)


class TestRunWorker:
    def test_drains_jobs_and_returns_count(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        digests = [queue.enqueue(_noop_job(i))[0] for i in range(4)]
        executed = run_worker(tmp_path, max_jobs=10, idle_timeout=0.2,
                              poll_interval=0.01)
        assert executed == 4
        for i, digest in enumerate(digests):
            record = queue.load_result(digest)
            assert record["ok"] is True
            assert record["wrapped"]["value"] == i

    def test_stop_file_halts_the_worker(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(_noop_job(0))
        (queue.path / "stop").touch()
        assert run_worker(tmp_path, idle_timeout=5.0) == 0
        assert queue.counts()["pending"] == 1  # untouched

    def test_transient_failure_released_then_retried(self, tmp_path):
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return "recovered"

        register_runner("flaky", flaky)
        try:
            queue = FileWorkQueue(tmp_path)
            digest, _ = queue.enqueue(
                Job(job_id="f", kind="flaky", payload={})
            )
            executed = run_worker(tmp_path, retries=1, max_jobs=2,
                                  idle_timeout=0.5, poll_interval=0.01)
        finally:
            _RUNNERS.pop("flaky", None)
        assert executed == 2
        record = queue.load_result(digest)
        assert record["ok"] is True
        assert record["attempts"] == 2
        assert record["wrapped"]["value"] == "recovered"

    def test_semantic_failure_is_terminal_not_retried(self, tmp_path):
        def broken(job):
            raise ValueError("bad spec")

        register_runner("broken", broken)
        try:
            queue = FileWorkQueue(tmp_path)
            digest, _ = queue.enqueue(
                Job(job_id="b", kind="broken", payload={})
            )
            executed = run_worker(tmp_path, retries=3, max_jobs=5,
                                  idle_timeout=0.2, poll_interval=0.01)
        finally:
            _RUNNERS.pop("broken", None)
        assert executed == 1
        record = queue.load_result(digest)
        assert record["ok"] is False
        assert record["error_type"] == "ValueError"
        assert record["attempts"] == 1


class TestIterQueue:
    def test_dedup_fans_one_execution_out_to_all_job_ids(self, tmp_path):
        # Two batch entries describe the same computation under
        # different job_ids: one execution, two results.
        batch = BatchSpec("dedup", [
            Job(job_id="first", kind="noop", payload={"value": 7}),
            Job(job_id="second", kind="noop", payload={"value": 7}),
            Job(job_id="third", kind="noop", payload={"value": 8}),
        ])
        worker = threading.Thread(
            target=run_worker,
            kwargs={"queue_dir": tmp_path, "idle_timeout": 30.0,
                    "poll_interval": 0.01},
            daemon=True,
        )
        worker.start()
        results = list(iter_queue(batch, queue_dir=tmp_path,
                                  spawn_workers=False, poll_interval=0.01))
        worker.join(timeout=30.0)
        assert not worker.is_alive()

        assert sorted(r.job_id for r in results) == ["first", "second",
                                                     "third"]
        by_id = {r.job_id: r for r in results}
        assert by_id["first"].value == 7
        assert by_id["second"].value == 7
        assert by_id["third"].value == 8
        # One execution for the shared digest...
        queue = FileWorkQueue(tmp_path)
        assert queue.counts()["results"] == 2
        assert queue.counts()["jobs"] == 2
        # ...and only the primary copy carries its metrics and cache
        # traffic, so sweep totals aren't double-counted.
        copies = [by_id["first"], by_id["second"]]
        with_metrics = [r for r in copies if r.metrics]
        assert len(with_metrics) <= 1
        secondary = by_id["second"]
        assert secondary.cache_hits == 0 and secondary.cache_misses == 0

    def test_queue_mode_matches_serial(self):
        batch = BatchSpec("equiv", [_noop_job(i) for i in range(6)])
        serial = run_batch(batch, jobs=1)
        queued = run_batch(batch, jobs=2, executor="queue")
        assert [r.job_id for r in queued.results] == [
            r.job_id for r in serial.results
        ]
        assert [r.value for r in queued.results] == [
            r.value for r in serial.results
        ]
        assert all(r.ok for r in queued.results)

    def test_unknown_executor_rejected(self):
        batch = BatchSpec("bad", [_noop_job(0)])
        with pytest.raises(ValueError, match="unknown executor"):
            list(iter_batch(batch, executor="threads"))


class TestQueueObservability:
    """Distributed trace propagation and telemetry spools (queue mode)."""

    def run_with_metrics(self, **kwargs):
        from repro import obs
        from repro.engine import reliability_map
        from tests.engine.test_executor import multi_sink_arch

        obs.reset_metrics()
        outcome = run_batch(reliability_map(multi_sink_arch(), method="bdd"),
                            **kwargs)
        assert outcome.num_failed == 0
        snap = obs.snapshot()
        obs.reset_metrics()
        return outcome, {
            name: data["value"]
            for name, data in snap.items()
            if data["kind"] == "counter"
        }

    def test_queue_counters_match_serial(self):
        """The --executor queue metrics-loss fix: after a 2-worker queue
        drain the coordinator registry reports the same per-engine totals
        as a serial run, plus the queue's own transport counters."""
        _, serial = self.run_with_metrics(jobs=1)
        _, queued = self.run_with_metrics(jobs=2, executor="queue")
        assert serial["engine.jobs.completed"] == 4
        transport = {k: v for k, v in queued.items()
                     if k.startswith("engine.queue.")}
        engine = {k: v for k, v in queued.items()
                  if not k.startswith("engine.queue.")}
        assert engine == serial
        # Worker-lifetime deltas (claims happen outside any job window)
        # must survive the trip home through the spool.
        assert transport["engine.queue.leases.claimed"] >= 4
        assert transport["engine.queue.jobs.enqueued"] == 4
        assert transport["engine.queue.results"] == 4

    def test_two_worker_batch_yields_one_connected_trace(self, tmp_path):
        """Every worker span must parent back (transitively) to the
        coordinator's batch span under a single trace id — no orphans."""
        from repro import obs

        batch = BatchSpec("trace", [_noop_job(i) for i in range(6)])
        with obs.tracing() as tracer:
            outcome = run_batch(batch, jobs=2, executor="queue",
                                queue_dir=tmp_path)
        assert outcome.num_failed == 0

        records = tracer.records
        assert records, "worker span records must be absorbed for stitching"
        trace_ids = {r["trace"] for r in records}
        assert len(trace_ids) == 1
        # The coordinator's own uids (pid.span_id) are the stitch points.
        local_uids = {f"{os.getpid()}.{s.span_id}" for s in tracer.spans}
        remote_uids = {r["uid"] for r in records}
        for record in records:
            assert record["parent"] is not None, f"orphan span {record}"
            assert record["parent"] in local_uids | remote_uids
        worker_pids = {r["pid"] for r in records}
        assert os.getpid() not in worker_pids
        assert len([r for r in records if r["name"] == "engine.job"]) == 6

        # The stitched export spans coordinator + workers in one document.
        doc = obs.stitch_chrome_trace(records, spans=tracer.spans)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert "coordinator" in names
        assert any(n.startswith("worker-") for n in names)
        assert doc["otherData"]["trace_id"] == trace_ids.pop()

    def test_reattached_coordinator_keeps_the_trace_id(self, tmp_path):
        """Kill-and-resume: a queue that already carries a trace keeps its
        id; only the parent uid and correlation fields are refreshed."""
        from repro import obs

        queue = FileWorkQueue(tmp_path)
        first = queue.write_trace_context(
            obs.TraceContext.mint(batch="attempt-1")
        )
        second = queue.write_trace_context(obs.TraceContext(
            obs.TraceContext.mint().trace_id, "9.9", {"batch": "attempt-2"}
        ))
        assert second.trace_id == first.trace_id
        assert second.parent_uid == "9.9"
        assert second.fields == {"batch": "attempt-2"}
        stored = queue.load_trace_context()
        assert stored.trace_id == first.trace_id

        # End to end: two coordinator passes over one queue dir, one trace.
        batch1 = BatchSpec("first", [_noop_job(0)])
        batch2 = BatchSpec("second", [_noop_job(1)])
        run_batch(batch1, jobs=1, executor="queue", queue_dir=tmp_path)
        after_first = queue.load_trace_context()
        assert after_first.trace_id == first.trace_id
        run_batch(batch2, jobs=1, executor="queue", queue_dir=tmp_path)
        assert queue.load_trace_context().trace_id == first.trace_id

    def test_worker_logs_carry_correlation_fields(self, tmp_path):
        """Every worker log record names the worker pid; per-lease records
        add the run's correlation fields, job digest, and attempt."""
        from repro import obs

        queue = FileWorkQueue(tmp_path / "q")
        queue.write_trace_context(obs.TraceContext.mint(run="run-77"))
        digest, _ = queue.enqueue(_noop_job(0))
        log_path = tmp_path / "worker.jsonl"
        obs.configure_obslog(path=log_path)
        try:
            run_worker(queue.path, max_jobs=1, idle_timeout=1.0,
                       poll_interval=0.01)
        finally:
            obs.configure_obslog()
        records = obs.read_log(log_path)
        events = {r["event"] for r in records}
        assert {"worker.started", "worker.lease_claimed",
                "worker.lease_done", "worker.stopped"} <= events
        assert all(r["worker_pid"] == os.getpid() for r in records)
        assert all(r["run"] == "run-77" for r in records)
        claimed = [r for r in records if r["event"] == "worker.lease_claimed"]
        assert claimed[0]["job_digest"] == digest[:12]
        assert claimed[0]["lease_attempt"] == 1

    def test_queue_health_reports_depth_leases_and_backlog(self, tmp_path):
        from repro import obs

        queue = FileWorkQueue(tmp_path)
        for i in range(3):
            queue.enqueue(_noop_job(i))
        health = queue.health()
        assert health["queue_depth"] == 3
        assert health["active_leases"] == 0
        assert health["spool_backlog"] == 0
        lease = queue.claim()
        assert queue.health()["active_leases"] == 1
        spool = obs.TelemetrySpool(queue.spool_path())
        spool.emit("worker_log", record={})
        spool.flush()
        assert queue.health()["spool_backlog"] > 0
        collector = obs.SpoolCollector(queue.spool_dir)
        collector.poll()
        assert queue.health(collector=collector)["spool_backlog"] == 0
        queue.release(lease)
