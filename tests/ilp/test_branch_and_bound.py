"""Branch-and-bound MILP solver: unit tests plus property-based
cross-checking against scipy's HiGHS on random instances."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import BnBOptions, Model, lin_sum, solve_milp


def _solve_both(m: Model):
    ours = m.solve(backend="bnb")
    ref = m.solve(backend="scipy")
    return ours, ref


class TestKnownInstances:
    def test_knapsack(self):
        m = Model()
        values = [10, 13, 7, 8, 6]
        weights = [3, 4, 2, 3, 2]
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add_constr(lin_sum(w * x for w, x in zip(weights, xs)) <= 7)
        m.maximize(lin_sum(v * x for v, x in zip(values, xs)))
        res = m.solve(backend="bnb")
        assert res.is_optimal
        assert res.objective == pytest.approx(23.0)  # items 0 and 1

    def test_set_cover(self):
        m = Model()
        xs = [m.add_binary(f"s{i}") for i in range(4)]
        # elements covered by subsets: e1:{0,1}, e2:{1,2}, e3:{2,3}
        m.add_constr(xs[0] + xs[1] >= 1)
        m.add_constr(xs[1] + xs[2] >= 1)
        m.add_constr(xs[2] + xs[3] >= 1)
        m.minimize(lin_sum(xs))
        res = m.solve(backend="bnb")
        assert res.objective == pytest.approx(2.0)  # {1, 2}

    def test_integer_rounding_gap(self):
        # LP relaxation is fractional; MILP optimum differs from LP.
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(2 * x + 3 * y <= 7)
        m.maximize(x + 2 * y)
        res = m.solve(backend="bnb")
        assert res.is_optimal
        # LP relaxation gives x=0, y=7/3 (obj 14/3); the MILP optimum is 4.
        assert res.objective == pytest.approx(4.0)
        ref = m.solve(backend="scipy")
        assert res.objective == pytest.approx(ref.objective)

    def test_infeasible_integrality(self):
        # Feasible as LP (x = 0.5) but infeasible as pure integer problem.
        m = Model()
        x = m.add_integer("x", ub=1)
        m.add_constr(2 * x == 1)
        res = m.solve(backend="bnb")
        assert res.status == "infeasible"

    def test_unbounded(self):
        m = Model()
        x = m.add_integer("x")
        m.maximize(x)
        res = m.solve(backend="bnb")
        assert res.status == "unbounded"

    def test_mixed_integer_continuous(self):
        m = Model()
        x = m.add_integer("x", ub=5)
        y = m.add_continuous("y", ub=5)
        m.add_constr(x + y <= 4.5)
        m.maximize(2 * x + y)
        ours, ref = _solve_both(m)
        assert ours.objective == pytest.approx(ref.objective)
        assert float(ours[x]).is_integer()

    def test_equality_constrained(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constr(lin_sum(xs) == 3)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        res = m.solve(backend="bnb")
        assert res.objective == pytest.approx(6.0)  # 1+2+3

    def test_node_limit_reports_limit(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(30)]
        m.add_constr(lin_sum(xs) >= 15)
        # Intricate parity-ish constraints to keep the tree alive briefly.
        for i in range(0, 28, 2):
            m.add_constr(xs[i] + xs[i + 1] <= 1)
        m.minimize(lin_sum((1 + (i % 7)) * x for i, x in enumerate(xs)))
        out = solve_milp(m.to_matrix_form(), BnBOptions(node_limit=1))
        assert out.status in ("limit", "optimal")

    def test_branching_strategies_agree(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(8)]
        m.add_constr(lin_sum(xs) >= 4)
        m.add_constr(lin_sum((i % 3) * x for i, x in enumerate(xs)) <= 5)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        objs = []
        for branching in ("pseudocost", "most_fractional"):
            out = solve_milp(m.to_matrix_form(), BnBOptions(branching=branching))
            assert out.status == "optimal"
            objs.append(out.objective)
        assert objs[0] == pytest.approx(objs[1])

    def test_scipy_lp_engine_matches(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constr(lin_sum(xs) >= 2)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        out = solve_milp(m.to_matrix_form(), BnBOptions(lp_engine="scipy"))
        assert out.status == "optimal"
        assert out.objective == pytest.approx(3.0)


@st.composite
def random_milp(draw):
    n = draw(st.integers(2, 7))
    m_rows = draw(st.integers(1, 5))
    coef = st.integers(-4, 4)
    c = [draw(coef) for _ in range(n)]
    a = [[draw(coef) for _ in range(n)] for _ in range(m_rows)]
    b = [draw(st.integers(0, 8)) for _ in range(m_rows)]  # x=0 feasible
    return c, a, b


@given(random_milp())
@settings(max_examples=60, deadline=None)
def test_bnb_matches_highs_on_random_binaries(problem):
    c, a, b = problem
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(len(c))]
    for row, rhs in zip(a, b):
        m.add_constr(lin_sum(coef * x for coef, x in zip(row, xs)) <= rhs)
    m.minimize(lin_sum(coef * x for coef, x in zip(c, xs)))
    ours, ref = _solve_both(m)
    assert ours.is_optimal and ref.is_optimal
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
    # Our incumbent must satisfy every constraint exactly.
    assert m.violated_constraints(ours.values) == []


@given(random_milp())
@settings(max_examples=30, deadline=None)
def test_bnb_matches_highs_on_random_general_integers(problem):
    c, a, b = problem
    m = Model()
    xs = [m.add_integer(f"x{i}", ub=3) for i in range(len(c))]
    for row, rhs in zip(a, b):
        m.add_constr(lin_sum(coef * x for coef, x in zip(row, xs)) <= rhs)
    m.minimize(lin_sum(coef * x for coef, x in zip(c, xs)))
    ours, ref = _solve_both(m)
    assert ours.is_optimal and ref.is_optimal
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)
