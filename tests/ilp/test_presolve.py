"""Tests for MILP presolve reductions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (
    BnBOptions,
    Model,
    apply_presolve,
    lin_sum,
    presolve,
    solve_milp,
)


def _form(model):
    return model.to_matrix_form()


class TestSingletonRows:
    def test_singleton_becomes_bound(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_constr(2 * x <= 6)  # x <= 3
        m.minimize(-x)
        result = presolve(_form(m))
        assert result.status in ("reduced", "solved")
        if result.status == "reduced":
            assert result.reduced.num_constrs == 0
            assert result.reduced.ub[0] == 3.0

    def test_singleton_equality_fixes_variable(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(x == 4)
        m.add_constr(x + y <= 7)
        m.minimize(-y)
        result = presolve(_form(m))
        assert 0 in result.fixed_values
        assert result.fixed_values[0] == 4.0

    def test_contradictory_singletons_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        result = presolve(_form(m))
        assert result.status == "infeasible"

    def test_fractional_equality_on_integer_infeasible(self):
        m = Model()
        x = m.add_integer("x", ub=5)
        m.add_constr(2 * x == 3)  # x = 1.5 impossible
        result = presolve(_form(m))
        assert result.status == "infeasible"


class TestActivityAnalysis:
    def test_redundant_row_dropped(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constr(lin_sum(xs) <= 5)  # max activity 3: redundant
        m.add_constr(lin_sum(xs) >= 1)
        result = presolve(_form(m))
        assert result.rows_removed >= 1

    def test_unsatisfiable_row_detected(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constr(lin_sum(xs) >= 4)  # max activity 3
        result = presolve(_form(m))
        assert result.status == "infeasible"

    def test_forced_row_fixes_all_members(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constr(lin_sum(xs) >= 3)  # all must be 1
        result = presolve(_form(m))
        assert result.status == "solved"
        assert set(result.fixed_values.values()) == {1.0}


class TestBoundPropagation:
    def test_propagation_through_chain(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        y = m.add_integer("y", ub=10)
        m.add_constr(x + y <= 4)
        m.add_constr(x >= 3)
        result = presolve(_form(m))
        # x in [3, 4] -> y <= 1
        if result.status == "reduced":
            y_idx = result.kept_cols.index(1) if 1 in result.kept_cols else None
            if y_idx is not None:
                assert result.reduced.ub[y_idx] <= 1.0 + 1e-9

    def test_integer_rounding(self):
        m = Model()
        x = m.add_integer("x", ub=10)
        m.add_constr(2 * x <= 5)  # x <= 2.5 -> x <= 2
        result = presolve(_form(m))
        if result.status == "reduced":
            assert result.reduced.ub[0] == 2.0


class TestRestore:
    def test_restore_places_values(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x == 1)
        m.add_constr(x + y >= 1)
        result = presolve(_form(m))
        assert result.fixed_values.get(0) == 1.0
        if result.status == "reduced":
            lifted = result.restore(np.zeros(len(result.kept_cols)))
            assert lifted[0] == 1.0

    def test_apply_presolve_end_to_end(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(6)]
        m.add_constr(lin_sum(xs) >= 3)
        m.add_constr(xs[0] == 1)
        m.add_constr(xs[1] <= 0)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        form = _form(m)

        outcome = apply_presolve(form, lambda reduced: solve_milp(reduced, BnBOptions()))
        direct = solve_milp(form, BnBOptions())
        assert outcome.status == "optimal"
        assert outcome.objective == pytest.approx(direct.objective)
        # lifted solution satisfies the original model
        values = {var: outcome.x[var.index] for var in form.variables}
        assert m.violated_constraints(values) == []

    def test_apply_presolve_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        outcome = apply_presolve(
            _form(m), lambda reduced: solve_milp(reduced, BnBOptions())
        )
        assert outcome.status == "infeasible"

    def test_apply_presolve_fully_solved(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(2)]
        m.add_constr(lin_sum(xs) >= 2)
        m.minimize(lin_sum(xs))
        outcome = apply_presolve(
            _form(m), lambda reduced: solve_milp(reduced, BnBOptions())
        )
        assert outcome.status == "optimal"
        assert outcome.objective == pytest.approx(2.0)


@st.composite
def random_binary_milp(draw):
    n = draw(st.integers(2, 6))
    m_rows = draw(st.integers(1, 5))
    coef = st.integers(-3, 3)
    c = [draw(coef) for _ in range(n)]
    rows = [[draw(coef) for _ in range(n)] for _ in range(m_rows)]
    b = [draw(st.integers(0, 6)) for _ in range(m_rows)]
    return c, rows, b


@given(random_binary_milp())
@settings(max_examples=60, deadline=None)
def test_presolve_preserves_optimum(problem):
    """Solving with presolve gives the same optimum as solving directly."""
    c, rows, b = problem
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(len(c))]
    for row, rhs in zip(rows, b):
        m.add_constr(lin_sum(cf * x for cf, x in zip(row, xs)) <= rhs)
    m.minimize(lin_sum(cf * x for cf, x in zip(c, xs)))
    form = m.to_matrix_form()

    direct = solve_milp(form, BnBOptions())
    with_presolve = apply_presolve(form, lambda r: solve_milp(r, BnBOptions()))
    assert direct.status == with_presolve.status
    if direct.status == "optimal":
        assert with_presolve.objective == pytest.approx(direct.objective, abs=1e-6)
        values = {var: with_presolve.x[var.index] for var in form.variables}
        assert m.violated_constraints(values) == []


class TestSolverIntegration:
    def test_use_presolve_through_solve(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add_constr(lin_sum(xs) >= 2)
        m.add_constr(xs[0] == 1)
        m.minimize(lin_sum((i + 1) * x for i, x in enumerate(xs)))
        plain = m.solve(backend="bnb")
        reduced = m.solve(backend="bnb", use_presolve=True)
        assert reduced.is_optimal
        assert reduced.objective == pytest.approx(plain.objective)
        assert m.violated_constraints(reduced.values) == []

    def test_use_presolve_with_scipy_backend(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(5)]
        m.add_constr(lin_sum(xs) >= 3)
        m.minimize(lin_sum(xs))
        res = m.solve(backend="scipy", use_presolve=True)
        assert res.is_optimal and res.objective == pytest.approx(3.0)
