"""Incremental export, basis extension, and cross-solve warm contexts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (
    AutoTuning,
    BnBOptions,
    Model,
    WarmStartContext,
    extend_basis,
    lin_sum,
    solve,
)
from repro.ilp.branch_and_bound import solve_milp
from repro.ilp.incremental import AT_LOWER, BASIC
from repro.ilp.simplex import LPBasis


def grown_model(extra_rows=0):
    m = Model("grow")
    xs = [m.add_binary(f"x{i}") for i in range(6)]
    m.add_constr(lin_sum(xs) >= 2, tag="base")
    m.add_constr(xs[0] + xs[1] <= 1, tag="base")
    m.minimize(lin_sum([(i + 1) * x for i, x in enumerate(xs)]))
    for r in range(extra_rows):
        m.add_constr(lin_sum(xs[r % 3:]) >= 1, tag="learned")
    return m, xs


class TestIncrementalExport:
    def test_incremental_matches_full(self):
        m, xs = grown_model()
        base = m.to_matrix_form()
        m.add_constr(xs[2] + xs[3] + xs[4] >= 2)
        m.add_constr(lin_sum(xs) >= 3)
        inc = m.to_matrix_form(base=base)
        full = m.to_matrix_form()
        np.testing.assert_array_equal(inc.A.toarray(), full.A.toarray())
        np.testing.assert_array_equal(inc.b, full.b)
        np.testing.assert_array_equal(inc.c, full.c)
        assert inc.senses == full.senses
        np.testing.assert_array_equal(inc.lb, full.lb)
        np.testing.assert_array_equal(inc.ub, full.ub)
        np.testing.assert_array_equal(inc.integrality, full.integrality)

    def test_incremental_with_new_variables(self):
        m, xs = grown_model()
        base = m.to_matrix_form()
        y = m.add_binary("y")
        m.add_constr(y + xs[0] >= 1)
        inc = m.to_matrix_form(base=base)
        full = m.to_matrix_form()
        np.testing.assert_array_equal(inc.A.toarray(), full.A.toarray())
        assert inc.num_vars == full.num_vars == 7

    def test_foreign_base_falls_back_to_full(self):
        m1, _ = grown_model()
        m2, _ = grown_model(extra_rows=1)
        foreign = m1.to_matrix_form()
        out = m2.to_matrix_form(base=foreign)
        full = m2.to_matrix_form()
        np.testing.assert_array_equal(out.A.toarray(), full.A.toarray())

    def test_objective_changes_are_picked_up(self):
        m, xs = grown_model()
        base = m.to_matrix_form()
        m.maximize(lin_sum(xs))
        inc = m.to_matrix_form(base=base)
        # maximize is normalized to min of the negation
        assert inc.c == pytest.approx(-np.ones(6))


@st.composite
def growing_model(draw):
    n = draw(st.integers(2, 6))
    rows = draw(st.integers(1, 4))
    extra = draw(st.integers(1, 4))
    coef = st.integers(-3, 3)
    return (
        n,
        [[draw(coef) for _ in range(n)] for _ in range(rows + extra)],
        [draw(st.integers(0, 6)) for _ in range(rows + extra)],
        rows,
    )


@given(growing_model())
@settings(max_examples=60, deadline=None)
def test_incremental_export_equals_full_property(problem):
    n, rows, rhs, split = problem
    m = Model("prop")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    m.minimize(lin_sum(xs))
    for row, r in zip(rows[:split], rhs[:split]):
        m.add_constr(lin_sum([c * x for c, x in zip(row, xs)]) <= r)
    base = m.to_matrix_form()
    for row, r in zip(rows[split:], rhs[split:]):
        m.add_constr(lin_sum([c * x for c, x in zip(row, xs)]) <= r)
    inc = m.to_matrix_form(base=base)
    full = m.to_matrix_form()
    np.testing.assert_array_equal(inc.A.toarray(), full.A.toarray())
    np.testing.assert_array_equal(inc.b, full.b)
    assert inc.senses == full.senses


class TestExtendBasis:
    def test_new_rows_get_basic_slacks(self):
        m, xs = grown_model()
        old = m.to_matrix_form()
        basis = LPBasis(
            var_status=np.zeros(old.num_vars, dtype=np.int8),
            row_status=np.full(old.num_constrs, BASIC, dtype=np.int8),
        )
        m.add_constr(lin_sum(xs) >= 3)
        new = m.to_matrix_form(base=old)
        ext = extend_basis(basis, old, new)
        assert ext is not None
        assert len(ext.row_status) == new.num_constrs
        assert ext.row_status[-1] == BASIC
        np.testing.assert_array_equal(
            ext.var_status, basis.var_status
        )

    def test_new_variables_enter_at_lower(self):
        m, xs = grown_model()
        old = m.to_matrix_form()
        basis = LPBasis(
            var_status=np.zeros(old.num_vars, dtype=np.int8),
            row_status=np.full(old.num_constrs, BASIC, dtype=np.int8),
        )
        y = m.add_binary("y")
        m.add_constr(y + xs[0] >= 1)
        new = m.to_matrix_form(base=old)
        ext = extend_basis(basis, old, new)
        assert ext is not None
        assert ext.var_status[-1] == AT_LOWER

    def test_appended_equality_row_invalidates(self):
        m, xs = grown_model()
        old = m.to_matrix_form()
        basis = LPBasis(
            var_status=np.zeros(old.num_vars, dtype=np.int8),
            row_status=np.full(old.num_constrs, BASIC, dtype=np.int8),
        )
        m.add_constr(lin_sum(xs) == 3)
        new = m.to_matrix_form(base=old)
        assert extend_basis(basis, old, new) is None

    def test_mismatched_shapes_invalidate(self):
        m, _ = grown_model()
        form = m.to_matrix_form()
        wrong = LPBasis(
            var_status=np.zeros(2, dtype=np.int8),
            row_status=np.zeros(1, dtype=np.int8),
        )
        assert extend_basis(wrong, form, form) is None


class TestWarmStartContext:
    def test_grown_model_resolves_to_cold_optimum(self):
        m, xs = grown_model()
        ctx = WarmStartContext()
        first = solve(m, backend="bnb", warm=ctx)
        assert first.is_optimal
        assert ctx.basis is not None
        assert ctx.incumbent is not None

        m.add_constr(lin_sum(xs) >= 4)  # cuts off the previous optimum
        warm = solve(m, backend="bnb", warm=ctx)
        cold = solve_milp(m.to_matrix_form(), BnBOptions())
        assert warm.is_optimal
        assert warm.objective == pytest.approx(cold.objective)

    def test_context_survives_repeated_growth(self):
        m, xs = grown_model()
        ctx = WarmStartContext()
        reference = None
        for k in (2, 3, 4, 5):
            # replace target: grow one constraint per round
            m.add_constr(lin_sum(xs) >= k)
            warm = solve(m, backend="bnb", warm=ctx)
            cold = solve_milp(m.to_matrix_form(), BnBOptions())
            assert warm.objective == pytest.approx(cold.objective)
            if reference is not None:
                assert warm.objective >= reference - 1e-9  # tightening
            reference = warm.objective

    def test_incumbent_padded_for_new_variables(self):
        m, xs = grown_model()
        ctx = WarmStartContext()
        solve(m, backend="bnb", warm=ctx)
        y = m.add_binary("y")
        m.add_constr(y + xs[0] >= 1)
        solve(m, backend="bnb", warm=ctx)
        assert len(ctx.incumbent) == m.num_vars


class TestAutoTuningKnobs:
    def make(self, n):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(n)]
        m.add_constr(lin_sum(xs) >= 1)
        m.minimize(lin_sum(xs))
        return m

    def test_per_call_override(self):
        res = solve(self.make(10), backend="auto", tuning=AutoTuning(scipy_vars=5))
        assert res.backend == "scipy"
        res = solve(
            self.make(10), backend="auto",
            tuning=AutoTuning(scipy_vars=500, scipy_constrs=500),
        )
        assert res.backend == "bnb"

    def test_process_override_via_configure(self):
        from repro.ilp import configure_auto
        from repro.ilp.solver import _DEFAULT_TUNING

        saved = (_DEFAULT_TUNING.scipy_vars, _DEFAULT_TUNING.scipy_constrs)
        try:
            configure_auto(scipy_vars=5)
            res = solve(self.make(10), backend="auto")
            assert res.backend == "scipy"
        finally:
            configure_auto(scipy_vars=saved[0], scipy_constrs=saved[1])
