"""Linearized Boolean operators: truth-table exactness under optimization.

Each helper claims its auxiliary variable *equals* the Boolean function of
its arguments in every feasible solution. We verify by fixing the arguments
and asking the solver for both the min and max of the auxiliary variable —
they must coincide with the truth table entry.
"""

import itertools

import pytest

from repro.ilp import (
    Model,
    and_,
    at_least,
    at_most,
    count_indicators,
    exactly,
    iff,
    implies,
    lin_sum,
    not_,
    or_,
)


def _forced_value(build, assignment):
    """Min and max of the helper's output with inputs pinned; assert equal."""
    results = []
    for sense in ("min", "max"):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(len(assignment))]
        for var, val in zip(xs, assignment):
            m.add_constr(var == val)
        z = build(m, xs)
        if sense == "min":
            m.minimize(z)
        else:
            m.maximize(z)
        res = m.solve(backend="bnb")
        assert res.is_optimal
        results.append(round(res[z]))
    assert results[0] == results[1], f"aux var not functionally determined: {results}"
    return results[0]


@pytest.mark.parametrize("n", [1, 2, 3])
def test_or_truth_table(n):
    for assignment in itertools.product([0, 1], repeat=n):
        value = _forced_value(lambda m, xs: or_(m, xs), assignment)
        assert value == int(any(assignment))


@pytest.mark.parametrize("n", [1, 2, 3])
def test_and_truth_table(n):
    for assignment in itertools.product([0, 1], repeat=n):
        value = _forced_value(lambda m, xs: and_(m, xs), assignment)
        assert value == int(all(assignment))


def test_or_of_expressions():
    # OR over affine binary expressions (e.g. negations) is also exact.
    for a, b in itertools.product([0, 1], repeat=2):
        value = _forced_value(lambda m, xs: or_(m, [not_(xs[0]), xs[1]]), (a, b))
        assert value == int((1 - a) or b)


def test_not_is_affine():
    m = Model()
    x = m.add_binary("x")
    expr = not_(x)
    assert expr.value({x: 0.0}) == 1.0
    assert expr.value({x: 1.0}) == 0.0


def test_not_rejects_non_binary():
    m = Model()
    y = m.add_integer("y", lb=0, ub=5)
    with pytest.raises(ValueError):
        not_(y)


def test_empty_or_rejected():
    m = Model()
    with pytest.raises(ValueError):
        or_(m, [])


def test_empty_and_rejected():
    m = Model()
    with pytest.raises(ValueError):
        and_(m, [])


def test_implies_blocks_bad_assignment():
    m = Model()
    a, b = m.add_binary("a"), m.add_binary("b")
    implies(m, a, b)
    m.add_constr(a == 1)
    m.add_constr(b == 0)
    assert m.solve(backend="bnb").status == "infeasible"


def test_implies_allows_vacuous():
    m = Model()
    a, b = m.add_binary("a"), m.add_binary("b")
    implies(m, a, b)
    m.add_constr(a == 0)
    m.minimize(b)
    res = m.solve(backend="bnb")
    assert res.is_optimal and res[b] == 0.0


def test_iff_ties_values():
    m = Model()
    a, b = m.add_binary("a"), m.add_binary("b")
    iff(m, a, b)
    m.add_constr(a == 1)
    m.minimize(b)
    res = m.solve(backend="bnb")
    assert res.is_optimal and res[b] == 1.0


@pytest.mark.parametrize("k,feasible", [(0, True), (2, True), (3, True), (4, False)])
def test_at_least(k, feasible):
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(3)]
    at_least(m, xs, k)
    m.minimize(lin_sum(xs))
    res = m.solve(backend="bnb")
    if feasible:
        assert res.is_optimal and res.objective == k
    else:
        assert res.status == "infeasible"


def test_at_most_caps_sum():
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(4)]
    at_most(m, xs, 2)
    m.maximize(lin_sum(xs))
    res = m.solve(backend="bnb")
    assert res.objective == 2


def test_exactly_pins_sum():
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(4)]
    exactly(m, xs, 3)
    m.minimize(lin_sum(xs))
    res = m.solve(backend="bnb")
    assert res.is_optimal and res.objective == 3


class TestCountIndicators:
    @pytest.mark.parametrize("assignment", list(itertools.product([0, 1], repeat=3)))
    def test_indicator_matches_count(self, assignment):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        for var, val in zip(xs, assignment):
            m.add_constr(var == val)
        indicators = count_indicators(m, xs, name="c")
        m.minimize(0)
        res = m.solve(backend="bnb")
        assert res.is_optimal
        chosen = [k for k, ind in enumerate(indicators) if res[ind] > 0.5]
        assert chosen == [sum(assignment)]

    def test_k_max_smaller_than_args_rejected(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        with pytest.raises(ValueError):
            count_indicators(m, xs, k_max=2)

    def test_k_max_larger_allowed(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(2)]
        indicators = count_indicators(m, xs, k_max=4)
        assert len(indicators) == 5
