"""B&B search-tree event stream: kinds, rate limiting, real solves."""

import numpy as np
import pytest

from repro.ilp import (
    Model,
    SearchEventEmitter,
    capture_search_events,
    lin_sum,
    search_sink,
    solve,
)
from repro.ilp.search_events import set_search_sink


@pytest.fixture(autouse=True)
def _no_leaked_sink():
    assert search_sink() is None
    yield
    set_search_sink(None)


def knapsack_model(n=8, seed=3):
    """A small knapsack whose LP relaxation is fractional: must branch."""
    rng = np.random.default_rng(seed)
    values = rng.integers(3, 30, size=n)
    weights = rng.integers(2, 20, size=n)
    m = Model("knapsack")
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    m.add_constr(lin_sum(int(w) * x for w, x in zip(weights, xs))
                 <= int(weights.sum()) // 2)
    # solve() minimizes: negate the values.
    m.minimize(lin_sum(-int(v) * x for v, x in zip(values, xs)))
    return m


class TestEmitter:
    def test_no_sink_means_no_emitter(self):
        assert SearchEventEmitter.for_active_sink() is None

    def test_events_carry_solve_and_seq(self):
        events = []
        emitter = SearchEventEmitter(events.append)
        emitter.emit("open", node=1, depth=0, bound=-1.0)
        emitter.emit("incumbent", node=1, depth=0, objective=-1.0)
        emitter.close(nodes=1)
        kinds = [e["kind"] for e in events]
        assert kinds == ["open", "incumbent", "summary"]
        assert [e["seq"] for e in events] == [1, 2, 3]
        assert len({e["solve"] for e in events}) == 1
        assert events[-1]["suppressed"] == 0

    def test_node_events_are_sampled_past_keep(self):
        events = []
        emitter = SearchEventEmitter(events.append, keep=4, sample=3)
        for i in range(20):
            emitter.emit("open", node=i)
        emitter.close()
        opens = [e for e in events if e["kind"] == "open"]
        # 4 verbatim, then every 3rd of the remaining 16.
        assert len(opens) == 4 + 16 // 3
        assert events[-1]["suppressed"] == 20 - len(opens)

    def test_incumbents_always_pass(self):
        events = []
        emitter = SearchEventEmitter(events.append, keep=1, sample=1000)
        for i in range(50):
            emitter.emit("open", node=i)
        emitter.emit("incumbent", node=50, objective=1.0)
        assert any(e["kind"] == "incumbent" for e in events)

    def test_raising_sink_is_dropped_not_fatal(self):
        calls = {"n": 0}

        def bad_sink(event):
            calls["n"] += 1
            raise RuntimeError("sink exploded")

        emitter = SearchEventEmitter(bad_sink)
        emitter.emit("open", node=1)
        emitter.emit("open", node=2)  # sink already dropped
        emitter.close()
        assert calls["n"] == 1

    def test_solve_ids_are_unique(self):
        a = SearchEventEmitter(lambda e: None)
        b = SearchEventEmitter(lambda e: None)
        assert a.solve != b.solve


class TestRealSolve:
    def test_bnb_solve_streams_its_tree(self):
        events = []
        with capture_search_events(events.append):
            result = solve(knapsack_model(), backend="bnb")
        assert result.is_optimal
        kinds = {e["kind"] for e in events}
        assert "open" in kinds and "summary" in kinds
        assert "incumbent" in kinds  # an optimal knapsack found something
        summary = [e for e in events if e["kind"] == "summary"][-1]
        assert summary["nodes"] >= 1
        assert summary["objective"] == pytest.approx(result.objective)
        opens = [e for e in events if e["kind"] == "open"]
        assert all("depth" in e and "node" in e for e in opens)

    def test_without_sink_nothing_is_emitted_and_solve_matches(self):
        events = []
        with capture_search_events(events.append):
            traced = solve(knapsack_model(), backend="bnb")
        untraced = solve(knapsack_model(), backend="bnb")
        assert untraced.objective == pytest.approx(traced.objective)
