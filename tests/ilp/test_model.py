"""Unit tests for the Model container and matrix export."""

import math

import numpy as np
import pytest

from repro.ilp import Model, lin_sum


class TestModelConstruction:
    def test_counts(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_continuous("y", ub=10)
        m.add_constr(x + y <= 5)
        assert m.num_vars == 2
        assert m.num_constrs == 1
        assert m.num_integer_vars == 1

    def test_auto_names_avoid_collisions(self):
        m = Model()
        m.add_binary("_v0")
        v = m.add_binary()  # must not collide with the explicit _v0
        assert v.name != "_v0"

    def test_var_by_name(self):
        m = Model()
        x = m.add_binary("edge")
        assert m.var_by_name("edge") is x

    def test_add_constr_rejects_bool(self):
        m = Model()
        with pytest.raises(TypeError):
            m.add_constr(True)  # a comparison that degraded to a bool

    def test_constraint_auto_names_assigned(self):
        m = Model()
        x = m.add_binary("x")
        c1 = m.add_constr(x <= 1)
        c2 = m.add_constr(x >= 0)
        assert c1.name != c2.name

    def test_stats(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(3)]
        m.add_constr(lin_sum(xs) >= 1)
        m.add_constr(xs[0] + xs[1] <= 1)
        stats = m.stats()
        assert stats["variables"] == 3
        assert stats["constraints"] == 2
        assert stats["nonzeros"] == 5


class TestMatrixExport:
    def test_shapes_and_senses(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_continuous("y", lb=-1, ub=4)
        m.add_constr(2 * x + y <= 3)
        m.add_constr(x - y >= -2)
        m.add_constr(x + y == 1)
        m.minimize(x + 5 * y)
        form = m.to_matrix_form()
        assert form.A.shape == (3, 2)
        assert form.senses == ["<=", ">=", "=="]
        assert form.b.tolist() == [3.0, -2.0, 1.0]
        assert form.lb.tolist() == [0.0, -1.0]
        assert form.ub.tolist() == [1.0, 4.0]
        assert form.integrality.tolist() == [True, False]
        assert form.c.tolist() == [1.0, 5.0]

    def test_maximize_normalized_to_min(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(3 * x + 1)
        form = m.to_matrix_form()
        assert form.c.tolist() == [-3.0]
        assert form.obj_constant == -1.0

    def test_duplicate_terms_accumulate_in_row(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(lin_sum([x, x]) <= 1)
        form = m.to_matrix_form()
        assert form.A[0, 0] == 2.0


class TestViolationChecking:
    def test_violated_constraints_reported(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y >= 2, name="both")
        m.add_constr(x <= 0, name="xoff")
        bad = m.violated_constraints({x: 1.0, y: 0.0})
        assert {c.name for c in bad} == {"both", "xoff"}

    def test_feasible_assignment_clean(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x <= 1)
        assert m.violated_constraints({x: 1.0}) == []


class TestSolveResult:
    def test_objective_matches_values(self):
        m = Model()
        x = m.add_binary("x")
        y = m.add_binary("y")
        m.add_constr(x + y >= 1)
        m.minimize(2 * x + y + 10)
        res = m.solve(backend="bnb")
        assert res.is_optimal
        assert res.objective == pytest.approx(11.0)
        assert res[y] == 1.0

    def test_expression_evaluation_via_result(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 1)
        m.minimize(x)
        res = m.solve(backend="bnb")
        assert res.value(3 * x + 2) == pytest.approx(5.0)

    def test_maximize_objective_sign(self):
        m = Model()
        x = m.add_binary("x")
        m.maximize(4 * x)
        for backend in ("bnb", "scipy"):
            res = m.solve(backend=backend)
            assert res.objective == pytest.approx(4.0), backend

    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_binary("x")
        with pytest.raises(ValueError):
            m.solve(backend="cplex")


class TestDegenerateModels:
    def test_empty_model_is_trivially_optimal(self):
        m = Model()
        res = m.solve()
        assert res.is_optimal
        assert res.objective == 0.0

    def test_variable_free_infeasible_constraint(self):
        m = Model()
        # 0 >= 1 after normalization: constant infeasibility, no variables.
        from repro.ilp.constraint import Constraint
        from repro.ilp.expr import LinExpr

        m.add_constr(Constraint(LinExpr({}, -1.0), ">="))  # -1 >= 0
        res = m.solve()
        assert res.status == "infeasible"

    def test_variable_free_feasible_constraint(self):
        m = Model()
        from repro.ilp.constraint import Constraint
        from repro.ilp.expr import LinExpr

        m.add_constr(Constraint(LinExpr({}, -1.0), "<="))  # -1 <= 0
        res = m.solve()
        assert res.is_optimal
