"""Warm-start machinery: dual-simplex reseeding, incumbent seeding, obs.

The acceptance contract for the incremental MILP core:

* a warm re-solve reaches the same optimum as a cold solve (bit-identical
  costs on the integer models) in fewer iterations;
* warm-started node LPs skip phase 1, observable through the
  ``ilp.simplex.phase1_skips`` counter;
* Bland's-rule cutover scales with problem size instead of kicking in at
  an absolute iteration count.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.eps import build_eps_template, eps_spec
from repro.ilp import BnBOptions, LPStatus, bland_cutover, solve_lp
from repro.ilp.branch_and_bound import solve_milp

INF = math.inf


def eps_form(gens=2):
    spec = eps_spec(
        build_eps_template(num_generators=gens), reliability_target=1e-4
    )
    return spec.build_encoder().model.to_matrix_form()


class TestWarmLP:
    def test_resolve_same_problem_is_free(self):
        form = eps_form()
        a = form.dense_A()
        base = solve_lp(
            form.c, a, form.senses, form.b, form.lb, form.ub, want_basis=True
        )
        assert base.status is LPStatus.OPTIMAL
        assert base.basis is not None
        again = solve_lp(
            form.c, a, form.senses, form.b, form.lb, form.ub,
            warm_basis=base.basis,
        )
        assert again.warm_started
        assert again.iterations == 0
        assert again.objective == pytest.approx(base.objective)

    def test_bound_tightening_reoptimizes_dually(self):
        form = eps_form()
        a = form.dense_A()
        base = solve_lp(
            form.c, a, form.senses, form.b, form.lb, form.ub, want_basis=True
        )
        frac = [
            j for j in range(form.num_vars)
            if form.integrality[j] and abs(base.x[j] - round(base.x[j])) > 1e-6
        ]
        assert frac, "EPS relaxation should be fractional"
        ub = form.ub.copy()
        ub[frac[0]] = 0.0

        cold = solve_lp(form.c, a, form.senses, form.b, form.lb, ub)
        warm = solve_lp(
            form.c, a, form.senses, form.b, form.lb, ub,
            warm_basis=base.basis,
        )
        assert warm.warm_started
        assert warm.status is cold.status is LPStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, rel=1e-7)
        assert warm.iterations < cold.iterations
        assert warm.dual_pivots > 0

    def test_stale_basis_falls_back_to_cold(self):
        form = eps_form()
        a = form.dense_A()
        base = solve_lp(
            form.c, a, form.senses, form.b, form.lb, form.ub, want_basis=True
        )
        # A basis for a different shape must be ignored, not crash.
        res = solve_lp(
            form.c[:-1], a[:, :-1], form.senses, form.b,
            form.lb[:-1], form.ub[:-1], warm_basis=base.basis,
        )
        assert not res.warm_started
        assert res.status in (LPStatus.OPTIMAL, LPStatus.INFEASIBLE)


@st.composite
def tightened_lp(draw):
    """A bounded LP plus one variable bound to tighten after the first solve."""
    n = draw(st.integers(2, 5))
    m = draw(st.integers(1, 4))
    coef = st.integers(-5, 5)
    c = [draw(coef) for _ in range(n)]
    a = [[draw(coef) for _ in range(n)] for _ in range(m)]
    b = [draw(st.integers(1, 10)) for _ in range(m)]
    ub = [draw(st.integers(2, 6)) for _ in range(n)]
    var = draw(st.integers(0, n - 1))
    return c, a, b, ub, var


@given(tightened_lp())
@settings(max_examples=80, deadline=None)
def test_warm_equals_cold_after_tightening(problem):
    c, a, b, ub, var = problem
    n = len(c)
    c = np.asarray(c, float)
    a = np.asarray(a, float)
    b = np.asarray(b, float)
    lb = np.zeros(n)
    ub = np.asarray(ub, float)
    senses = ["<="] * len(b)

    base = solve_lp(c, a, senses, b, lb, ub, want_basis=True)
    assert base.status is LPStatus.OPTIMAL  # x=0 feasible by construction
    tight_ub = ub.copy()
    tight_ub[var] = max(lb[var], math.floor(base.x[var] / 2.0))

    cold = solve_lp(c, a, senses, b, lb, tight_ub)
    warm = solve_lp(c, a, senses, b, lb, tight_ub, warm_basis=base.basis)
    assert cold.status is LPStatus.OPTIMAL
    assert warm.status is LPStatus.OPTIMAL
    assert warm.objective == pytest.approx(cold.objective, abs=1e-6)


class TestWarmBnB:
    def test_warm_and_cold_reach_identical_optimum(self):
        form = eps_form()
        cold = solve_milp(form, BnBOptions(warm_start=False))
        warm = solve_milp(form, BnBOptions(warm_start=True))
        assert cold.status == warm.status == "optimal"
        assert warm.objective == cold.objective  # bit-identical cost
        assert warm.stats.warm_lp_solves > 0
        assert warm.stats.lp_iterations < cold.stats.lp_iterations

    def test_incumbent_seeding_prunes(self):
        form = eps_form()
        first = solve_milp(form, BnBOptions())
        seeded = solve_milp(form, BnBOptions(), incumbent=first.x)
        assert seeded.stats.seeded_incumbent
        assert seeded.objective == first.objective
        assert seeded.stats.nodes <= first.stats.nodes
        # Prunes attributable to the seed are tracked separately.
        assert seeded.stats.seed_pruned_nodes > 0

    def test_invalid_incumbent_is_ignored(self):
        form = eps_form()
        bad = np.full(form.num_vars, 0.5)  # fractional: not MILP-feasible
        out = solve_milp(form, BnBOptions(), incumbent=bad)
        assert not out.stats.seeded_incumbent
        assert out.status == "optimal"
        short = np.zeros(3)  # wrong length: stale from an older model
        out2 = solve_milp(form, BnBOptions(), incumbent=short)
        assert not out2.stats.seeded_incumbent
        assert out2.objective == out.objective

    def test_root_basis_exported(self):
        form = eps_form()
        out = solve_milp(form, BnBOptions())
        assert out.root_basis is not None
        assert len(out.root_basis.var_status) == form.num_vars
        assert len(out.root_basis.row_status) == form.num_constrs


class TestInstrumentation:
    def test_warm_node_solves_skip_phase1(self):
        """Acceptance check: warm hits show up in the obs counters."""
        form = eps_form()
        previous = obs.get_tracer()
        obs.set_tracer(obs.Tracer())
        try:
            before = obs.snapshot()
            solve_milp(form, BnBOptions(warm_start=True))
            after = obs.snapshot()
        finally:
            obs.set_tracer(previous)

        def delta(name):
            prev = before.get(name, {}).get("value", 0)
            return after.get(name, {}).get("value", 0) - prev

        assert delta("ilp.bnb.warm_lp_solves") > 0
        assert delta("ilp.simplex.warm_starts") > 0
        # Every warm start that kept its basis skipped phase 1.
        assert delta("ilp.simplex.phase1_skips") >= delta(
            "ilp.bnb.warm_lp_solves"
        )
        assert delta("ilp.simplex.cold_starts") >= 1  # the root

    def test_counters_silent_without_tracer(self):
        form = eps_form()
        before = obs.snapshot()
        solve_milp(form, BnBOptions(warm_start=True))
        assert obs.snapshot() == before


class TestBlandCutover:
    def test_scales_with_problem_size(self):
        assert bland_cutover(1, 1) == 2000  # floor for tiny problems
        assert bland_cutover(500, 500) == 10000
        assert bland_cutover(2000, 1000) == 30000

    def test_degenerate_stack_still_terminates(self):
        # Heavily degenerate LP (many duplicate active rows) large enough
        # that the old absolute cutover (2000) would have flipped mid-solve:
        # termination + the right optimum is the regression contract.
        rng = np.random.default_rng(3)
        n, m = 60, 240
        a = np.repeat(rng.integers(0, 3, size=(m // 4, n)), 4, axis=0).astype(float)
        b = np.repeat(np.full(m // 4, 30.0), 4)
        c = -np.ones(n)
        res = solve_lp(
            c, a, ["<="] * m, b, np.zeros(n), np.full(n, 10.0)
        )
        assert res.status is LPStatus.OPTIMAL
        from scipy.optimize import linprog
        ref = linprog(c, A_ub=a, b_ub=b, bounds=[(0, 10)] * n, method="highs")
        assert res.objective == pytest.approx(ref.fun, abs=1e-6)
