"""Unit tests for linear expressions and variables."""

import math

import pytest

from repro.ilp import Constraint, LinExpr, Model, Var, as_expr, lin_sum


@pytest.fixture
def model():
    return Model("t")


class TestVar:
    def test_binary_flags(self, model):
        x = model.add_binary("x")
        assert x.is_binary
        assert x.is_integer
        assert x.lb == 0.0 and x.ub == 1.0

    def test_integer_is_not_binary_with_wide_bounds(self, model):
        x = model.add_integer("x", lb=0, ub=5)
        assert x.is_integer and not x.is_binary

    def test_continuous_defaults(self, model):
        x = model.add_continuous("x")
        assert not x.is_integer
        assert x.ub == math.inf

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Var("bad", lb=2.0, ub=1.0)

    def test_duplicate_name_rejected(self, model):
        model.add_binary("x")
        with pytest.raises(ValueError):
            model.add_binary("x")

    def test_repr_mentions_kind(self, model):
        assert "bin" in repr(model.add_binary("b"))
        assert "cont" in repr(model.add_continuous("c"))


class TestArithmetic:
    def test_add_vars(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        expr = x + y
        assert expr.terms[x] == 1.0 and expr.terms[y] == 1.0

    def test_scalar_multiplication(self, model):
        x = model.add_binary("x")
        expr = 3 * x
        assert expr.terms[x] == 3.0

    def test_subtraction_cancels(self, model):
        x = model.add_binary("x")
        expr = (x + 1) - x
        assert len(expr) == 0
        assert expr.constant == 1.0

    def test_negation(self, model):
        x = model.add_binary("x")
        expr = -x
        assert expr.terms[x] == -1.0

    def test_rsub(self, model):
        x = model.add_binary("x")
        expr = 1 - x
        assert expr.constant == 1.0 and expr.terms[x] == -1.0

    def test_division(self, model):
        x = model.add_binary("x")
        expr = (4 * x) / 2
        assert expr.terms[x] == 2.0

    def test_zero_coefficients_dropped(self, model):
        x = model.add_binary("x")
        expr = 0 * x + 5
        assert len(expr) == 0 and expr.constant == 5.0

    def test_multiply_by_expression_rejected(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        with pytest.raises(TypeError):
            (x + 1) * (y + 1)  # nonlinear

    def test_value_evaluation(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 1.0, y: 0.0}) == 3.0


class TestLinSum:
    def test_mixed_items(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        expr = lin_sum([x, 2 * y, 5])
        assert expr.terms[x] == 1.0
        assert expr.terms[y] == 2.0
        assert expr.constant == 5.0

    def test_empty(self):
        expr = lin_sum([])
        assert len(expr) == 0 and expr.constant == 0.0

    def test_repeated_var_accumulates(self, model):
        x = model.add_binary("x")
        expr = lin_sum([x, x, x])
        assert expr.terms[x] == 3.0

    def test_generator_input(self, model):
        xs = [model.add_binary(f"x{i}") for i in range(5)]
        expr = lin_sum(i * x for i, x in enumerate(xs))
        assert expr.terms[xs[4]] == 4.0
        assert xs[0] not in expr.terms

    def test_invalid_item_rejected(self):
        with pytest.raises(TypeError):
            lin_sum(["nope"])


class TestComparisons:
    def test_le_builds_constraint(self, model):
        x = model.add_binary("x")
        con = x <= 1
        assert isinstance(con, Constraint)
        assert con.sense == "<="
        assert con.rhs == 1.0

    def test_ge_builds_constraint(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        con = x + y >= 2
        assert con.sense == ">=" and con.rhs == 2.0

    def test_eq_builds_constraint(self, model):
        x = model.add_binary("x")
        con = x == 1
        assert isinstance(con, Constraint) and con.sense == "=="

    def test_expr_vs_expr(self, model):
        x, y = model.add_binary("x"), model.add_binary("y")
        con = x + 1 <= y + 3
        assert con.rhs == 2.0

    def test_violation_and_satisfaction(self, model):
        x = model.add_binary("x")
        con = model.add_constr(x <= 0)
        assert con.is_satisfied({x: 0.0})
        assert not con.is_satisfied({x: 1.0})
        assert con.violation({x: 1.0}) == 1.0


class TestAsExpr:
    def test_from_number(self):
        expr = as_expr(7)
        assert expr.constant == 7.0

    def test_from_var(self, model):
        x = model.add_binary("x")
        assert as_expr(x).terms[x] == 1.0

    def test_invalid(self):
        with pytest.raises(TypeError):
            as_expr("x")
