"""Unit and property tests for the bounded-variable simplex engine."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.ilp import LPStatus, solve_lp

INF = math.inf


def _solve(c, a, senses, b, lb, ub):
    return solve_lp(
        np.asarray(c, float),
        np.asarray(a, float).reshape(len(senses), len(c)) if senses else np.zeros((0, len(c))),
        list(senses),
        np.asarray(b, float),
        np.asarray(lb, float),
        np.asarray(ub, float),
    )


class TestBasicLPs:
    def test_simple_maximization_as_min(self):
        # min -x - 2y ; x + y <= 4, x <= 3, x,y >= 0  -> (0,4), obj -8
        res = _solve([-1, -2], [[1, 1], [1, 0]], ["<=", "<="], [4, 3], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-8.0)
        assert res.x == pytest.approx([0.0, 4.0])

    def test_equality_row(self):
        res = _solve([1, 1], [[1, 1]], ["=="], [2], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)

    def test_ge_row(self):
        res = _solve([1, 2], [[1, 1]], [">="], [3], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3.0)
        assert res.x == pytest.approx([3.0, 0.0])

    def test_infeasible(self):
        res = _solve([1], [[1], [1]], ["<=", ">="], [1, 2], [0], [INF])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = _solve([-1], [[0]], ["<="], [1], [0], [INF])
        assert res.status is LPStatus.UNBOUNDED

    def test_bound_only_problem(self):
        res = _solve([1, -1], np.zeros((0, 2)), [], [], [1, 0], [5, 3])
        assert res.status is LPStatus.OPTIMAL
        assert res.x == pytest.approx([1.0, 3.0])

    def test_bound_only_unbounded(self):
        res = _solve([-1], np.zeros((0, 1)), [], [], [0], [INF])
        assert res.status is LPStatus.UNBOUNDED

    def test_upper_bounds_respected(self):
        # min -x - y ; x + y <= 10 ; x <= 2, y <= 3 (variable bounds)
        res = _solve([-1, -1], [[1, 1]], ["<="], [10], [0, 0], [2, 3])
        assert res.objective == pytest.approx(-5.0)

    def test_bound_flip_path(self):
        # Optimum forces a nonbasic variable to its upper bound.
        res = _solve([-5, -1], [[1, 1]], ["<="], [10], [0, 0], [4, 20])
        assert res.objective == pytest.approx(-26.0)
        assert res.x == pytest.approx([4.0, 6.0])

    def test_fixed_variable(self):
        res = _solve([1, 1], [[1, 1]], [">="], [3], [2, 0], [2, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.x == pytest.approx([2.0, 1.0])

    def test_negative_rhs(self):
        # x - y <= -1 with minimize x  => x=0, y>=1
        res = _solve([1, 1], [[1, -1]], ["<="], [-1], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(1.0)

    def test_degenerate_constraints_terminate(self):
        # Many redundant rows (classic cycling bait) must still terminate.
        a = [[1, 1], [2, 2], [1, 1], [0.5, 0.5]]
        res = _solve([-1, -1], a, ["<="] * 4, [2, 4, 2, 1], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-2.0)


@st.composite
def random_lp(draw):
    """Small random bounded LPs with box constraints — always feasible at 0."""
    n = draw(st.integers(1, 5))
    m = draw(st.integers(1, 5))
    coef = st.integers(-5, 5)
    c = [draw(coef) for _ in range(n)]
    a = [[draw(coef) for _ in range(n)] for _ in range(m)]
    # b >= 0 with <= rows ensures x = 0 is feasible: no infeasible noise.
    b = [draw(st.integers(0, 10)) for _ in range(m)]
    ub = [draw(st.integers(1, 6)) for _ in range(n)]
    return c, a, b, ub


@given(random_lp())
@settings(max_examples=120, deadline=None)
def test_matches_scipy_on_random_lps(problem):
    c, a, b, ub = problem
    n = len(c)
    ours = _solve(c, a, ["<="] * len(b), b, [0] * n, ub)
    ref = linprog(c, A_ub=np.array(a, float), b_ub=np.array(b, float),
                  bounds=[(0, u) for u in ub], method="highs")
    assert ref.status == 0, "reference should be feasible by construction"
    assert ours.status is LPStatus.OPTIMAL
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
    # Our solution must itself be feasible.
    ax = np.array(a, float) @ ours.x
    assert np.all(ax <= np.array(b, float) + 1e-6)
    assert np.all(ours.x >= -1e-9) and np.all(ours.x <= np.array(ub, float) + 1e-9)


@st.composite
def random_eq_lp(draw):
    """Random LPs with one equality row derived from a known feasible point."""
    n = draw(st.integers(2, 5))
    coef = st.integers(-4, 4)
    c = [draw(coef) for _ in range(n)]
    row = [draw(coef) for _ in range(n)]
    x0 = [draw(st.integers(0, 3)) for _ in range(n)]
    rhs = sum(r * x for r, x in zip(row, x0))
    ub = [max(x, 1) + draw(st.integers(0, 3)) for x in x0]
    return c, row, rhs, ub


@given(random_eq_lp())
@settings(max_examples=80, deadline=None)
def test_matches_scipy_with_equality(problem):
    c, row, rhs, ub = problem
    n = len(c)
    ours = _solve(c, [row], ["=="], [rhs], [0] * n, ub)
    ref = linprog(c, A_eq=np.array([row], float), b_eq=[rhs],
                  bounds=[(0, u) for u in ub], method="highs")
    assert ref.status == 0
    assert ours.status is LPStatus.OPTIMAL
    assert ours.objective == pytest.approx(ref.fun, abs=1e-6)


class TestLimitsAndEdgeCases:
    def test_iteration_limit_reported(self):
        # A nontrivial LP with a 1-iteration budget must hit the limit.
        res = solve_lp(
            np.array([-1.0, -1.0, -1.0]),
            np.array([[1.0, 2.0, 1.0], [2.0, 1.0, 3.0]]),
            ["<=", "<="],
            np.array([10.0, 12.0]),
            np.zeros(3),
            np.full(3, INF),
            max_iterations=1,
        )
        assert res.status in (LPStatus.ITERATION_LIMIT, LPStatus.OPTIMAL)

    def test_all_variables_fixed(self):
        res = solve_lp(
            np.array([1.0, 1.0]),
            np.array([[1.0, 1.0]]),
            ["<="],
            np.array([5.0]),
            np.array([2.0, 3.0]),
            np.array([2.0, 3.0]),
        )
        assert res.status is LPStatus.OPTIMAL
        assert res.x == pytest.approx([2.0, 3.0])

    def test_fixed_variables_infeasible_row(self):
        res = solve_lp(
            np.array([0.0, 0.0]),
            np.array([[1.0, 1.0]]),
            ["=="],
            np.array([99.0]),
            np.array([2.0, 3.0]),
            np.array([2.0, 3.0]),
        )
        assert res.status is LPStatus.INFEASIBLE

    def test_free_variable_negative_optimum(self):
        # x free in [-inf, inf]: min x s.t. x >= -5 -> -5.
        res = solve_lp(
            np.array([1.0]),
            np.array([[1.0]]),
            [">="],
            np.array([-5.0]),
            np.array([-INF]),
            np.array([INF]),
        )
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-5.0)
