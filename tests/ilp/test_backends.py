"""Backend dispatch and limit-handling tests."""

import numpy as np
import pytest

from repro.ilp import BnBOptions, Model, lin_sum, solve_milp
from repro.ilp.scipy_backend import scipy_milp_available, solve_with_scipy


def hard_model(n=26):
    """A small knapsack-ish instance with an awkward LP relaxation."""
    m = Model()
    xs = [m.add_binary(f"x{i}") for i in range(n)]
    weights = [(7 * i) % 13 + 3 for i in range(n)]
    values = [(5 * i) % 11 + 1 for i in range(n)]
    m.add_constr(lin_sum(w * x for w, x in zip(weights, xs)) <= sum(weights) // 3)
    m.maximize(lin_sum(v * x for v, x in zip(values, xs)))
    return m


class TestScipyBackend:
    def test_available(self):
        assert scipy_milp_available()

    def test_unbounded(self):
        m = Model()
        x = m.add_integer("x")
        m.maximize(x)
        out = solve_with_scipy(m.to_matrix_form())
        assert out.status == "unbounded"

    def test_infeasible(self):
        m = Model()
        x = m.add_binary("x")
        m.add_constr(x >= 1)
        m.add_constr(x <= 0)
        out = solve_with_scipy(m.to_matrix_form())
        assert out.status == "infeasible"

    def test_integer_values_snapped(self):
        m = hard_model(10)
        res = m.solve(backend="scipy")
        assert res.is_optimal
        for var, value in res.values.items():
            assert value in (0.0, 1.0)

    def test_mip_rel_gap_accepted(self):
        m = hard_model(10)
        out = solve_with_scipy(m.to_matrix_form(), mip_rel_gap=0.5)
        assert out.status == "optimal"  # loose gap still reports optimal here

    def test_no_constraints_model(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(-x)
        out = solve_with_scipy(m.to_matrix_form())
        assert out.status == "optimal"
        assert out.objective == pytest.approx(-1.0)


class TestBnBLimits:
    def test_time_limit_status(self):
        m = hard_model(26)
        out = solve_milp(m.to_matrix_form(), BnBOptions(time_limit=1e-6))
        assert out.status == "limit"

    def test_node_limit_may_return_incumbent(self):
        m = hard_model(20)
        out = solve_milp(m.to_matrix_form(), BnBOptions(node_limit=50))
        assert out.status in ("optimal", "limit")
        if out.x is not None:
            # Whatever incumbent exists must be feasible.
            values = {
                var: out.x[var.index] for var in m.to_matrix_form().variables
            }
            assert m.violated_constraints(values) == []

    def test_plunge_depth_one(self):
        m = hard_model(12)
        out = solve_milp(m.to_matrix_form(), BnBOptions(plunge_depth=1))
        ref = m.solve(backend="scipy")
        assert out.status == "optimal"
        # maximize normalized to min internally; compare via model resolve
        res = m.solve(backend="bnb", options=BnBOptions(plunge_depth=1))
        assert res.objective == pytest.approx(ref.objective)


class TestAutoDispatch:
    def test_small_model_uses_bnb(self):
        m = Model()
        x = m.add_binary("x")
        m.minimize(x)
        res = m.solve(backend="auto")
        assert res.backend == "bnb"

    def test_large_model_uses_scipy(self):
        m = Model()
        xs = [m.add_binary(f"x{i}") for i in range(100)]
        m.add_constr(lin_sum(xs) >= 10)
        m.minimize(lin_sum(xs))
        res = m.solve(backend="auto")
        assert res.backend == "scipy"
        assert res.objective == pytest.approx(10.0)

    def test_wall_time_recorded(self):
        m = hard_model(8)
        res = m.solve(backend="scipy")
        assert res.wall_time > 0.0
