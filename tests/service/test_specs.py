"""Job spec validation, normalization, digests, and batch builders."""

import json

import pytest

from repro.engine import requirement_sweep
from repro.service import (
    SpecError,
    build_batch,
    normalize_job_spec,
    register_batch_builder,
    spec_digest,
    validate_job_spec,
    validate_schema,
)
from repro.service.specs import _BATCH_BUILDERS


class TestValidation:
    def test_minimal_specs_validate(self):
        for kind in ("synthesize", "sweep", "verify", "bench"):
            assert validate_job_spec({"kind": kind}) == []

    def test_missing_kind(self):
        errors = validate_job_spec({})
        assert any("kind" in e for e in errors)

    def test_unknown_kind(self):
        errors = validate_job_spec({"kind": "exfiltrate"})
        assert errors

    def test_unknown_top_level_key(self):
        errors = validate_job_spec({"kind": "sweep", "bogus": 1})
        assert any("bogus" in e for e in errors)

    def test_unknown_param(self):
        errors = validate_job_spec(
            {"kind": "sweep", "params": {"warp": 9}}
        )
        assert any("warp" in e for e in errors)

    def test_levels_and_sizes_mutually_exclusive(self):
        errors = validate_job_spec({
            "kind": "sweep",
            "params": {"levels": [1e-3], "sizes": [20]},
        })
        assert any("either levels or sizes" in e for e in errors)

    def test_non_object_spec(self):
        assert validate_job_spec([1, 2]) != []
        assert validate_job_spec("sweep") != []

    def test_every_problem_reported_at_once(self):
        errors = validate_job_spec({
            "kind": "sweep",
            "params": {"domain": "nope", "levels": [2.0, -1.0]},
        })
        # bad enum value + two out-of-range levels = three problems
        assert len(errors) >= 3

    def test_spec_error_carries_errors(self):
        with pytest.raises(SpecError) as exc:
            normalize_job_spec({"kind": "sweep", "params": {"levels": []}})
        assert exc.value.errors


class TestMiniSchemaValidator:
    def test_type_list(self):
        schema = {"type": ["number", "null"]}
        assert validate_schema(None, schema) == []
        assert validate_schema(1.5, schema) == []
        assert validate_schema("x", schema) != []

    def test_bool_is_not_integer(self):
        assert validate_schema(True, {"type": "integer"}) != []

    def test_exclusive_minimum(self):
        schema = {"type": "number", "exclusiveMinimum": 0}
        assert validate_schema(0, schema) != []
        assert validate_schema(1e-300, schema) == []

    def test_items_errors_carry_index(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        errors = validate_schema([1, "two", 3], schema)
        assert errors and "[1]" in errors[0]

    def test_min_max_items(self):
        schema = {"type": "array", "minItems": 1, "maxItems": 2}
        assert validate_schema([], schema) != []
        assert validate_schema([1, 2, 3], schema) != []
        assert validate_schema([1], schema) == []


class TestNormalization:
    def test_defaults_filled(self):
        spec = normalize_job_spec({"kind": "synthesize"})
        assert spec["jobs"] == 1
        assert spec["timeout"] is None
        assert spec["params"]["domain"] == "eps"
        assert spec["params"]["algorithm"] == "mr"

    def test_sweep_default_levels(self):
        spec = normalize_job_spec({"kind": "sweep"})
        assert spec["params"]["levels"] == [2e-3, 2e-6, 2e-10]
        assert spec["params"]["sizes"] is None

    def test_explicit_sizes_suppress_default_levels(self):
        spec = normalize_job_spec(
            {"kind": "sweep", "params": {"sizes": [20]}}
        )
        assert spec["params"]["levels"] is None

    def test_normalization_idempotent(self):
        once = normalize_job_spec({"kind": "verify"})
        twice = normalize_job_spec(once)
        assert once == twice

    def test_digest_ignores_key_order_and_matches_defaults(self):
        a = normalize_job_spec({"kind": "sweep", "params": {"size": 2}})
        b = normalize_job_spec(
            {"params": {"size": 2}, "kind": "sweep"}
        )
        assert spec_digest(a) == spec_digest(b)
        # An explicitly spelled-out default normalizes to the same address.
        c = normalize_job_spec(
            {"kind": "sweep", "params": {"size": 2, "domain": "eps"}}
        )
        assert spec_digest(a) == spec_digest(c)

    def test_digest_distinguishes_work(self):
        a = normalize_job_spec({"kind": "sweep", "params": {"size": 2}})
        b = normalize_job_spec({"kind": "sweep", "params": {"size": 3}})
        assert spec_digest(a) != spec_digest(b)

    def test_normalized_spec_round_trips_json(self):
        spec = normalize_job_spec({"kind": "bench"})
        assert json.loads(json.dumps(spec)) == spec


class TestBatchBuilders:
    def test_sweep_batch_matches_direct_requirement_sweep(self):
        from repro.domains import domain_spec

        spec = normalize_job_spec(
            {"kind": "sweep",
             "params": {"size": 2, "levels": [2e-3, 2e-6],
                        "backend": "scipy"}}
        )
        batch = build_batch(spec)
        direct = requirement_sweep(
            domain_spec("eps", target=None, size=2),
            [2e-3, 2e-6], algorithm="mr",
            name="service-requirement-sweep",
            backend="scipy", mip_rel_gap=None,
        )
        assert [j.job_id for j in batch.jobs] == [
            j.job_id for j in direct.jobs
        ]
        assert [j.kind for j in batch.jobs] == [j.kind for j in direct.jobs]

    def test_scaling_batch(self):
        spec = normalize_job_spec(
            {"kind": "sweep", "params": {"sizes": [20, 30]}}
        )
        batch = build_batch(spec)
        assert len(batch.jobs) == 2

    def test_synthesize_batch_single_job(self):
        spec = normalize_job_spec({"kind": "synthesize"})
        batch = build_batch(spec)
        assert len(batch.jobs) == 1
        assert batch.jobs[0].kind == "synthesize"

    def test_verify_batch(self):
        spec = normalize_job_spec(
            {"kind": "verify",
             "params": {"fuzz": 2, "include_eps": False, "mc_samples": 0}}
        )
        batch = build_batch(spec)
        assert len(batch.jobs) > 2  # corpus + 2 fuzz cases

    def test_unknown_kind_raises(self):
        with pytest.raises(SpecError):
            build_batch({"kind": "mystery", "params": {}})

    def test_register_batch_builder(self):
        sentinel = object()
        register_batch_builder("custom-kind", lambda params: sentinel)
        try:
            assert build_batch({"kind": "custom-kind"}) is sentinel
        finally:
            _BATCH_BUILDERS.pop("custom-kind", None)
