"""Service-run observability: stitched traces, worker metrics, the
``/events`` tail, and the ``repro tree`` report.

The runner derives the run's trace id from its run id, stitches every
process's spans into ``trace.json``, reconstructs per-worker metric
totals into ``worker_metrics.json``, and seals both into the evidence
pack; the API exposes the run's telemetry journal as an SSE-style tail.
"""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.engine.telemetry import read_events
from repro.service import (
    DONE,
    JobQueue,
    RunStore,
    ServiceServer,
    verify_evidence,
)
from repro.service.runner import execute_run
from repro.service.store import TELEMETRY_NAME, TRACE_NAME, WORKER_METRICS_NAME

SWEEP_SPEC = {
    "kind": "sweep",
    "params": {"domain": "eps", "size": 2, "levels": [2e-3, 2e-6],
               "backend": "scipy", "algorithm": "mr"},
}

# The same sweep through the from-scratch B&B backend, so the solver
# streams real search-tree events into the run journal.
BNB_SWEEP_SPEC = {
    "kind": "sweep",
    "params": {"domain": "eps", "size": 2, "levels": [2e-3],
               "backend": "bnb", "algorithm": "mr"},
}


def run_spec(tmp_path, spec, jobs=1):
    store = RunStore(tmp_path / "runs")
    record = store.create(spec)
    record = execute_run(store, record, jobs=jobs)
    return store, store.load(record.run_id)


class TestRunObservabilityArtifacts:
    def test_run_seals_trace_and_worker_metrics(self, tmp_path):
        store, record = run_spec(tmp_path, SWEEP_SPEC)
        assert record.state == DONE
        artifacts = record.manifest["artifacts"]
        assert TRACE_NAME in artifacts
        assert WORKER_METRICS_NAME in artifacts

        trace = json.loads((record.path / TRACE_NAME).read_text())
        derived = obs.TraceContext.derive(record.run_id)
        assert trace["otherData"]["trace_id"] == derived.trace_id
        job_events = [e for e in trace["traceEvents"]
                      if e.get("ph") == "X" and e["name"] == "engine.job"]
        assert len(job_events) == 2
        assert all(e["args"]["trace_id"] == derived.trace_id
                   for e in job_events)

        metrics = json.loads((record.path / WORKER_METRICS_NAME).read_text())
        assert metrics["run_id"] == record.run_id
        assert metrics["trace_id"] == derived.trace_id

        report = verify_evidence(record.path)
        assert report.ok, report.summary()

    def test_pool_run_attributes_metrics_to_workers(self, tmp_path):
        store, record = run_spec(tmp_path, SWEEP_SPEC, jobs=2)
        assert record.state == DONE
        metrics = json.loads((record.path / WORKER_METRICS_NAME).read_text())
        workers = metrics["workers"]
        assert workers, "pool workers must ship per-pid metric deltas"
        total = sum(
            snap.get("engine.jobs.completed", {}).get("value", 0)
            for snap in workers.values()
        )
        assert total == 2

    def test_run_journal_carries_bnb_search_events(self, tmp_path):
        store, record = run_spec(tmp_path, BNB_SWEEP_SPEC)
        assert record.state == DONE
        events = [e for e in read_events(record.path / TELEMETRY_NAME)
                  if e["event"] == "bnb_event"]
        assert events, "B&B solves must stream their search tree"
        kinds = {e["kind"] for e in events}
        assert "open" in kinds and "summary" in kinds

    def test_repro_tree_renders_a_real_run(self, tmp_path, capsys):
        from repro.cli import main

        store, record = run_spec(tmp_path, BNB_SWEEP_SPEC)
        code = main(["tree", "--run", record.run_id,
                     "--runs-dir", str(tmp_path / "runs")])
        out = capsys.readouterr().out
        assert code == 0
        assert "solve" in out and "nodes" in out
        assert "(no search events)" not in out

    def test_runs_show_prints_worker_metrics(self, tmp_path, capsys):
        from repro.cli import main

        store, record = run_spec(tmp_path, SWEEP_SPEC, jobs=2)
        code = main(["runs", "show", record.run_id,
                     "--runs-dir", str(tmp_path / "runs")])
        out = capsys.readouterr().out
        assert code == 0
        assert "worker metrics" in out


def sse_frames(raw):
    """Parse ``event:``/``data:`` frames out of an SSE byte stream."""
    frames = []
    for block in raw.decode("utf-8").split("\n\n"):
        name, data = None, None
        for line in block.splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        if name is not None:
            frames.append((name, data))
    return frames


@pytest.fixture()
def service(tmp_path):
    store = RunStore(tmp_path / "runs")
    queue = JobQueue(store, cache_dir=str(tmp_path / "cache")).start()
    server = ServiceServer(queue, port=0).start()
    yield server.url, store
    server.stop()
    queue.shutdown()


class TestEventsTail:
    def test_tail_follows_a_live_run_to_completion(self, service):
        base, store = service
        body = json.dumps(SWEEP_SPEC).encode()
        req = urllib.request.Request(f"{base}/api/jobs", data=body,
                                     method="POST")
        req.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(req, timeout=30) as resp:
            run_id = json.loads(resp.read())["run_id"]

        # Connect immediately: the tail must replay what exists and then
        # stream the rest of the run live, ending only when it seals.
        with urllib.request.urlopen(
            f"{base}/api/runs/{run_id}/events?timeout=120", timeout=180
        ) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            assert resp.headers.get("Content-Length") is None
            frames = sse_frames(resp.read())

        names = [name for name, _ in frames]
        assert "batch_start" in names
        assert "job_end" in names
        assert "batch_end" in names
        end_name, end_data = frames[-1]
        assert end_name == "end"
        assert end_data["run_id"] == run_id
        assert end_data["state"] == DONE
        job_ends = [data for name, data in frames if name == "job_end"]
        assert len(job_ends) == 2

    def test_tail_of_finished_run_replays_and_ends(self, service):
        base, store = service
        record = store.create(SWEEP_SPEC)
        execute_run(store, record)
        with urllib.request.urlopen(
            f"{base}/api/runs/{record.run_id}/events?timeout=0", timeout=30
        ) as resp:
            frames = sse_frames(resp.read())
        assert frames[-1][0] == "end"
        assert any(name == "batch_end" for name, _ in frames)

    def test_tail_of_unknown_run_is_404(self, service):
        base, _ = service
        try:
            urllib.request.urlopen(f"{base}/api/runs/ghost/events", timeout=10)
        except urllib.error.HTTPError as err:
            assert err.code == 404
        else:  # pragma: no cover - the request must fail
            raise AssertionError("expected 404")


class TestConcurrentRunsShareOneTracer:
    def test_parallel_executes_keep_traces_separate(self, tmp_path):
        """Two runs executing concurrently in one process must each seal a
        trace containing only their own spans (filtered by trace id)."""
        store = RunStore(tmp_path / "runs")
        records = [store.create(SWEEP_SPEC) for _ in range(2)]
        threads = [threading.Thread(target=execute_run, args=(store, r))
                   for r in records]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        for record in (store.load(r.run_id) for r in records):
            assert record.state == DONE
            trace = json.loads((record.path / TRACE_NAME).read_text())
            derived = obs.TraceContext.derive(record.run_id)
            events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
            assert events
            assert {e["args"]["trace_id"] for e in events} == {
                derived.trace_id
            }
