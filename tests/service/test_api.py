"""HTTP job API end-to-end: submit, poll, results, artifacts, errors.

The centerpiece is the acceptance test: a sweep POSTed to the service
must produce a ``results`` array byte-identical to a direct
``repro.engine.run_batch`` of the same spec, and the sealed run directory
must pass (and, after tampering, fail) evidence verification.
"""

import http.client
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import run_batch
from repro.service import (
    CANCELLED,
    DONE,
    PENDING,
    JobQueue,
    MANIFEST_FILENAME,
    RunStore,
    ServiceServer,
    build_batch,
    canonical_results,
    normalize_job_spec,
    verify_evidence,
)

SWEEP_SPEC = {
    "kind": "sweep",
    "params": {"domain": "eps", "size": 2, "levels": [2e-3, 2e-6],
               "backend": "scipy", "algorithm": "mr"},
}


def request(url, method="GET", body=None, timeout=30):
    """(status, parsed-or-raw body, headers) without raising on 4xx."""
    req = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            raw = resp.read()
            code, headers = resp.status, dict(resp.headers)
    except urllib.error.HTTPError as err:
        raw = err.read()
        code, headers = err.code, dict(err.headers)
    try:
        return code, json.loads(raw), headers
    except (json.JSONDecodeError, UnicodeDecodeError):
        return code, raw, headers


def poll_terminal(base, run_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, doc, _ = request(f"{base}/api/jobs/{run_id}")
        assert code == 200
        if doc["terminal"]:
            return doc
        time.sleep(0.2)
    raise AssertionError(f"run {run_id} never reached a terminal state")


@pytest.fixture()
def service(tmp_path):
    """A live service with started workers; yields (base_url, store)."""
    store = RunStore(tmp_path / "runs")
    queue = JobQueue(store, cache_dir=str(tmp_path / "cache")).start()
    server = ServiceServer(queue, port=0).start()
    yield server.url, store
    server.stop()
    queue.shutdown()


@pytest.fixture()
def idle_service(tmp_path):
    """A service whose queue never starts: runs stay PENDING forever."""
    store = RunStore(tmp_path / "runs")
    queue = JobQueue(store)
    server = ServiceServer(queue, port=0).start()
    yield server.url, store
    server.stop()


class TestEndToEnd:
    def test_posted_sweep_matches_direct_run_batch_bit_for_bit(
        self, service, tmp_path
    ):
        base, store = service
        code, sub, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps(SWEEP_SPEC).encode(),
        )
        assert code == 202
        assert sub["location"] == f"/api/jobs/{sub['run_id']}"

        doc = poll_terminal(base, sub["run_id"])
        assert doc["state"] == DONE
        assert doc["progress"]["done"] == 2

        code, result, _ = request(f"{base}/api/jobs/{sub['run_id']}/result")
        assert code == 200
        assert result["run_id"] == sub["run_id"]

        # The same spec through the engine directly, no service anywhere.
        direct = run_batch(build_batch(normalize_job_spec(SWEEP_SPEC)))
        expected = canonical_results(direct.results)
        assert json.dumps(result["results"], sort_keys=True) == \
            json.dumps(expected, sort_keys=True)

        # Sealed evidence verifies clean...
        record = store.load(sub["run_id"])
        assert verify_evidence(record.path).ok
        # ...and a single flipped byte is caught.
        result_path = record.artifact("result.json")
        with result_path.open("a", encoding="utf-8") as fh:
            fh.write(" ")
        report = verify_evidence(record.path)
        assert not report.ok
        assert any(name == "result.json" for name, _, _ in report.modified)

    def test_artifacts_and_listing(self, service):
        base, store = service
        _, sub, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps(SWEEP_SPEC).encode(),
        )
        poll_terminal(base, sub["run_id"])

        code, status, _ = request(f"{base}/api/jobs/{sub['run_id']}")
        assert MANIFEST_FILENAME in status["artifacts"]
        assert "result.json" in status["artifacts"]

        code, report, headers = request(
            f"{base}/api/jobs/{sub['run_id']}/artifacts/report.txt"
        )
        assert code == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert sub["run_id"] in report.decode("utf-8")

        code, telemetry, headers = request(
            f"{base}/api/jobs/{sub['run_id']}/artifacts/telemetry.jsonl"
        )
        assert code == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        assert b'"batch_end"' in telemetry

        code, runs, _ = request(f"{base}/api/runs")
        assert code == 200
        assert sub["run_id"] in [r["run_id"] for r in runs["runs"]]

    def test_obs_endpoints_still_served(self, service):
        base, _ = service
        code, body, _ = request(f"{base}/healthz")
        assert code == 200
        code, body, _ = request(f"{base}/metrics")
        assert code == 200
        code, body, _ = request(f"{base}/runs")
        assert code == 200
        code, body, _ = request(f"{base}/")
        assert b"/api/jobs" in body


class TestErrorPaths:
    def test_invalid_json_body(self, idle_service):
        base, _ = idle_service
        code, doc, _ = request(f"{base}/api/jobs", method="POST",
                               body=b"{not json")
        assert code == 400
        assert "invalid JSON" in doc["error"]

    def test_invalid_spec_lists_every_problem(self, idle_service):
        base, store = idle_service
        code, doc, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps({"kind": "sweep",
                             "params": {"domain": "nope",
                                        "levels": [-1.0]}}).encode(),
        )
        assert code == 400
        assert len(doc["problems"]) >= 2
        assert store.list() == []  # nothing persisted for a bad spec

    def test_oversized_body_rejected(self, idle_service):
        base, _ = idle_service
        blob = b'{"kind": "sweep", "pad": "' + b"x" * (1 << 20) + b'"}'
        code, doc, _ = request(f"{base}/api/jobs", method="POST", body=blob)
        assert code == 413

    def test_missing_content_length(self, idle_service):
        base, _ = idle_service
        host = base.split("//", 1)[1]
        conn = http.client.HTTPConnection(host, timeout=10)
        conn.putrequest("POST", "/api/jobs", skip_accept_encoding=True)
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 411
        conn.close()

    def test_unknown_run_404(self, idle_service):
        base, _ = idle_service
        for suffix in ("", "/result", "/artifacts/result.json"):
            code, doc, _ = request(f"{base}/api/jobs/ghost{suffix}")
            assert code == 404

    def test_result_before_terminal_409(self, idle_service):
        base, _ = idle_service
        _, sub, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps(SWEEP_SPEC).encode(),
        )
        code, doc, _ = request(f"{base}/api/jobs/{sub['run_id']}/result")
        assert code == 409
        assert doc["state"] == PENDING

    def test_unknown_artifact_404(self, idle_service):
        base, _ = idle_service
        _, sub, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps(SWEEP_SPEC).encode(),
        )
        for name in ("nope.json", ".."):
            code, _, _ = request(
                f"{base}/api/jobs/{sub['run_id']}/artifacts/{name}"
            )
            assert code == 404

    def test_post_elsewhere_404(self, idle_service):
        base, _ = idle_service
        code, _, _ = request(f"{base}/api/runs", method="POST", body=b"{}")
        assert code == 404


class TestCancelOverHttp:
    def test_delete_pending_cancels_then_conflicts(self, idle_service):
        base, store = idle_service
        _, sub, _ = request(
            f"{base}/api/jobs", method="POST",
            body=json.dumps(SWEEP_SPEC).encode(),
        )
        code, doc, _ = request(f"{base}/api/jobs/{sub['run_id']}",
                               method="DELETE")
        assert code == 200
        assert doc["state"] == CANCELLED
        assert store.load(sub["run_id"]).state == CANCELLED
        # Cancelling a terminal run is a conflict, not a crash.
        code, doc, _ = request(f"{base}/api/jobs/{sub['run_id']}",
                               method="DELETE")
        assert code == 409
