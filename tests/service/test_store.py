"""Run store: manifests, the state machine, journal, and housekeeping."""

import json

import pytest

from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    RunStore,
    StateError,
    capture_environment,
    spec_digest,
)
from repro.service.store import JOURNAL_NAME, MANIFEST_NAME, SPEC_NAME


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "runs")


def make_run(store, **params):
    return store.create({"kind": "sweep", "params": params})


class TestCreate:
    def test_new_run_is_pending(self, store):
        record = make_run(store)
        assert record.state == PENDING
        assert not record.terminal
        assert record.kind == "sweep"
        assert record.run_id.startswith("sweep-")

    def test_spec_persisted_normalized(self, store):
        record = make_run(store, size=2)
        spec = json.loads(
            (record.path / SPEC_NAME).read_text(encoding="utf-8")
        )
        assert spec["params"]["size"] == 2
        assert spec["params"]["algorithm"] == "mr"  # default filled
        assert record.manifest["spec_digest"] == spec_digest(spec)

    def test_manifest_records_environment_and_seeds(self, store):
        record = make_run(store)
        env = record.manifest["environment"]
        assert "python" in env and "platform" in env and "packages" in env
        assert "seeds" in record.manifest
        assert record.manifest["attempt"] == 0

    def test_duplicate_run_id_rejected(self, store):
        record = make_run(store)
        with pytest.raises(FileExistsError):
            store.create({"kind": "sweep"}, run_id=record.run_id)

    def test_no_tmp_files_left_behind(self, store):
        record = make_run(store)
        assert not list(record.path.glob("*.tmp"))


class TestStateMachine:
    def test_happy_path(self, store):
        record = make_run(store)
        record = store.transition(record, RUNNING)
        assert record.manifest["started_at"] is not None
        assert record.manifest["attempt"] == 1
        record = store.transition(record, DONE)
        assert record.terminal
        assert record.manifest["finished_at"] is not None

    def test_pending_cannot_jump_to_done(self, store):
        record = make_run(store)
        with pytest.raises(StateError):
            store.transition(record, DONE)

    def test_terminal_states_are_final(self, store):
        for terminal in (DONE, FAILED, CANCELLED):
            record = make_run(store)
            store.transition(record, RUNNING)
            store.transition(record, terminal)
            with pytest.raises(StateError):
                store.transition(record, RUNNING)

    def test_resume_edge_running_to_pending(self, store):
        record = make_run(store)
        store.transition(record, RUNNING)
        record = store.transition(record, PENDING)
        assert record.state == PENDING
        assert "resumed_at" in record.manifest
        # A second attempt bumps the counter again.
        record = store.transition(record, RUNNING)
        assert record.manifest["attempt"] == 2

    def test_unknown_state_rejected(self, store):
        record = make_run(store)
        with pytest.raises(StateError):
            store.transition(record, "LIMBO")

    def test_transition_persists_to_disk(self, store):
        record = make_run(store)
        store.transition(record, RUNNING, note="x")
        reloaded = store.load(record.run_id)
        assert reloaded.state == RUNNING
        assert reloaded.manifest["note"] == "x"


class TestListingAndJournal:
    def test_list_newest_first_and_filtered(self, store):
        first = make_run(store)
        second = make_run(store)
        # Force a deterministic order regardless of clock resolution.
        store.update(first, created_at=100.0)
        store.update(second, created_at=200.0)
        ids = [r.run_id for r in store.list()]
        assert ids == [second.run_id, first.run_id]
        store.transition(second, RUNNING)
        assert [r.run_id for r in store.list(states={PENDING})] == [
            first.run_id
        ]

    def test_list_sorts_by_start_time_over_creation(self, store):
        # a run created earlier but *started* later sorts first: ls is
        # ordered by when work began, not when the spec was submitted
        early = make_run(store)
        late = make_run(store)
        store.update(early, created_at=100.0, started_at=500.0)
        store.update(late, created_at=200.0, started_at=300.0)
        ids = [r.run_id for r in store.list()]
        assert ids == [early.run_id, late.run_id]

    def test_list_order_stable_on_ties(self, store):
        runs = [make_run(store) for _ in range(3)]
        for r in runs:
            store.update(r, created_at=100.0)
        ids = [r.run_id for r in store.list()]
        # equal timestamps fall back to run_id so the order is stable
        assert ids == sorted(ids)

    def test_contains(self, store):
        record = make_run(store)
        assert record.run_id in store
        assert "nope" not in store

    def test_journal_round_trip_skips_torn_line(self, store):
        record = make_run(store)
        store.append_journal(record, {"job_id": "a", "ok": True})
        store.append_journal(record, {"job_id": "b", "ok": False})
        # Simulate a crash mid-write: a torn, unparseable trailing line.
        with (record.path / JOURNAL_NAME).open("a") as fh:
            fh.write('{"job_id": "c", "ok"')
        entries = store.read_journal(record)
        assert [e["job_id"] for e in entries] == ["a", "b"]

    def test_progress_updates(self, store):
        record = make_run(store)
        store.set_progress(record, done=3, failed=1, total=10, skipped=2)
        reloaded = store.load(record.run_id)
        assert reloaded.manifest["progress"] == {
            "done": 3, "failed": 1, "skipped": 2, "total": 10,
        }


class TestHousekeeping:
    def test_delete(self, store):
        record = make_run(store)
        store.delete(record.run_id)
        assert record.run_id not in store
        with pytest.raises(KeyError):
            store.load(record.run_id)

    def test_gc_keeps_newest_terminal_only(self, store):
        terminal = []
        for i in range(4):
            record = make_run(store)
            store.transition(record, RUNNING)
            store.transition(record, DONE)
            store.update(record, created_at=float(i))
            terminal.append(record)
        live = make_run(store)  # PENDING: must survive any gc
        deleted = store.gc(keep=2)
        assert sorted(deleted) == sorted(
            r.run_id for r in terminal[:2]
        )
        assert live.run_id in store
        assert terminal[3].run_id in store

    def test_gc_never_touches_running(self, store):
        record = make_run(store)
        store.transition(record, RUNNING)
        assert store.gc(keep=0) == []
        assert record.run_id in store


class TestEnvironmentCapture:
    def test_capture_environment_shape(self):
        env = capture_environment()
        assert env["python"].count(".") >= 1
        assert isinstance(env["packages"], dict)
        # Inside this checkout, git data should resolve.
        if env["git"] is not None:
            assert len(env["git"]["commit"]) == 40

    def test_corrupt_manifest_raises_key_error_on_missing(self, store):
        with pytest.raises(KeyError):
            store.load("never-created")

    def test_non_run_dirs_ignored_by_list(self, store):
        (store.root / "stray-file").write_text("x")
        (store.root / "stray-dir").mkdir()
        assert store.list() == []


def _backdate(record, seconds):
    """Rewrite created_at and push file mtimes ``seconds`` into the past."""
    import os
    import time

    old = time.time() - seconds
    manifest_path = record.path / MANIFEST_NAME
    data = json.loads(manifest_path.read_text())
    data["created_at"] = old
    manifest_path.write_text(json.dumps(data))
    os.utime(manifest_path, (old, old))


class TestLeases:
    def test_heartbeat_round_trip(self, store):
        from repro.service.store import HEARTBEAT_NAME

        record = make_run(store)
        assert not (record.path / HEARTBEAT_NAME).exists()
        store.heartbeat(record)
        assert (record.path / HEARTBEAT_NAME).exists()
        assert store.has_live_lease(record)
        age = store.lease_age(record)
        assert age is not None and age < 60.0
        store.clear_heartbeat(record)
        assert not (record.path / HEARTBEAT_NAME).exists()

    def test_gc_skips_stale_run_with_live_heartbeat(self, store):
        # Regression: `repro runs gc --older-than` used to judge staleness
        # by created_at alone, deleting runs a worker was still executing.
        record = make_run(store)
        _backdate(record, 3600.0)
        store.heartbeat(record)  # an executor is alive right now
        deleted = store.gc(keep=0, max_age=60.0, lease_ttl=300.0)
        assert deleted == []
        assert store.load(record.run_id).state == PENDING

    def test_gc_collects_stale_run_without_lease(self, store):
        import os

        from repro.service.store import HEARTBEAT_NAME

        record = make_run(store)
        _backdate(record, 3600.0)
        store.heartbeat(record)
        hb = record.path / HEARTBEAT_NAME
        os.utime(hb, (hb.stat().st_mtime - 3600.0,) * 2)  # worker died
        deleted = store.gc(keep=0, max_age=60.0, lease_ttl=300.0)
        assert deleted == [record.run_id]
        assert record.run_id not in store

    def test_gc_without_max_age_ignores_non_terminal_age(self, store):
        record = make_run(store)
        _backdate(record, 3600.0)
        assert store.gc(keep=0) == []
        assert store.load(record.run_id).state == PENDING

    def test_manifest_progress_counts_as_liveness(self, store):
        # Pre-heartbeat executors still rewrite the manifest on progress;
        # that alone must keep gc away.
        record = make_run(store)
        _backdate(record, 3600.0)
        record = store.load(record.run_id)  # pick up the backdated manifest
        store.set_progress(record, done=1, failed=0, total=2)
        assert store.has_live_lease(record)
        assert store.gc(keep=0, max_age=60.0) == []
