"""Crash resume: interrupted runs complete without recomputing journaled
jobs, and the resumed result document is identical to an uninterrupted one."""

import json

import pytest

from repro.engine import BatchSpec, run_batch
from repro.engine.telemetry import read_events
from repro.service import (
    DONE,
    PENDING,
    RUNNING,
    JobQueue,
    RunStore,
    build_batch,
    canonical_results,
    find_interrupted,
    normalize_job_spec,
    resume_interrupted,
)
from repro.service.runner import _journal_entry
from repro.service.store import TELEMETRY_NAME

SWEEP_SPEC = {
    "kind": "sweep",
    "params": {"domain": "eps", "size": 2, "levels": [2e-3, 2e-6],
               "backend": "scipy", "algorithm": "mr"},
}


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "runs")


def crash_mid_run(store):
    """Fabricate the exact disk state a service killed mid-batch leaves.

    The first of two sweep jobs finished — journaled to ``results.jsonl``
    AND ``job_end``-recorded in telemetry — then the process died, so the
    manifest is stuck in RUNNING.
    """
    record = store.create(SWEEP_SPEC)
    store.transition(record, RUNNING)
    batch = build_batch(record.spec())
    first_only = BatchSpec(name=batch.name, jobs=[batch.jobs[0]],
                           meta=dict(batch.meta))
    outcome = run_batch(
        first_only, telemetry=str(record.path / TELEMETRY_NAME)
    )
    for result in outcome.results:
        store.append_journal(record, _journal_entry(result))
    return store.load(record.run_id), batch


class TestFindInterrupted:
    def test_running_and_pending_found_oldest_first(self, store):
        running, _ = crash_mid_run(store)
        pending = store.create(SWEEP_SPEC)
        done = store.create(SWEEP_SPEC)
        store.transition(done, RUNNING)
        store.transition(done, DONE)
        store.update(running, created_at=1.0)
        store.update(pending, created_at=2.0)
        found = find_interrupted(store)
        assert [r.run_id for r in found] == [
            running.run_id, pending.run_id
        ]

    def test_clean_store_has_nothing_to_resume(self, store):
        assert find_interrupted(store) == []


class TestResume:
    def test_resume_completes_without_recomputing_journaled_jobs(
        self, store
    ):
        record, batch = crash_mid_run(store)
        assert record.state == RUNNING

        queue = JobQueue(store).start()
        try:
            resumed = resume_interrupted(store, queue)
            assert [r.run_id for r in resumed] == [record.run_id]
            assert queue.join(timeout=120.0)
        finally:
            queue.shutdown()

        final = store.load(record.run_id)
        assert final.state == DONE
        assert final.manifest["attempt"] == 2
        assert final.manifest["progress"]["skipped"] == 1

        result = json.loads(
            final.artifact("result.json").read_text(encoding="utf-8")
        )
        assert result["stats"]["replayed"] == 1
        assert result["stats"]["executed"] == 1

        # The journaled job really was skipped: exactly one job_start per
        # job across both attempts (telemetry appends across attempts).
        events = read_events(final.artifact(TELEMETRY_NAME))
        starts = [e["job"] for e in events if e["event"] == "job_start"]
        assert sorted(starts) == sorted(j.job_id for j in batch.jobs)

        # And the stitched document matches an uninterrupted direct run.
        direct = run_batch(build_batch(normalize_job_spec(SWEEP_SPEC)))
        expected = canonical_results(direct.results)
        assert json.dumps(result["results"], sort_keys=True) == \
            json.dumps(expected, sort_keys=True)

    def test_journal_without_telemetry_confirmation_not_replayed(
        self, store
    ):
        """Double-entry check: a journal line alone proves nothing."""
        record = store.create(SWEEP_SPEC)
        store.transition(record, RUNNING)
        batch = build_batch(record.spec())
        # A journal entry with NO matching telemetry job_end — the shape a
        # crash between the two writes (or a torn telemetry line) leaves.
        store.append_journal(record, {
            "job_id": batch.jobs[0].job_id, "ok": True,
            "meta": {}, "value": {"type": "synthesis_result",
                                  "status": "forged"},
        })

        queue = JobQueue(store).start()
        try:
            resume_interrupted(store, queue)
            assert queue.join(timeout=120.0)
        finally:
            queue.shutdown()

        final = store.load(record.run_id)
        assert final.state == DONE
        result = json.loads(
            final.artifact("result.json").read_text(encoding="utf-8")
        )
        assert result["stats"]["replayed"] == 0
        assert result["stats"]["executed"] == len(batch.jobs)
        assert not any(
            e.get("value", {}).get("status") == "forged"
            for e in result["results"]
        )

    def test_pending_run_resumes_too(self, store):
        record = store.create(SWEEP_SPEC)
        queue = JobQueue(store).start()
        try:
            resumed = resume_interrupted(store, queue)
            assert [r.run_id for r in resumed] == [record.run_id]
            assert queue.join(timeout=120.0)
        finally:
            queue.shutdown()
        assert store.load(record.run_id).state == DONE

    def test_resume_is_idempotent_on_clean_store(self, store):
        queue = JobQueue(store)
        assert resume_interrupted(store, queue) == []
        assert store.list() == []


class TestPendingStateAfterResumeMark:
    def test_running_transitioned_to_pending_before_enqueue(self, store):
        record, _ = crash_mid_run(store)
        queue = JobQueue(store)  # unstarted: stays queued
        resume_interrupted(store, queue)
        assert store.load(record.run_id).state == PENDING
