"""Evidence packs: SHA-256 manifests, verification, tamper detection."""

import hashlib
import re
import subprocess

import pytest

from repro.service import (
    MANIFEST_FILENAME,
    file_digest,
    pack_evidence,
    read_manifest,
    verify_evidence,
)

DIGEST_LINE = re.compile(r"^[0-9a-f]{64}  \S")


@pytest.fixture()
def run_dir(tmp_path):
    d = tmp_path / "run"
    d.mkdir()
    (d / "manifest.json").write_text('{"state": "DONE"}\n')
    (d / "result.json").write_text('{"results": []}\n')
    (d / "telemetry.jsonl").write_text('{"event": "batch_start"}\n')
    return d


class TestPack:
    def test_pack_writes_sorted_sha256sum_format(self, run_dir):
        manifest = pack_evidence(run_dir, run_id="test-run")
        lines = manifest.read_text().splitlines()
        assert lines[0] == "# archex evidence manifest v1"
        assert lines[1] == "# run: test-run"
        digest_lines = [l for l in lines if not l.startswith("#")]
        assert len(digest_lines) == 3
        assert all(DIGEST_LINE.match(l) for l in digest_lines)
        names = [l.split("  ", 1)[1] for l in digest_lines]
        assert names == sorted(names)

    def test_manifest_never_hashes_itself_or_tmp_files(self, run_dir):
        (run_dir / "partial.json.tmp").write_text("torn")
        pack_evidence(run_dir)
        entries = read_manifest(run_dir)
        assert MANIFEST_FILENAME not in entries
        assert "partial.json.tmp" not in entries

    def test_file_digest_matches_hashlib(self, run_dir):
        path = run_dir / "result.json"
        expected = hashlib.sha256(path.read_bytes()).hexdigest()
        assert file_digest(path) == expected

    def test_coreutils_compatible(self, run_dir):
        """The documented `sha256sum -c` invocation must really pass."""
        pack_evidence(run_dir)
        proc = subprocess.run(
            f"grep -v '^#' {MANIFEST_FILENAME} | sha256sum -c -",
            shell=True, cwd=run_dir, capture_output=True, text=True,
        )
        if proc.returncode == 127:  # pragma: no cover - no coreutils
            pytest.skip("sha256sum unavailable")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestVerify:
    def test_clean_pack_verifies(self, run_dir):
        pack_evidence(run_dir)
        report = verify_evidence(run_dir)
        assert report.ok
        assert len(report.verified) == 3
        assert report.pack_digest == file_digest(run_dir / MANIFEST_FILENAME)
        assert "OK" in report.summary()

    def test_modified_file_detected(self, run_dir):
        pack_evidence(run_dir)
        (run_dir / "result.json").write_text('{"results": [1]}\n')
        report = verify_evidence(run_dir)
        assert not report.ok
        assert [name for name, _, _ in report.modified] == ["result.json"]
        assert "TAMPERED" in report.summary()

    def test_missing_file_detected(self, run_dir):
        pack_evidence(run_dir)
        (run_dir / "telemetry.jsonl").unlink()
        report = verify_evidence(run_dir)
        assert not report.ok
        assert report.missing == ["telemetry.jsonl"]

    def test_added_file_detected(self, run_dir):
        pack_evidence(run_dir)
        (run_dir / "smuggled.txt").write_text("extra")
        report = verify_evidence(run_dir)
        assert not report.ok
        assert report.added == ["smuggled.txt"]

    def test_missing_manifest_fails_verification(self, run_dir):
        report = verify_evidence(run_dir)
        assert not report.ok
        assert report.missing == [MANIFEST_FILENAME]

    def test_repack_after_change_verifies_again(self, run_dir):
        pack_evidence(run_dir)
        (run_dir / "result.json").write_text("new\n")
        pack_evidence(run_dir)
        assert verify_evidence(run_dir).ok

    def test_subdirectory_artifacts_covered(self, run_dir):
        sub = run_dir / "plots"
        sub.mkdir()
        (sub / "front.svg").write_text("<svg/>")
        pack_evidence(run_dir)
        assert "plots/front.svg" in read_manifest(run_dir)
        (sub / "front.svg").write_text("<svg>tampered</svg>")
        assert not verify_evidence(run_dir).ok
