"""Job queue: workers, cancellation, timeouts, and drain semantics.

These tests register a throwaway ``sleepy`` job kind (a spec builder plus
an engine runner whose jobs just nap) so queue mechanics are exercised
without paying for real synthesis.
"""

import time

import pytest

from repro.engine import register_runner
from repro.engine.executor import _RUNNERS
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    JobQueue,
    RunStore,
    register_batch_builder,
    verify_evidence,
)
from repro.service.specs import _BATCH_BUILDERS, PARAM_SCHEMAS, SPEC_SCHEMA


@pytest.fixture()
def sleepy_kind(monkeypatch):
    """Teach the whole stack a fast fake job kind for queue tests."""
    from repro.engine import BatchSpec, Job

    monkeypatch.setitem(
        SPEC_SCHEMA["properties"]["kind"], "enum",
        list(SPEC_SCHEMA["properties"]["kind"]["enum"]) + ["sleepy"],
    )
    monkeypatch.setitem(PARAM_SCHEMAS, "sleepy", {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            "naps": {"type": "integer", "minimum": 1, "default": 2},
            "nap_s": {"type": "number", "minimum": 0, "default": 0.0},
        },
    })

    def build(params):
        jobs = [
            Job(job_id=f"nap-{i}", kind="sleepy-job",
                payload={"nap_s": params["nap_s"], "i": i})
            for i in range(params["naps"])
        ]
        return BatchSpec(name="sleepy-batch", jobs=jobs)

    def run(job):
        time.sleep(job.payload["nap_s"])
        return {"napped": job.payload["i"]}

    register_batch_builder("sleepy", build)
    register_runner("sleepy-job", run)
    yield
    _BATCH_BUILDERS.pop("sleepy", None)
    _RUNNERS.pop("sleepy-job", None)


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "runs")


def wait_for_state(store, run_id, states, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = store.load(run_id)
        if record.state in states:
            return record
        time.sleep(0.01)
    raise AssertionError(
        f"run {run_id} never reached {states} (is {record.state})"
    )


class TestExecution:
    def test_submit_runs_to_done(self, store, sleepy_kind):
        queue = JobQueue(store).start()
        try:
            record = queue.submit({"kind": "sleepy", "params": {"naps": 3}})
            assert record.state == PENDING
            assert queue.join(timeout=30.0)
            record = store.load(record.run_id)
            assert record.state == DONE
            assert record.manifest["progress"] == {
                "done": 3, "failed": 0, "skipped": 0, "total": 3,
            }
            assert verify_evidence(record.path).ok
        finally:
            queue.shutdown()

    def test_fifo_order_single_worker(self, store, sleepy_kind):
        queue = JobQueue(store, workers=1).start()
        try:
            first = queue.submit({"kind": "sleepy"})
            second = queue.submit({"kind": "sleepy"})
            assert queue.join(timeout=30.0)
            a = store.load(first.run_id).manifest["finished_at"]
            b = store.load(second.run_id).manifest["finished_at"]
            assert a <= b
        finally:
            queue.shutdown()

    def test_invalid_spec_rejected_before_storage(self, store):
        queue = JobQueue(store)
        from repro.service import SpecError

        with pytest.raises(SpecError):
            queue.submit({"kind": "nope"})
        assert store.list() == []

    def test_failed_job_seals_failed(self, store, sleepy_kind):
        def explode(job):
            raise RuntimeError("boom")

        register_runner("sleepy-job", explode)
        queue = JobQueue(store).start()
        try:
            record = queue.submit({"kind": "sleepy", "params": {"naps": 1}})
            assert queue.join(timeout=30.0)
            record = store.load(record.run_id)
            assert record.state == FAILED
            assert "1 job(s) failed" in record.manifest["error"]
            assert verify_evidence(record.path).ok  # failures seal too
        finally:
            queue.shutdown()


class TestCancellation:
    def test_cancel_pending_before_any_worker_starts(self, store, sleepy_kind):
        queue = JobQueue(store)  # never started: the run stays queued
        record = queue.submit({"kind": "sleepy"})
        cancelled = queue.cancel(record.run_id)
        assert cancelled.state == CANCELLED
        assert verify_evidence(cancelled.path).ok

    def test_cancel_running_stops_at_job_boundary(self, store, sleepy_kind):
        queue = JobQueue(store).start()
        try:
            record = queue.submit({
                "kind": "sleepy",
                "params": {"naps": 100, "nap_s": 0.05},
            })
            wait_for_state(store, record.run_id, {RUNNING})
            queue.cancel(record.run_id)
            final = wait_for_state(
                store, record.run_id, {CANCELLED, FAILED, DONE}
            )
            assert final.state == CANCELLED
            # Stopped early: nowhere near all 100 jobs ran.
            assert final.manifest["progress"]["done"] < 100
        finally:
            queue.shutdown()

    def test_cancel_terminal_raises(self, store, sleepy_kind):
        queue = JobQueue(store).start()
        try:
            record = queue.submit({"kind": "sleepy", "params": {"naps": 1}})
            assert queue.join(timeout=30.0)
            with pytest.raises(ValueError):
                queue.cancel(record.run_id)
        finally:
            queue.shutdown()


class TestTimeouts:
    def test_spec_timeout_fails_the_run(self, store, sleepy_kind):
        queue = JobQueue(store).start()
        try:
            record = queue.submit({
                "kind": "sleepy",
                "timeout": 0.08,
                "params": {"naps": 100, "nap_s": 0.05},
            })
            final = wait_for_state(
                store, record.run_id, {DONE, FAILED, CANCELLED}
            )
            assert final.state == FAILED
            assert "timed out" in final.manifest["error"]
        finally:
            queue.shutdown()

    def test_queue_default_timeout_applies(self, store, sleepy_kind):
        queue = JobQueue(store, default_timeout=0.08).start()
        try:
            record = queue.submit({
                "kind": "sleepy",
                "params": {"naps": 100, "nap_s": 0.05},
            })
            final = wait_for_state(
                store, record.run_id, {DONE, FAILED, CANCELLED}
            )
            assert final.state == FAILED
        finally:
            queue.shutdown()


class TestDrain:
    def test_stopping_queue_leaves_queued_runs_pending(
        self, store, sleepy_kind
    ):
        queue = JobQueue(store)
        record = queue.submit({"kind": "sleepy"})
        queue._stopping = True  # what shutdown() sets before draining
        queue._execute(record.run_id)
        assert store.load(record.run_id).state == PENDING

    def test_enqueue_existing_rejects_non_pending(self, store, sleepy_kind):
        queue = JobQueue(store)
        record = queue.submit({"kind": "sleepy"})
        store.transition(record, RUNNING)
        with pytest.raises(ValueError):
            queue.enqueue_existing(store.load(record.run_id))

    def test_submit_after_shutdown_rejected(self, store, sleepy_kind):
        queue = JobQueue(store).start()
        queue.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit({"kind": "sleepy"})


class _ClaimProbeStore(RunStore):
    """Records worker-thread claim calls made without the queue lock.

    The PENDING -> RUNNING claim must happen entirely under
    ``JobQueue._lock`` — otherwise a draining shutdown can observe
    "everything PENDING-or-finished" in between the worker's stop-flag
    check and its transition, and return while the run silently flips to
    RUNNING with no worker left alive to seal it.
    """

    def __init__(self, root):
        super().__init__(root)
        self.queue = None
        self.violations = []

    def _probe(self, op):
        import threading

        if not threading.current_thread().name.startswith(
            "repro-service-worker"
        ):
            return
        lock = self.queue._lock
        if lock.acquire(blocking=False):  # free => caller didn't hold it
            lock.release()
            self.violations.append(op)

    def load(self, run_id):
        self._probe("load")
        return super().load(run_id)

    def transition(self, record, state, **kwargs):
        if state == RUNNING:
            self._probe("transition")
        return super().transition(record, state, **kwargs)


class TestDrainRace:
    def test_claim_happens_under_the_queue_lock(self, tmp_path, sleepy_kind):
        store = _ClaimProbeStore(tmp_path / "runs")
        queue = JobQueue(store)
        store.queue = queue
        queue.start()
        try:
            record = queue.submit({"kind": "sleepy"})
            assert queue.join(timeout=30.0)
        finally:
            queue.shutdown()
        assert store.load(record.run_id).state == DONE
        assert store.violations == []

    def test_drained_shutdown_never_strands_a_running_run(
        self, store, sleepy_kind
    ):
        queue = JobQueue(store, workers=1).start()
        busy = queue.submit({
            "kind": "sleepy", "params": {"naps": 3, "nap_s": 0.2},
        })
        wait_for_state(store, busy.run_id, {RUNNING})
        queued = queue.submit({"kind": "sleepy"})
        # drain=True must override wait=False and block until the worker
        # reaches a boundary; the queued run stays PENDING for --resume.
        queue.shutdown(wait=False, drain=True)
        assert store.load(busy.run_id).state == DONE
        assert store.load(queued.run_id).state == PENDING


class TestHeartbeatLifecycle:
    def test_executor_heartbeats_while_running_and_clears_on_seal(
        self, store, sleepy_kind
    ):
        from repro.service.store import HEARTBEAT_NAME

        queue = JobQueue(store, workers=1).start()
        try:
            record = queue.submit({
                "kind": "sleepy", "params": {"naps": 3, "nap_s": 0.2},
            })
            wait_for_state(store, record.run_id, {RUNNING})
            hb = store.load(record.run_id).path / HEARTBEAT_NAME
            deadline = time.monotonic() + 5.0
            while not hb.exists() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert hb.exists(), "no heartbeat while RUNNING"
            assert store.has_live_lease(store.load(record.run_id))
            wait_for_state(store, record.run_id, {DONE})
        finally:
            queue.shutdown()
        assert not hb.exists(), "heartbeat survived the seal"
