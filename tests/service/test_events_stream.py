"""Edge cases for the SSE run-event tail (``GET /api/runs/<id>/events``).

The happy path (replay + live follow of a finishing run) is covered in
test_observability.py; these tests pin down the awkward corners: a
client that hangs up mid-follow, a run cancelled under an open tail, and
a replay over a journal that does not exist yet.
"""

import http.client
import json
import threading
import time
import urllib.parse

import pytest

from repro.service import JobQueue, RunStore, ServiceServer
from repro.service.store import TELEMETRY_NAME

SWEEP_SPEC = {
    "kind": "sweep",
    "params": {"domain": "eps", "size": 2, "levels": [2e-3, 2e-6],
               "backend": "scipy", "algorithm": "mr"},
}


@pytest.fixture()
def idle_service(tmp_path):
    """A service whose queue never starts: runs stay PENDING forever."""
    store = RunStore(tmp_path / "runs")
    queue = JobQueue(store)
    server = ServiceServer(queue, port=0).start()
    yield server.url, store
    server.stop()


def submit(base, spec=SWEEP_SPEC):
    parsed = urllib.parse.urlparse(base)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                      timeout=10)
    try:
        conn.request("POST", "/api/jobs", body=json.dumps(spec),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        doc = json.loads(resp.read())
        assert resp.status == 202, doc
        return doc["run_id"]
    finally:
        conn.close()


def open_stream(base, run_id, timeout=30, sock_timeout=20.0):
    """A live (conn, response) pair tailing the run's events."""
    parsed = urllib.parse.urlparse(base)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                      timeout=sock_timeout)
    conn.request("GET", f"/api/runs/{run_id}/events?timeout={timeout}")
    resp = conn.getresponse()
    assert resp.status == 200
    assert resp.headers["Content-Type"] == "text/event-stream"
    return conn, resp


def parse_frames(raw: bytes):
    """SSE bytes -> [(event-name, parsed-data-dict)]."""
    frames = []
    for block in raw.decode("utf-8").split("\n\n"):
        if not block.strip():
            continue
        name, data = "event", None
        for line in block.splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        frames.append((name, data))
    return frames


def read_until_end(resp, deadline=20.0):
    """Drain the stream until the final ``end`` frame (or deadline)."""
    raw = b""
    until = time.monotonic() + deadline
    while time.monotonic() < until:
        chunk = resp.read(1)
        if not chunk:
            break
        raw += chunk
        if raw.endswith(b"\n\n") and b"event: end\n" in raw:
            frames = parse_frames(raw)
            if frames and frames[-1][0] == "end":
                return frames
    return parse_frames(raw)


class TestEmptyJournalReplay:
    def test_pending_run_without_journal_yields_only_end(self, idle_service):
        base, store = idle_service
        run_id = submit(base)
        # the queue never starts, so no telemetry journal exists yet
        assert not store.load(run_id).artifact(TELEMETRY_NAME).exists()
        conn, resp = open_stream(base, run_id, timeout=0)
        try:
            frames = read_until_end(resp)
        finally:
            conn.close()
        assert [name for name, _ in frames] == ["end"]
        assert frames[0][1]["run_id"] == run_id
        assert frames[0][1]["state"] == "PENDING"

    def test_replay_skips_partial_trailing_line(self, idle_service):
        base, store = idle_service
        run_id = submit(base)
        journal = store.load(run_id).artifact(TELEMETRY_NAME)
        with journal.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"ts": 1.0, "batch": run_id,
                                 "event": "batch_start"}) + "\n")
            fh.write('{"ts": 2.0, "batch": "half-wri')  # no newline
        conn, resp = open_stream(base, run_id, timeout=0)
        try:
            frames = read_until_end(resp)
        finally:
            conn.close()
        assert [name for name, _ in frames] == ["batch_start", "end"]


class TestCancelledWhileTailing:
    def test_tail_sees_cancellation_as_final_end_frame(self, idle_service):
        base, store = idle_service
        run_id = submit(base)
        journal = store.load(run_id).artifact(TELEMETRY_NAME)
        journal.write_text(
            json.dumps({"ts": 1.0, "batch": run_id,
                        "event": "batch_start"}) + "\n",
            encoding="utf-8")

        conn, resp = open_stream(base, run_id, timeout=30)
        result = {}

        def drain():
            result["frames"] = read_until_end(resp)

        reader = threading.Thread(target=drain, daemon=True)
        reader.start()
        time.sleep(0.3)  # let the tail replay and enter its follow loop

        parsed = urllib.parse.urlparse(base)
        cancel = http.client.HTTPConnection(parsed.hostname, parsed.port,
                                            timeout=10)
        try:
            cancel.request("DELETE", f"/api/jobs/{run_id}")
            assert cancel.getresponse().status == 200
        finally:
            cancel.close()

        reader.join(timeout=15)
        conn.close()
        assert not reader.is_alive(), "tail never terminated after cancel"
        frames = result["frames"]
        assert frames[0][0] == "batch_start"
        name, data = frames[-1]
        assert name == "end"
        assert data["state"] == "CANCELLED"


class TestClientDisconnect:
    def test_server_survives_client_hangup_mid_follow(self, idle_service):
        base, store = idle_service
        run_id = submit(base)
        journal = store.load(run_id).artifact(TELEMETRY_NAME)
        journal.write_text(
            json.dumps({"ts": 1.0, "batch": run_id,
                        "event": "batch_start"}) + "\n",
            encoding="utf-8")

        conn, resp = open_stream(base, run_id, timeout=30)
        resp.read(1)  # stream is live
        conn.close()  # hang up mid-follow, no farewell

        # force writes into the dead socket: the handler hits
        # BrokenPipeError on the flush and must swallow it
        with journal.open("a", encoding="utf-8") as fh:
            for i in range(3):
                fh.write(json.dumps({"ts": 2.0 + i, "batch": run_id,
                                     "event": "job_start",
                                     "job": f"j-{i}"}) + "\n")

        # the server must still answer fresh requests afterwards
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            conn2, resp2 = open_stream(base, run_id, timeout=0)
            try:
                frames = read_until_end(resp2)
            finally:
                conn2.close()
            if frames and frames[-1][0] == "end":
                break
        names = [name for name, _ in frames]
        assert names[0] == "batch_start"
        assert names.count("job_start") == 3
        assert names[-1] == "end"
