"""Tests for the report formatting helpers and the archex CLI."""

import pytest

from repro.cli import build_parser, main
from repro.report import format_scientific, format_table, section


class TestReport:
    def test_format_scientific(self):
        assert format_scientific(2e-10) == "2.00e-10"
        assert format_scientific(None) == "n/a"
        assert format_scientific(1.23456e-3, digits=4) == "1.2346e-03"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # all rows padded to equal visual width per column
        assert "333" in lines[3]

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_section(self):
        text = section("Title")
        assert "Title" in text and "=" in text


class TestCliParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize"])
        assert args.domain == "eps"
        assert args.algorithm == "mr"
        assert args.target == 2e-10

    def test_scaling_sizes_parse(self):
        args = build_parser().parse_args(["scaling", "--sizes", "20,30,40"])
        assert args.sizes == [20, 30, 40]

    def test_bad_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synthesize", "--domain", "spaceship"])


class TestCliExecution:
    def test_synthesize_comm_net(self, capsys):
        code = main(
            ["synthesize", "--domain", "comm-net", "--algorithm", "ar",
             "--target", "1e-6", "--backend", "scipy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ILP-AR" in out
        assert "GW1" in out

    def test_analyze_power_grid(self, capsys):
        code = main(
            ["analyze", "--domain", "power-grid", "--algorithm", "mr",
             "--target", "1e-4", "--backend", "scipy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "r (exact)" in out
        assert "total cost" in out

    def test_infeasible_exit_code(self, capsys):
        code = main(
            ["synthesize", "--domain", "comm-net", "--algorithm", "mr",
             "--target", "1e-30", "--backend", "scipy"]
        )
        assert code == 1


class TestCliTradeoffAndSave:
    def test_tradeoff_comm_net(self, capsys):
        code = main(
            ["tradeoff", "--domain", "comm-net", "--levels", "1e-3,1e-6",
             "--backend", "scipy"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Pareto front" in out

    def test_save_arch(self, tmp_path, capsys):
        target = tmp_path / "design.json"
        code = main(
            ["synthesize", "--domain", "comm-net", "--algorithm", "ar",
             "--target", "1e-6", "--backend", "scipy",
             "--save-arch", str(target)]
        )
        assert code == 0
        assert target.exists()
        from repro.arch import Architecture, load_json

        arch = load_json(target)
        assert isinstance(arch, Architecture)


class TestCliScaling:
    def test_scaling_small(self, capsys):
        code = main(
            ["scaling", "--sizes", "10", "--target", "1e-3",
             "--backend", "scipy", "--algorithm", "ar"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "10 (2)" in out


class TestCliProfile:
    ARGS = ["synthesize", "--domain", "comm-net", "--algorithm", "mr",
            "--target", "1e-3", "--backend", "scipy"]

    def test_trace_flag_prints_profile(self, capsys):
        code = main(self.ARGS + ["--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile" in out
        assert "ilp_mr" in out and "ilp_mr.solve" in out
        assert "% total" in out
        # Metrics table rides along (analysis call counters at minimum).
        assert "reliability.analysis.bdd.calls" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        code = main(self.ARGS + ["--trace-out", str(trace)])
        assert code == 0
        doc = json.loads(trace.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "ilp_mr" in names and "ilp_mr.iteration" in names
        assert doc["otherData"]["metrics"]

    def test_profile_subcommand_wraps_inner_command(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        code = main(["profile", "--trace-out", str(trace), "--top", "5",
                     "--"] + self.ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "profile" in out and "ilp_mr" in out
        assert json.loads(trace.read_text())["traceEvents"]

    def test_profile_jsonl_trace_out(self, tmp_path, capsys):
        from repro.engine import read_events

        trace = tmp_path / "spans.jsonl"
        code = main(["profile", "--trace-out", str(trace)] + self.ARGS)
        assert code == 0
        events = read_events(trace)
        assert {e["event"] for e in events} == {"span_start", "span_end"}

    def test_profile_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            main(["profile"])

    def test_profile_cannot_nest(self):
        with pytest.raises(SystemExit):
            main(["profile", "profile", "synthesize"])

    def test_tracing_disabled_after_run(self, capsys):
        from repro import obs

        assert main(self.ARGS + ["--trace"]) == 0
        capsys.readouterr()
        assert not obs.enabled()


class TestModuleEntryPoint:
    def test_python_dash_m_repro_help(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "synthesize" in proc.stdout
        assert "tradeoff" in proc.stdout


class TestRunsCli:
    """`repro runs ls|show|verify|gc` against a real store."""

    @pytest.fixture()
    def seeded_store(self, tmp_path):
        from repro.service import DONE, RunStore, pack_evidence

        store = RunStore(tmp_path / "runs")
        record = store.create(
            {"kind": "sweep", "params": {"size": 2, "levels": [2e-3]}}
        )
        store.transition(record, "RUNNING")
        store.transition(record, DONE)
        (record.path / "result.json").write_text('{"results": []}\n')
        pack_evidence(record.path, run_id=record.run_id)
        return store, record

    def test_runs_ls(self, seeded_store, capsys):
        store, record = seeded_store
        assert main(["runs", "ls", "--runs-dir", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert record.run_id in out
        assert "DONE" in out

    def test_runs_ls_json(self, seeded_store, capsys):
        import json

        store, record = seeded_store
        assert main(
            ["runs", "ls", "--json", "--runs-dir", str(store.root)]
        ) == 0
        docs = json.loads(capsys.readouterr().out)
        assert [d["run_id"] for d in docs] == [record.run_id]
        assert docs[0]["state"] == "DONE"

    def test_runs_ls_empty(self, tmp_path, capsys):
        assert main(["runs", "ls", "--runs-dir", str(tmp_path / "x")]) == 0
        assert "(no runs)" in capsys.readouterr().out

    def test_runs_show(self, seeded_store, capsys):
        store, record = seeded_store
        assert main(
            ["runs", "show", record.run_id, "--runs-dir", str(store.root)]
        ) == 0
        doc = capsys.readouterr().out
        assert '"spec"' in doc and record.run_id in doc

    def test_runs_show_unknown_exits(self, seeded_store):
        store, _ = seeded_store
        with pytest.raises(SystemExit):
            main(["runs", "show", "ghost", "--runs-dir", str(store.root)])

    def test_runs_verify_clean_then_tampered(self, seeded_store, capsys):
        store, record = seeded_store
        assert main(
            ["runs", "verify", "--runs-dir", str(store.root)]
        ) == 0
        assert "OK" in capsys.readouterr().out
        (record.path / "result.json").write_text('{"results": [666]}\n')
        assert main(
            ["runs", "verify", "--runs-dir", str(store.root)]
        ) == 1
        assert "TAMPERED" in capsys.readouterr().out

    def test_runs_gc(self, seeded_store, capsys):
        store, record = seeded_store
        assert main(
            ["runs", "gc", "--keep", "0", "--runs-dir", str(store.root)]
        ) == 0
        assert record.run_id not in store

    def test_render_runs_table_shapes(self):
        from repro.report import render_runs_table

        text = render_runs_table([{
            "run_id": "sweep-x", "kind": "sweep", "state": "DONE",
            "progress": {"done": 2, "failed": 1, "skipped": 1, "total": 4},
            "attempt": 2, "started_at": 10.0, "finished_at": 12.5,
            "spec_digest": "abcdef0123456789",
        }])
        assert "sweep-x" in text
        assert "2/4 (1 failed) +1 skip" in text
        assert "2.5" in text
        assert "abcdef012345" in text


class TestServeCli:
    def test_serve_max_runtime_and_port_file(self, tmp_path, capsys):
        port_file = tmp_path / "port"
        code = main([
            "serve", "--port", "0",
            "--port-file", str(port_file),
            "--runs-dir", str(tmp_path / "runs"),
            "--max-runtime", "0.4",
        ])
        assert code == 0
        port = int(port_file.read_text().strip())
        assert port > 0
        out = capsys.readouterr().out
        assert f":{port}" in out  # the printed URL is connectable
