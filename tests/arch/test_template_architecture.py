"""Tests for templates and concrete architectures (eq. 1 cost semantics,
same-type shorthand expansion, pruning)."""

import networkx as nx
import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role


@pytest.fixture
def small_template():
    lib = Library(switch_cost=10.0)
    lib.add(ComponentSpec("G1", "gen", cost=100, capacity=50, role=Role.SOURCE,
                          failure_prob=1e-3))
    lib.add(ComponentSpec("G2", "gen", cost=100, capacity=50, role=Role.SOURCE,
                          failure_prob=1e-3))
    lib.add(ComponentSpec("B1", "bus", cost=200, failure_prob=1e-3))
    lib.add(ComponentSpec("B2", "bus", cost=200, failure_prob=1e-3))
    lib.add(ComponentSpec("L1", "load", cost=0, demand=30, role=Role.SINK))
    lib.set_type_order(["gen", "bus", "load"])
    t = ArchitectureTemplate(lib, ["G1", "G2", "B1", "B2", "L1"], name="small")
    t.allow_edge("G1", "B1")
    t.allow_edge("G2", "B2")
    t.allow_edge("G1", "B2")
    t.allow_bidirectional("B1", "B2")
    t.allow_edge("B1", "L1")
    t.allow_edge("B2", "L1")
    return t


class TestTemplate:
    def test_shape(self, small_template):
        t = small_template
        assert t.num_nodes == 5
        assert t.num_types == 3
        assert t.type_order == ["gen", "bus", "load"]

    def test_indexing(self, small_template):
        t = small_template
        assert t.name_of(t.index_of("B2")) == "B2"
        assert t.type_of(t.index_of("G1")) == "gen"
        assert t.type_layer("bus") == 2

    def test_partition(self, small_template):
        part = small_template.partition()
        assert sorted(part) == ["bus", "gen", "load"]
        assert len(part["gen"]) == 2

    def test_sources_and_sinks(self, small_template):
        t = small_template
        assert [t.name_of(i) for i in t.source_indices()] == ["G1", "G2"]
        assert [t.name_of(i) for i in t.sink_indices()] == ["L1"]

    def test_self_loop_rejected(self, small_template):
        with pytest.raises(ValueError):
            small_template.allow_edge("B1", "B1")

    def test_nodes_must_be_distinct(self, small_template):
        with pytest.raises(ValueError):
            ArchitectureTemplate(small_template.library, ["G1", "G1"])

    def test_undirected_pairs_deduplicate(self, small_template):
        pairs = small_template.undirected_pairs()
        b1, b2 = (small_template.index_of(n) for n in ("B1", "B2"))
        assert (min(b1, b2), max(b1, b2)) in pairs
        # bidirectional pair appears once
        assert len([p for p in pairs if set(p) == {b1, b2}]) == 1

    def test_neighbors(self, small_template):
        t = small_template
        l1 = t.index_of("L1")
        preds = {t.name_of(i) for i in t.predecessors_allowed(l1)}
        assert preds == {"B1", "B2"}
        g1 = t.index_of("G1")
        succs = {t.name_of(j) for j in t.successors_allowed(g1)}
        assert succs == {"B1", "B2"}

    def test_adjacency_allowed(self, small_template):
        adj = small_template.adjacency_allowed()
        t = small_template
        assert adj[t.index_of("G1"), t.index_of("B1")]
        assert not adj[t.index_of("B1"), t.index_of("G1")]


class TestArchitecture:
    def _arch(self, t, names):
        edges = [(t.index_of(a), t.index_of(b)) for a, b in names]
        return Architecture(t, edges)

    def test_disallowed_edge_rejected(self, small_template):
        t = small_template
        with pytest.raises(ValueError):
            Architecture(t, [(t.index_of("B1"), t.index_of("G1"))])

    def test_used_nodes_and_pruning(self, small_template):
        arch = self._arch(small_template, [("G1", "B1"), ("B1", "L1")])
        used = {small_template.name_of(i) for i in arch.used_nodes()}
        assert used == {"G1", "B1", "L1"}
        assert not arch.is_used(small_template.index_of("G2"))

    def test_cost_counts_components_and_switches_once(self, small_template):
        # G1->B1, B1<->B2 (one switch), B1->L1
        arch = self._arch(
            small_template, [("G1", "B1"), ("B1", "B2"), ("B2", "B1"), ("B1", "L1")]
        )
        # components: G1(100) + B1(200) + B2(200) + L1(0) = 500
        # switches: 3 undirected pairs * 10 = 30
        assert arch.cost() == pytest.approx(530.0)
        assert arch.num_switches() == 3

    def test_adjacency_matrix(self, small_template):
        arch = self._arch(small_template, [("G1", "B1")])
        adj = arch.adjacency()
        t = small_template
        assert adj[t.index_of("G1"), t.index_of("B1")]
        assert adj.sum() == 1

    def test_graph_view(self, small_template):
        arch = self._arch(small_template, [("G1", "B1"), ("B1", "L1")])
        g = arch.graph()
        assert set(g.nodes) == {"G1", "B1", "L1"}
        assert g.nodes["G1"]["ctype"] == "gen"
        assert g.nodes["B1"]["p"] == 1e-3

    def test_expanded_graph_shares_predecessors(self, small_template):
        # B1 <-> B2 tie: G1 (pred of B1) must become pred of B2 as well.
        arch = self._arch(
            small_template,
            [("G1", "B1"), ("B1", "B2"), ("B2", "B1"), ("B2", "L1")],
        )
        ex = arch.expanded_graph()
        assert ex.has_edge("G1", "B1")
        assert ex.has_edge("G1", "B2")
        assert not ex.has_edge("B1", "B2")  # sibling edge resolved away
        # L1 is fed by B2 only: B1 gained no successor via the tie.
        assert list(ex.predecessors("L1")) == ["B2"]

    def test_expanded_graph_chain_of_ties(self, small_template):
        # Tie both directions via a single directed sibling edge still groups.
        arch = self._arch(
            small_template, [("G1", "B1"), ("B1", "B2"), ("B2", "L1")]
        )
        ex = arch.expanded_graph()
        assert ex.has_edge("G1", "B2")

    def test_with_edges_extends(self, small_template):
        t = small_template
        arch = self._arch(t, [("G1", "B1")])
        arch2 = arch.with_edges([(t.index_of("B1"), t.index_of("L1"))])
        assert len(arch2.edges) == 2
        assert len(arch.edges) == 1  # original untouched

    def test_source_and_sink_names(self, small_template):
        arch = self._arch(small_template, [("G1", "B1"), ("B1", "L1")])
        assert arch.source_names() == ["G1"]
        assert arch.sink_names() == ["L1"]

    def test_equality_and_hash(self, small_template):
        a = self._arch(small_template, [("G1", "B1")])
        b = self._arch(small_template, [("G1", "B1")])
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_nodes(self, small_template):
        arch = self._arch(small_template, [("G1", "B1"), ("B1", "L1")])
        text = arch.describe()
        assert "G1" in text and "->" in text
