"""Round-trip tests for JSON serialization."""

import json

import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.arch.serialization import (
    architecture_from_dict,
    architecture_to_dict,
    library_from_dict,
    library_to_dict,
    load_json,
    save_json,
    template_from_dict,
    template_to_dict,
)
from repro.eps import paper_template
from repro.reliability import failure_probability, problem_from_architecture
from repro.synthesis import synthesize_ilp_ar
from repro.eps import eps_spec


def small_template():
    lib = Library(switch_cost=3.0)
    lib.add(ComponentSpec("S", "src", cost=5, capacity=10, failure_prob=0.01,
                          role=Role.SOURCE))
    lib.add(ComponentSpec("M", "mid", cost=2, failure_prob=0.02))
    lib.add(ComponentSpec("T", "snk", demand=5, role=Role.SINK))
    lib.set_type_order(["src", "mid", "snk"])
    t = ArchitectureTemplate(lib, ["S", "M", "T"], name="tiny")
    t.allow_edge("S", "M", switch_cost=7.0)
    t.allow_edge("M", "T", failure_prob=0.05)
    return t


class TestLibraryRoundTrip:
    def test_attributes_preserved(self):
        lib = small_template().library
        clone = library_from_dict(library_to_dict(lib))
        assert len(clone) == len(lib)
        assert clone.switch_cost == lib.switch_cost
        assert clone.type_order == lib.type_order
        for spec in lib:
            other = clone[spec.name]
            assert other == spec

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            library_from_dict({"kind": "template", "components": []})


class TestTemplateRoundTrip:
    def test_structure_preserved(self):
        t = small_template()
        clone = template_from_dict(template_to_dict(t))
        assert clone.name == t.name
        assert clone.num_nodes == t.num_nodes
        assert clone.allowed_edges == t.allowed_edges
        assert clone.switch_cost(0, 1) == 7.0
        assert clone.edge_failure_prob(1, 2) == 0.05
        assert clone.type_order == t.type_order

    def test_orbits_preserved(self):
        t = paper_template()
        clone = template_from_dict(template_to_dict(t))
        assert clone.interchangeable_groups == t.interchangeable_groups

    def test_paper_template_round_trip_is_json_stable(self):
        t = paper_template()
        once = json.dumps(template_to_dict(t), sort_keys=True)
        twice = json.dumps(
            template_to_dict(template_from_dict(template_to_dict(t))),
            sort_keys=True,
        )
        assert once == twice

    def test_newer_version_rejected(self):
        data = template_to_dict(small_template())
        data["version"] = 999
        with pytest.raises(ValueError, match="newer"):
            template_from_dict(data)


class TestArchitectureRoundTrip:
    def test_edges_and_cost_preserved(self):
        t = small_template()
        arch = Architecture(t, [(0, 1), (1, 2)])
        clone = architecture_from_dict(architecture_to_dict(arch))
        assert {tuple(sorted(e)) for e in clone.edges} == {
            tuple(sorted(e)) for e in arch.edges
        }
        assert clone.cost() == pytest.approx(arch.cost())

    def test_reliability_identical_after_round_trip(self):
        t = small_template()
        arch = Architecture(t, [(0, 1), (1, 2)])
        clone = architecture_from_dict(architecture_to_dict(arch))
        r1 = failure_probability(problem_from_architecture(arch, "T"))
        r2 = failure_probability(problem_from_architecture(clone, "T"))
        assert r1 == pytest.approx(r2, rel=1e-12)

    def test_synthesized_architecture_round_trip(self, tmp_path):
        spec = eps_spec(paper_template(), reliability_target=2e-3)
        res = synthesize_ilp_ar(spec, backend="scipy")
        path = tmp_path / "arch.json"
        save_json(res.architecture, path)
        clone = load_json(path)
        assert isinstance(clone, Architecture)
        assert clone.cost() == pytest.approx(res.cost)


class TestFileIO:
    def test_save_load_template(self, tmp_path):
        t = small_template()
        path = tmp_path / "template.json"
        save_json(t, path)
        clone = load_json(path)
        assert isinstance(clone, ArchitectureTemplate)
        assert clone.allowed_edges == t.allowed_edges

    def test_save_load_library(self, tmp_path):
        lib = small_template().library
        path = tmp_path / "lib.json"
        save_json(lib, path)
        clone = load_json(path)
        assert isinstance(clone, Library)
        assert len(clone) == len(lib)

    def test_save_unknown_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_json({"not": "serializable"}, tmp_path / "x.json")

    def test_load_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "spaceship"}')
        with pytest.raises(ValueError, match="kind"):
            load_json(path)
