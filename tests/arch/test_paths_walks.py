"""Tests for path enumeration, reduced paths, functional links, and the
walk indicator matrices of Lemma 1 (concrete and symbolic)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    ArchitectureTemplate,
    ComponentSpec,
    Library,
    ReachabilityEncoder,
    Role,
    enumerate_paths,
    functional_link,
    logical_power,
    reduce_path,
    walk_indicator,
)
from repro.ilp import Model, lin_sum


def _diamond():
    g = nx.DiGraph()
    for n, t in [("S", "src"), ("A", "mid"), ("B", "mid"), ("T", "snk")]:
        g.add_node(n, ctype=t)
    g.add_edges_from([("S", "A"), ("S", "B"), ("A", "T"), ("B", "T")])
    return g


class TestEnumeratePaths:
    def test_diamond_two_paths(self):
        paths = enumerate_paths(_diamond(), ["S"], "T")
        assert paths == [("S", "A", "T"), ("S", "B", "T")]

    def test_missing_sink(self):
        assert enumerate_paths(_diamond(), ["S"], "X") == []

    def test_source_equals_sink(self):
        paths = enumerate_paths(_diamond(), ["T"], "T")
        assert paths == [("T",)]

    def test_cutoff_truncates(self):
        g = nx.DiGraph()
        g.add_edges_from([("S", "A"), ("A", "T"), ("S", "T")])
        for n in g.nodes:
            g.nodes[n]["ctype"] = n
        assert len(enumerate_paths(g, ["S"], "T", cutoff=1)) == 1
        assert len(enumerate_paths(g, ["S"], "T")) == 2


class TestReducePath:
    def test_adjacent_same_type_collapse(self):
        types = {"a": "x", "b": "y", "c": "y", "d": "z"}
        assert reduce_path(("a", "b", "c", "d"), types) == ("a", "b", "d")

    def test_non_adjacent_same_type_kept(self):
        types = {"a": "x", "b": "y", "c": "x"}
        assert reduce_path(("a", "b", "c"), types) == ("a", "b", "c")

    def test_run_of_three(self):
        types = {n: "y" for n in "abc"}
        types["s"] = "x"
        assert reduce_path(("s", "a", "b", "c"), types) == ("s", "a")


class TestFunctionalLink:
    def test_diamond_profile(self):
        link = functional_link(_diamond(), ["S"], "T")
        assert link.num_paths == 2
        assert link.jointly_implementing_types() == ["mid", "snk", "src"]
        assert link.degree_of_redundancy("mid") == 2
        assert link.degree_of_redundancy("src") == 1
        assert link.redundancy_profile()["snk"] == 1

    def test_disconnected_link(self):
        g = _diamond()
        g.remove_node("S")
        g.add_node("S", ctype="src")
        link = functional_link(g, ["S"], "T")
        assert not link.is_connected()
        assert link.jointly_implementing_types() == []

    def test_type_not_on_every_path_excluded(self):
        g = _diamond()
        # Add a direct S->T path: 'mid' no longer jointly implements.
        g.add_edge("S", "T")
        link = functional_link(g, ["S"], "T")
        assert "mid" not in link.jointly_implementing_types()
        assert link.num_paths == 3


class TestWalkIndicatorConcrete:
    def test_matches_networkx_reachability(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = 6
            adj = rng.random((n, n)) < 0.3
            np.fill_diagonal(adj, False)
            eta = walk_indicator(adj, n)
            g = nx.from_numpy_array(adj, create_using=nx.DiGraph)
            for i in range(n):
                # nx.descendants never includes the start node; eta[i, i]
                # additionally flags cycles through i — compare off-diagonal.
                reachable = nx.descendants(g, i) - {i}
                assert {j for j in range(n) if eta[i, j] and j != i} == reachable

    def test_length_limit(self):
        # chain 0->1->2: length-1 walks reach only direct successors
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 2] = True
        eta1 = walk_indicator(adj, 1)
        assert eta1[0, 1] and not eta1[0, 2]
        eta2 = walk_indicator(adj, 2)
        assert eta2[0, 2]

    def test_logical_power(self):
        adj = np.zeros((3, 3), dtype=bool)
        adj[0, 1] = adj[1, 2] = True
        p2 = logical_power(adj, 2)
        assert p2[0, 2] and not p2[0, 1]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            walk_indicator(np.zeros((2, 2), dtype=bool), 0)
        with pytest.raises(ValueError):
            logical_power(np.zeros((2, 2), dtype=bool), 0)


def _layered_template():
    lib = Library(switch_cost=1.0)
    for i in (1, 2):
        lib.add(ComponentSpec(f"S{i}", "src", role=Role.SOURCE))
    for i in (1, 2):
        lib.add(ComponentSpec(f"M{i}", "mid"))
    lib.add(ComponentSpec("T1", "snk", role=Role.SINK))
    lib.set_type_order(["src", "mid", "snk"])
    t = ArchitectureTemplate(lib, ["S1", "S2", "M1", "M2", "T1"])
    for s in ("S1", "S2"):
        for m in ("M1", "M2"):
            t.allow_edge(s, m)
    t.allow_edge("M1", "T1")
    t.allow_edge("M2", "T1")
    t.allow_bidirectional("M1", "M2")
    return t


class TestReachabilityEncoder:
    def _setup(self):
        t = _layered_template()
        m = Model()
        edge = {e: m.add_binary(f"e{e}") for e in t.allowed_edges}
        enc = ReachabilityEncoder(m, t, edge)
        return t, m, edge, enc

    def _check_reach(self, chosen_edges, expect_reach):
        """Fix an edge assignment; reach vars must equal true reachability."""
        t, m, edge, enc = self._setup()
        sink = t.index_of("T1")
        reach = enc.reach_to(sink, max_len=3)
        for e, var in edge.items():
            m.add_constr(var == (1 if e in chosen_edges else 0))
        m.minimize(0)
        res = m.solve(backend="scipy")
        assert res.is_optimal
        for name, expected in expect_reach.items():
            var = reach[t.index_of(name)]
            if var is None:
                assert not expected, f"{name}: template claims unreachable"
            else:
                assert round(res[var]) == int(expected), name

    def test_reach_vars_track_configuration(self):
        t = _layered_template()
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        self._check_reach(
            {e("S1", "M1"), e("M1", "T1")},
            {"S1": True, "S2": False, "M1": True, "M2": False},
        )

    def test_cross_type_only_ignores_sibling_hops(self):
        t = _layered_template()
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        # M2 tied to M1, M1 feeds T1: with cross-type-only walks M2 does NOT
        # count as reaching T1 (the tie is predecessor-sharing shorthand).
        self._check_reach(
            {e("S1", "M1"), e("M1", "T1"), e("M2", "M1"), e("M1", "M2")},
            {"M1": True, "M2": False},
        )

    def test_reach_from_sources(self):
        t, m, edge, enc = self._setup()
        from_src = enc.reach_from_sources(max_len=3)
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        chosen = {e("S2", "M2"), e("M2", "T1")}
        for ed, var in edge.items():
            m.add_constr(var == (1 if ed in chosen else 0))
        m.minimize(0)
        res = m.solve(backend="scipy")
        assert round(res[from_src[t.index_of("M2")]]) == 1
        assert round(res[from_src[t.index_of("M1")]]) == 0
        assert round(res[from_src[t.index_of("T1")]]) == 1

    def test_memoization_reuses_vars(self):
        t, m, edge, enc = self._setup()
        sink = t.index_of("T1")
        before = m.num_vars
        r1 = enc.reach_to(sink, 3)
        mid = m.num_vars
        r2 = enc.reach_to(sink, 3)
        assert m.num_vars == mid > before
        assert r1 is r2

    def test_constraint_count_forces_redundancy(self):
        # Requiring two mids connected to T1 forces both direct edges.
        t, m, edge, enc = self._setup()
        sink = t.index_of("T1")
        reach = enc.reach_to(sink, 2)
        mids = [t.index_of(n) for n in ("M1", "M2")]
        m.add_constr(lin_sum(reach[w] for w in mids) >= 2)
        m.minimize(lin_sum(edge.values()))
        res = m.solve(backend="scipy")
        assert res.is_optimal
        assert round(res[edge[(t.index_of("M1"), sink)]]) == 1
        assert round(res[edge[(t.index_of("M2"), sink)]]) == 1
