"""Unit tests for component libraries."""

import pytest

from repro.arch import ComponentSpec, Library, Role


def spec(name, ctype="t", **kw):
    return ComponentSpec(name=name, ctype=ctype, **kw)


class TestComponentSpec:
    def test_defaults(self):
        s = spec("a")
        assert s.cost == 0.0
        assert s.failure_prob == 0.0
        assert s.role == Role.INTERMEDIATE

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            spec("a", failure_prob=1.5)

    def test_negative_cost(self):
        with pytest.raises(ValueError):
            spec("a", cost=-1)

    def test_with_updates(self):
        s = spec("a", cost=5.0)
        s2 = s.with_updates(cost=7.0)
        assert s2.cost == 7.0 and s.cost == 5.0
        assert s2.name == "a"

    def test_frozen(self):
        s = spec("a")
        with pytest.raises(Exception):
            s.cost = 3.0


class TestLibrary:
    def test_add_and_lookup(self):
        lib = Library()
        s = lib.add(spec("g1", "gen", capacity=70, role=Role.SOURCE))
        assert lib["g1"] is s
        assert "g1" in lib
        assert len(lib) == 1

    def test_duplicate_rejected(self):
        lib = Library()
        lib.add(spec("a"))
        with pytest.raises(ValueError):
            lib.add(spec("a"))

    def test_type_order_tracks_insertion(self):
        lib = Library()
        lib.add(spec("g", "gen"))
        lib.add(spec("b", "bus"))
        lib.add(spec("g2", "gen"))
        assert lib.type_order == ["gen", "bus"]

    def test_set_type_order_validates(self):
        lib = Library()
        lib.add(spec("g", "gen"))
        lib.add(spec("b", "bus"))
        with pytest.raises(ValueError):
            lib.set_type_order(["gen"])  # missing 'bus'
        lib.set_type_order(["bus", "gen"])
        assert lib.type_order == ["bus", "gen"]

    def test_of_type(self):
        lib = Library()
        lib.add(spec("a", "x"))
        lib.add(spec("b", "y"))
        lib.add(spec("c", "x"))
        assert {s.name for s in lib.of_type("x")} == {"a", "c"}

    def test_type_failure_prob_is_max(self):
        lib = Library()
        lib.add(spec("a", "x", failure_prob=1e-4))
        lib.add(spec("b", "x", failure_prob=3e-4))
        assert lib.type_failure_prob("x") == 3e-4

    def test_type_failure_prob_unknown_type(self):
        lib = Library()
        with pytest.raises(KeyError):
            lib.type_failure_prob("nope")

    def test_sources_sinks_and_demand(self):
        lib = Library()
        lib.add(spec("g", "gen", role=Role.SOURCE, capacity=50))
        lib.add(spec("l1", "load", role=Role.SINK, demand=20))
        lib.add(spec("l2", "load", role=Role.SINK, demand=10))
        assert [s.name for s in lib.sources()] == ["g"]
        assert {s.name for s in lib.sinks()} == {"l1", "l2"}
        assert lib.total_demand() == 30
