"""Property test: the symbolic walk-indicator encoder agrees with concrete
cross-type reachability on random layered templates and configurations.

This is the correctness heart of eq. 6 (learned path constraints) and
eq. 11 (ILP-AR counting): for any configuration, the auxiliary variables
must be *forced* to the true reachability values — not merely allowed to
take them.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ArchitectureTemplate, ComponentSpec, Library, ReachabilityEncoder, Role
from repro.ilp import Model


@st.composite
def layered_template_and_config(draw):
    """3-layer template (src/mid/snk) with random allowed edges, random ties
    and a random configuration subset."""
    n_src = draw(st.integers(1, 2))
    n_mid = draw(st.integers(1, 3))
    lib = Library(switch_cost=1.0)
    for i in range(n_src):
        lib.add(ComponentSpec(f"S{i}", "src", role=Role.SOURCE))
    for i in range(n_mid):
        lib.add(ComponentSpec(f"M{i}", "mid"))
    lib.add(ComponentSpec("T", "snk", role=Role.SINK))
    lib.set_type_order(["src", "mid", "snk"])
    names = [f"S{i}" for i in range(n_src)] + [f"M{i}" for i in range(n_mid)] + ["T"]
    t = ArchitectureTemplate(lib, names)

    allowed = []
    for i in range(n_src):
        for j in range(n_mid):
            if draw(st.booleans()):
                allowed.append((f"S{i}", f"M{j}"))
    for j in range(n_mid):
        if draw(st.booleans()):
            allowed.append((f"M{j}", "T"))
    for a in range(n_mid):
        for b in range(n_mid):
            if a != b and draw(st.booleans()):
                allowed.append((f"M{a}", f"M{b}"))  # same-type tie edges
    for (u, v) in allowed:
        t.allow_edge(u, v)

    config = [e for e in allowed if draw(st.booleans())]
    return t, config


@given(layered_template_and_config())
@settings(max_examples=40, deadline=None)
def test_symbolic_reach_matches_concrete(case):
    t, config = case
    m = Model()
    edge_vars = {e: m.add_binary(f"e{e}") for e in t.allowed_edges}
    enc = ReachabilityEncoder(m, t, edge_vars)  # cross-type only (default)
    sink = t.index_of("T")
    max_len = 3
    reach = enc.reach_to(sink, max_len)
    from_src = enc.reach_from_sources(max_len)

    # Pin the configuration.
    active = {(t.index_of(a), t.index_of(b)) for (a, b) in config}
    for e, var in edge_vars.items():
        m.add_constr(var == (1 if e in active else 0))
    m.minimize(0)
    res = m.solve(backend="scipy")
    assert res.is_optimal

    # Ground truth: cross-type edges only.
    g = nx.DiGraph()
    g.add_nodes_from(range(t.num_nodes))
    for (i, j) in active:
        if t.type_of(i) != t.type_of(j):
            g.add_edge(i, j)

    sources = set(t.source_indices())
    for w in range(t.num_nodes):
        if w != sink:
            truth = nx.has_path(g, w, sink) and w != sink and any(
                len(p) <= max_len + 1
                for p in nx.all_simple_paths(g, w, sink, cutoff=max_len)
            ) if nx.has_path(g, w, sink) else False
            var = reach.get(w)
            model_value = bool(round(res[var])) if var is not None else False
            assert model_value == truth, f"reach_to[{t.name_of(w)}]"
        if w not in sources:
            truth_src = any(
                s in g and nx.has_path(g, s, w) and any(
                    len(p) <= max_len + 1
                    for p in nx.all_simple_paths(g, s, w, cutoff=max_len)
                )
                for s in sources
            )
            var = from_src.get(w)
            model_value = bool(round(res[var])) if var is not None else False
            assert model_value == truth_src, f"from_src[{t.name_of(w)}]"
