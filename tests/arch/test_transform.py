"""Tests for template refinement (§IV-B second selection step)."""

import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.arch.transform import (
    add_redundant_instance,
    merge_serial_instances,
    refine_architecture,
)
from repro.reliability import failure_probability, problem_from_architecture


def base_template():
    lib = Library(switch_cost=5.0)
    lib.add(ComponentSpec("S", "src", cost=10, capacity=50, failure_prob=0.01,
                          role=Role.SOURCE))
    lib.add(ComponentSpec("B", "bus", cost=20, failure_prob=0.02))
    lib.add(ComponentSpec("T", "snk", demand=30, role=Role.SINK))
    lib.set_type_order(["src", "bus", "snk"])
    t = ArchitectureTemplate(lib, ["S", "B", "T"])
    t.allow_edge("S", "B", switch_cost=3.0)
    t.allow_edge("B", "T")
    return t


class TestAddRedundantInstance:
    def test_clone_inherits_attributes_and_edges(self):
        refined = add_redundant_instance(base_template(), "B")
        clone_idx = refined.index_of("B'")
        assert refined.spec(clone_idx).cost == 20
        assert refined.spec(clone_idx).ctype == "bus"
        s, t_idx = refined.index_of("S"), refined.index_of("T")
        assert refined.is_allowed(s, clone_idx)
        assert refined.is_allowed(clone_idx, t_idx)
        # switch cost inherited
        assert refined.switch_cost(s, clone_idx) == 3.0

    def test_tie_edge_allowed(self):
        refined = add_redundant_instance(base_template(), "B")
        b, clone = refined.index_of("B"), refined.index_of("B'")
        assert refined.is_allowed(b, clone) and refined.is_allowed(clone, b)

    def test_no_tie_option(self):
        refined = add_redundant_instance(base_template(), "B", tie=False)
        b, clone = refined.index_of("B"), refined.index_of("B'")
        assert not refined.is_allowed(b, clone)

    def test_clone_name_collision_rejected(self):
        with pytest.raises(ValueError):
            add_redundant_instance(base_template(), "B", clone_name="S")

    def test_original_template_untouched(self):
        t = base_template()
        add_redundant_instance(t, "B")
        assert t.num_nodes == 3

    def test_orbit_declared_for_pair(self):
        refined = add_redundant_instance(base_template(), "B")
        assert ["B", "B'"] in refined.interchangeable_groups

    def test_existing_orbit_extended(self):
        t = base_template()
        refined1 = add_redundant_instance(t, "B")
        refined2 = add_redundant_instance(refined1, "B", clone_name="B2")
        groups = [set(g) for g in refined2.interchangeable_groups]
        assert {"B", "B'", "B2"} in groups


class TestRefineArchitecture:
    def test_clone_mirrors_active_edges(self):
        t = base_template()
        arch = Architecture(t, [(0, 1), (1, 2)])
        refined = refine_architecture(arch, "B")
        rt = refined.template
        assert (rt.index_of("S"), rt.index_of("B'")) in refined.edges
        assert (rt.index_of("B'"), rt.index_of("T")) in refined.edges

    def test_refinement_improves_reliability(self):
        t = base_template()
        arch = Architecture(t, [(0, 1), (1, 2)])
        refined = refine_architecture(arch, "B")
        r_before = failure_probability(problem_from_architecture(arch, "T"))
        r_after = failure_probability(problem_from_architecture(refined, "T"))
        assert r_after < r_before

    def test_refinement_costs_more(self):
        t = base_template()
        arch = Architecture(t, [(0, 1), (1, 2)])
        refined = refine_architecture(arch, "B")
        assert refined.cost() > arch.cost()


class TestMergeSerialInstances:
    def test_serial_pair_collapsed(self):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("S", "src", role=Role.SOURCE))
        lib.add(ComponentSpec("B1", "bus"))
        lib.add(ComponentSpec("B2", "bus"))
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        lib.set_type_order(["src", "bus", "snk"])
        t = ArchitectureTemplate(lib, ["S", "B1", "B2", "T"])
        t.allow_edge("S", "B1")
        t.allow_edge("B1", "B2")  # serial same-type chain
        t.allow_edge("B1", "T")
        t.allow_edge("B2", "T")
        merged = merge_serial_instances(t)
        names = [merged.name_of(i) for i in range(merged.num_nodes)]
        assert "B2" not in names
        assert merged.num_nodes == 3

    def test_non_mergeable_pair_kept(self):
        # B2 has an extra exterior predecessor B1 lacks: cannot merge.
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("S1", "src", role=Role.SOURCE))
        lib.add(ComponentSpec("S2", "src", role=Role.SOURCE))
        lib.add(ComponentSpec("B1", "bus"))
        lib.add(ComponentSpec("B2", "bus"))
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        lib.set_type_order(["src", "bus", "snk"])
        t = ArchitectureTemplate(lib, ["S1", "S2", "B1", "B2", "T"])
        t.allow_edge("S1", "B1")
        t.allow_edge("S2", "B2")  # exterior pred only B2 has
        t.allow_edge("B1", "B2")
        t.allow_edge("B2", "T")
        merged = merge_serial_instances(t)
        assert merged.num_nodes == 5  # untouched

    def test_no_same_type_edges_noop(self):
        t = base_template()
        merged = merge_serial_instances(t)
        assert merged.num_nodes == t.num_nodes
