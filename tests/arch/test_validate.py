"""Tests for template validation."""

import pytest

from repro.arch import ArchitectureTemplate, ComponentSpec, Library, Role
from repro.arch.validate import TemplateValidationError, assert_valid, validate_template
from repro.eps import build_eps_template, paper_template


def _lib():
    lib = Library(switch_cost=1.0)
    lib.add(ComponentSpec("S", "src", capacity=100, role=Role.SOURCE))
    lib.add(ComponentSpec("M", "mid"))
    lib.add(ComponentSpec("T", "snk", demand=50, role=Role.SINK))
    lib.set_type_order(["src", "mid", "snk"])
    return lib


class TestValidateTemplate:
    def test_clean_template(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        t.allow_edge("S", "M")
        t.allow_edge("M", "T")
        assert validate_template(t) == []
        assert_valid(t)  # no raise

    def test_eps_templates_are_clean(self):
        assert validate_template(paper_template()) == []
        assert validate_template(build_eps_template(6)) == []

    def test_unreachable_sink_detected(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        t.allow_edge("S", "M")  # no edge into T
        findings = validate_template(t)
        assert any("unreachable" in f for f in findings)

    def test_no_sources(self):
        lib = Library()
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        t = ArchitectureTemplate(lib, ["T"])
        findings = validate_template(t)
        assert any("no source" in f for f in findings)

    def test_source_in_wrong_partition_class(self):
        lib = Library()
        lib.add(ComponentSpec("A", "mid", role=Role.SOURCE))
        lib.add(ComponentSpec("S", "src"))
        lib.add(ComponentSpec("T", "snk", role=Role.SINK))
        lib.set_type_order(["src", "mid", "snk"])
        t = ArchitectureTemplate(lib, ["A", "S", "T"])
        t.allow_edge("A", "T")
        findings = validate_template(t)
        assert any("Pi_1" in f for f in findings)

    def test_edge_into_source_detected(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        t.allow_edge("S", "M")
        t.allow_edge("M", "T")
        t.allow_edge("M", "S")  # wrong direction
        findings = validate_template(t)
        assert any("into a source" in f for f in findings)

    def test_edge_out_of_sink_detected(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        t.allow_edge("S", "M")
        t.allow_edge("M", "T")
        t.allow_edge("T", "M")
        findings = validate_template(t)
        assert any("leaves a sink" in f for f in findings)

    def test_demand_exceeds_supply(self):
        lib = Library()
        lib.add(ComponentSpec("S", "src", capacity=10, role=Role.SOURCE))
        lib.add(ComponentSpec("T", "snk", demand=50, role=Role.SINK))
        lib.set_type_order(["src", "snk"])
        t = ArchitectureTemplate(lib, ["S", "T"])
        t.allow_edge("S", "T")
        findings = validate_template(t)
        assert any("demand" in f for f in findings)

    def test_mixed_type_orbit_detected(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        t.allow_edge("S", "M")
        t.allow_edge("M", "T")
        t.interchangeable_groups.append(["S", "M"])  # bogus orbit
        findings = validate_template(t)
        assert any("mixes component types" in f for f in findings)

    def test_assert_valid_raises(self):
        t = ArchitectureTemplate(_lib(), ["S", "M", "T"])
        with pytest.raises(TemplateValidationError):
            assert_valid(t)  # sink unreachable (no edges at all)
