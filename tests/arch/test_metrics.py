"""Tests for architecture metrics, plus the encoder/cost consistency
property (ILP objective == eq. 1 on the decoded architecture, for any
feasible configuration)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import Architecture
from repro.arch.metrics import architecture_metrics
from repro.eps import build_eps_template
from repro.synthesis import ArchitectureEncoder


@pytest.fixture(scope="module")
def eps_arch():
    t = build_eps_template(num_generators=2)
    e = lambda a, b: (t.index_of(a), t.index_of(b))
    # RL1 left unconnected on purpose: metrics must still report it.
    return Architecture(t, [
        e("LG1", "LB1"), e("LB1", "LR1"), e("LR1", "LD1"),
        e("LD1", "LL1"),
    ])


class TestMetrics:
    def test_counts(self, eps_arch):
        m = architecture_metrics(eps_arch)
        assert m.num_components == 5
        assert m.num_available == 10
        assert m.num_switches == 4
        assert m.utilization == pytest.approx(0.5)

    def test_cost_breakdown_sums(self, eps_arch):
        m = architecture_metrics(eps_arch)
        assert m.component_cost + m.switch_cost == pytest.approx(m.total_cost)
        assert sum(m.cost_by_type.values()) == pytest.approx(m.component_cost)

    def test_type_tallies(self, eps_arch):
        m = architecture_metrics(eps_arch)
        assert m.components_by_type["load"] == 1
        assert m.available_by_type["generator"] == 2

    def test_sink_metrics(self, eps_arch):
        m = architecture_metrics(eps_arch)
        by_name = {s.sink: s for s in m.sinks}
        assert by_name["LL1"].num_paths == 1
        assert by_name["LL1"].redundancy["generator"] == 1
        assert by_name["RL1"].num_paths == 0  # unconnected sink

    def test_min_redundancy(self, eps_arch):
        m = architecture_metrics(eps_arch)
        assert m.min_redundancy() == 1

    def test_summary_renders(self, eps_arch):
        text = architecture_metrics(eps_arch).summary()
        assert "components:" in text and "LL1" in text

    def test_empty_architecture(self):
        t = build_eps_template(num_generators=2)
        m = architecture_metrics(Architecture(t, []))
        assert m.num_components == 0
        assert m.total_cost == 0.0
        assert m.min_redundancy() is None


@st.composite
def random_configuration(draw):
    t = build_eps_template(num_generators=2)
    edges = [e for e in t.allowed_edges if draw(st.booleans())]
    return t, edges


@given(random_configuration())
@settings(max_examples=30, deadline=None)
def test_encoder_objective_matches_eq1_cost(case):
    """Pin any configuration in the ILP: the objective must equal the
    architecture's eq. 1 cost exactly."""
    t, edges = case
    enc = ArchitectureEncoder(t)
    chosen = set(edges)
    for e, var in enc.edge.items():
        enc.model.add_constr(var == (1 if e in chosen else 0))
    res = enc.solve(backend="scipy")
    assert res.is_optimal
    arch = enc.decode(res)
    assert res.objective == pytest.approx(arch.cost(), abs=1e-6)
    assert arch.edges == frozenset(chosen)
