"""Benchmark harness: schema validation, document generation, CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    PROFILES,
    run_bench,
    validate_bench_document,
)

#: Minimal profile so the harness itself can be tested in seconds.
_TINY = {
    "ilp_mr_bnb": [(2, 1e-3)],
    "ilp_mr_scipy": [],
    "lp_scaling": [(12, 16)],
    "warm_lp": [2],
}


@pytest.fixture
def tiny_profile(monkeypatch):
    monkeypatch.setitem(PROFILES, "tiny", _TINY)
    return "tiny"


class TestRunBench:
    def test_document_passes_own_schema(self, tiny_profile, tmp_path):
        out = tmp_path / "BENCH_ilp.json"
        doc = run_bench(
            profile=tiny_profile, out=str(out), backends=("bnb",),
            log=lambda *_: None,
        )
        assert validate_bench_document(doc) == []
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == BENCH_SCHEMA
        assert validate_bench_document(on_disk) == []

    def test_warm_and_cold_measured_in_same_run(self, tiny_profile):
        doc = run_bench(
            profile=tiny_profile, out=None, backends=("bnb",),
            log=lambda *_: None,
        )
        mr = [r for r in doc["rows"] if r["kind"] == "ilp_mr"]
        assert mr, "profile must produce ILP-MR rows"
        for row in mr:
            assert row["costs_identical"], row
            assert row["warm"]["wall_seconds"] > 0
            assert row["cold"]["wall_seconds"] > 0
            assert row["warm"]["warm_hit_rate"] > 0
            assert row["cold"]["warm_lp_solves"] == 0
        assert doc["summary"]["all_costs_identical"]
        assert doc["summary"]["ilp_mr_min_speedup"] > 1.0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            run_bench(profile="nope", out=None)


class TestValidation:
    def good_doc(self):
        return {
            "schema": BENCH_SCHEMA,
            "profile": "smoke",
            "environment": {"python": "3"},
            "rows": [
                {
                    "kind": "ilp_mr",
                    "instance": "eps-g2",
                    "backend": "bnb",
                    "reliability_target": 1e-3,
                    "speedup": 5.0,
                    "costs_identical": True,
                    "cold": {k: 1 for k in (
                        "wall_seconds", "status", "cost", "iterations",
                        "bnb_nodes", "lp_iterations", "warm_lp_solves",
                        "cold_lp_solves", "warm_hit_rate",
                    )},
                    "warm": {k: 1 for k in (
                        "wall_seconds", "status", "cost", "iterations",
                        "bnb_nodes", "lp_iterations", "warm_lp_solves",
                        "cold_lp_solves", "warm_hit_rate",
                    )},
                },
            ],
            "summary": {
                "ilp_mr_min_speedup": 5.0,
                "all_costs_identical": True,
            },
        }

    def test_good_document(self):
        assert validate_bench_document(self.good_doc()) == []

    def test_wrong_schema_flagged(self):
        doc = self.good_doc()
        doc["schema"] = "something/else"
        assert any("schema" in p for p in validate_bench_document(doc))

    def test_missing_arm_fields_flagged(self):
        doc = self.good_doc()
        del doc["rows"][0]["warm"]["warm_hit_rate"]
        problems = validate_bench_document(doc)
        assert any("warm_hit_rate" in p for p in problems)

    def test_unknown_row_kind_flagged(self):
        doc = self.good_doc()
        doc["rows"].append({"kind": "mystery"})
        assert any("unknown kind" in p for p in validate_bench_document(doc))

    def test_empty_rows_flagged(self):
        doc = self.good_doc()
        doc["rows"] = []
        assert any("non-empty" in p for p in validate_bench_document(doc))


class TestBenchCLI:
    def test_cli_writes_and_validates(self, tiny_profile, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--profile", tiny_profile, "--out", str(out),
            "--backends", "bnb",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_bench_document(doc) == []
        printed = capsys.readouterr().out
        assert "ILP-MR warm vs cold" in printed
        assert "min ILP-MR speedup" in printed

    def test_cli_auto_threshold_flags(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.ilp.solver import _DEFAULT_TUNING

        saved = (_DEFAULT_TUNING.scipy_vars, _DEFAULT_TUNING.scipy_constrs)
        try:
            rc = main([
                "synthesize", "--size", "2", "--target", "1e-3",
                "--auto-scipy-vars", "10", "--auto-scipy-constrs", "20",
            ])
            assert rc == 0
            assert _DEFAULT_TUNING.scipy_vars == 10
            assert _DEFAULT_TUNING.scipy_constrs == 20
        finally:
            _DEFAULT_TUNING.scipy_vars, _DEFAULT_TUNING.scipy_constrs = saved
