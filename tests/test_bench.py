"""Benchmark harness: schema validation, document generation, CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    HISTORY_SCHEMA,
    PROFILES,
    append_history,
    compare_history,
    history_entry,
    read_history,
    run_bench,
    validate_bench_document,
)

#: Minimal profile so the harness itself can be tested in seconds.
_TINY = {
    "ilp_mr_bnb": [(2, 1e-3)],
    "ilp_mr_scipy": [],
    "lp_scaling": [(12, 16)],
    "warm_lp": [2],
}


@pytest.fixture
def tiny_profile(monkeypatch):
    monkeypatch.setitem(PROFILES, "tiny", _TINY)
    return "tiny"


class TestRunBench:
    def test_document_passes_own_schema(self, tiny_profile, tmp_path):
        out = tmp_path / "BENCH_ilp.json"
        doc = run_bench(
            profile=tiny_profile, out=str(out), backends=("bnb",),
            log=lambda *_: None,
        )
        assert validate_bench_document(doc) == []
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == BENCH_SCHEMA
        assert validate_bench_document(on_disk) == []

    def test_warm_and_cold_measured_in_same_run(self, tiny_profile):
        doc = run_bench(
            profile=tiny_profile, out=None, backends=("bnb",),
            log=lambda *_: None,
        )
        mr = [r for r in doc["rows"] if r["kind"] == "ilp_mr"]
        assert mr, "profile must produce ILP-MR rows"
        for row in mr:
            assert row["costs_identical"], row
            assert row["warm"]["wall_seconds"] > 0
            assert row["cold"]["wall_seconds"] > 0
            assert row["warm"]["warm_hit_rate"] > 0
            assert row["cold"]["warm_lp_solves"] == 0
        assert doc["summary"]["all_costs_identical"]
        assert doc["summary"]["ilp_mr_min_speedup"] > 1.0

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            run_bench(profile="nope", out=None)


class TestValidation:
    def good_doc(self):
        return {
            "schema": BENCH_SCHEMA,
            "profile": "smoke",
            "environment": {"python": "3"},
            "rows": [
                {
                    "kind": "ilp_mr",
                    "instance": "eps-g2",
                    "backend": "bnb",
                    "reliability_target": 1e-3,
                    "speedup": 5.0,
                    "costs_identical": True,
                    "cold": {k: 1 for k in (
                        "wall_seconds", "status", "cost", "iterations",
                        "bnb_nodes", "lp_iterations", "warm_lp_solves",
                        "cold_lp_solves", "warm_hit_rate",
                    )},
                    "warm": {k: 1 for k in (
                        "wall_seconds", "status", "cost", "iterations",
                        "bnb_nodes", "lp_iterations", "warm_lp_solves",
                        "cold_lp_solves", "warm_hit_rate",
                    )},
                },
            ],
            "summary": {
                "ilp_mr_min_speedup": 5.0,
                "all_costs_identical": True,
            },
        }

    def test_good_document(self):
        assert validate_bench_document(self.good_doc()) == []

    def test_wrong_schema_flagged(self):
        doc = self.good_doc()
        doc["schema"] = "something/else"
        assert any("schema" in p for p in validate_bench_document(doc))

    def test_missing_arm_fields_flagged(self):
        doc = self.good_doc()
        del doc["rows"][0]["warm"]["warm_hit_rate"]
        problems = validate_bench_document(doc)
        assert any("warm_hit_rate" in p for p in problems)

    def test_unknown_row_kind_flagged(self):
        doc = self.good_doc()
        doc["rows"].append({"kind": "mystery"})
        assert any("unknown kind" in p for p in validate_bench_document(doc))

    def test_empty_rows_flagged(self):
        doc = self.good_doc()
        doc["rows"] = []
        assert any("non-empty" in p for p in validate_bench_document(doc))


class TestBenchCLI:
    def test_cli_writes_and_validates(self, tiny_profile, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main([
            "bench", "--profile", tiny_profile, "--out", str(out),
            "--backends", "bnb",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_bench_document(doc) == []
        printed = capsys.readouterr().out
        assert "ILP-MR warm vs cold" in printed
        assert "min ILP-MR speedup" in printed

    def test_cli_auto_threshold_flags(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.ilp.solver import _DEFAULT_TUNING

        saved = (_DEFAULT_TUNING.scipy_vars, _DEFAULT_TUNING.scipy_constrs)
        try:
            rc = main([
                "synthesize", "--size", "2", "--target", "1e-3",
                "--auto-scipy-vars", "10", "--auto-scipy-constrs", "20",
            ])
            assert rc == 0
            assert _DEFAULT_TUNING.scipy_vars == 10
            assert _DEFAULT_TUNING.scipy_constrs == 20
        finally:
            _DEFAULT_TUNING.scipy_vars, _DEFAULT_TUNING.scipy_constrs = saved


def make_doc(warm=0.1, cold=1.0, profile="unit"):
    """A minimal bench document carrying one ILP-MR row."""
    return {
        "schema": BENCH_SCHEMA,
        "profile": profile,
        "generated_at": "2026-01-01T00:00:00Z",
        "environment": {"python": "3"},
        "rows": [{
            "kind": "ilp_mr",
            "instance": "eps-g2",
            "backend": "bnb",
            "speedup": cold / warm,
            "costs_identical": True,
            "warm": {"wall_seconds": warm},
            "cold": {"wall_seconds": cold},
        }],
        "summary": {},
    }


class TestHistoryLedger:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        entry = append_history(make_doc(), path)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["profile"] == "unit"
        assert entry["metrics"]["ilp_mr/eps-g2/bnb/warm_wall_seconds"] == 0.1
        append_history(make_doc(warm=0.2), path)
        assert len(read_history(path)) == 2

    def test_read_filters_by_profile_and_skips_junk(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(make_doc(profile="a"), path)
        append_history(make_doc(profile="b"), path)
        with path.open("a") as fh:
            fh.write('{"schema": "something/else"}\n')
            fh.write("not json at all\n")
        assert len(read_history(path)) == 2
        assert len(read_history(path, profile="a")) == 1

    def test_missing_history_file_reads_empty(self, tmp_path):
        assert read_history(tmp_path / "absent.jsonl") == []

    def test_history_entry_drops_nan_metrics(self):
        doc = make_doc()
        doc["rows"][0]["speedup"] = float("nan")
        entry = history_entry(doc)
        assert "ilp_mr/eps-g2/bnb/speedup" not in entry["metrics"]


class TestCompareHistory:
    def history_of(self, *docs):
        return [history_entry(d) for d in docs]

    def by_metric(self, verdicts):
        return {v["metric"]: v for v in verdicts}

    def test_insufficient_history_never_fails(self):
        verdicts = compare_history(make_doc(), self.history_of(make_doc()))
        assert {v["status"] for v in verdicts} == {"no-history"}

    def test_steady_state_is_ok(self):
        history = self.history_of(make_doc(), make_doc(), make_doc())
        verdicts = compare_history(make_doc(), history)
        assert {v["status"] for v in verdicts} == {"ok"}

    def test_slowdown_beyond_threshold_regresses(self):
        history = self.history_of(make_doc(), make_doc(), make_doc())
        verdicts = self.by_metric(compare_history(make_doc(warm=0.5), history))
        warm = verdicts["ilp_mr/eps-g2/bnb/warm_wall_seconds"]
        assert warm["status"] == "regression"
        assert warm["ratio"] == pytest.approx(5.0)
        # The warm arm got slower, so the speedup collapsed too.
        assert verdicts["ilp_mr/eps-g2/bnb/speedup"]["status"] == "regression"

    def test_speedup_direction_is_higher_better(self):
        history = self.history_of(make_doc(), make_doc())
        verdicts = self.by_metric(compare_history(make_doc(warm=0.01), history))
        assert verdicts["ilp_mr/eps-g2/bnb/speedup"]["status"] == "improved"
        assert verdicts["ilp_mr/eps-g2/bnb/warm_wall_seconds"]["status"] == (
            "improved"
        )

    def test_mad_noise_gate_absorbs_jittery_series(self):
        # Median 1.0 but the series routinely swings to 1.8: a 1.6 reading
        # is inside 4*MAD even though it clears the 50% relative gate.
        history = self.history_of(
            make_doc(cold=0.6), make_doc(cold=1.0), make_doc(cold=1.4),
            make_doc(cold=1.8), make_doc(cold=1.0),
        )
        verdicts = self.by_metric(compare_history(make_doc(cold=1.6), history))
        assert verdicts["ilp_mr/eps-g2/bnb/cold_wall_seconds"]["status"] == "ok"

    def test_min_seconds_floor_ignores_microbenchmark_jitter(self):
        history = self.history_of(
            make_doc(warm=0.002), make_doc(warm=0.002)
        )
        verdicts = self.by_metric(
            compare_history(make_doc(warm=0.004, cold=1.0), history)
        )
        # 2x slower but only +2ms: below the absolute floor, not a finding.
        assert verdicts["ilp_mr/eps-g2/bnb/warm_wall_seconds"]["status"] != (
            "regression"
        )


class TestBenchSentinelCLI:
    def run_sentinel(self, tmp_path, doc, history_docs, *extra):
        from repro.cli import main

        doc_path = tmp_path / "doc.json"
        doc_path.write_text(json.dumps(doc))
        hist_path = tmp_path / "hist.jsonl"
        if hist_path.exists():
            hist_path.unlink()  # each call states its own prior history
        for h in history_docs:
            append_history(h, hist_path)
        return main([
            "bench", "--from", str(doc_path), "--compare",
            "--history", str(hist_path), *extra,
        ]), hist_path

    def full_doc(self, tiny_profile, **kw):
        doc = run_bench(profile=tiny_profile, out=None, backends=("bnb",),
                        log=lambda *_: None)
        for row in doc["rows"]:
            if row["kind"] == "ilp_mr":
                for arm in ("warm", "cold"):
                    row[arm]["wall_seconds"] = kw.get(arm, row[arm]["wall_seconds"])
                if "warm" in kw or "cold" in kw:
                    row["speedup"] = (
                        row["cold"]["wall_seconds"] / row["warm"]["wall_seconds"]
                    )
        return doc

    def test_green_run_appends_and_passes(self, tiny_profile, tmp_path, capsys):
        doc = self.full_doc(tiny_profile, warm=0.1, cold=1.0)
        rc, hist = self.run_sentinel(tmp_path, doc, [doc, doc])
        assert rc == 0
        assert len(read_history(hist)) == 3
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_regression_fails_unless_warn_only(self, tiny_profile, tmp_path,
                                               capsys):
        base = self.full_doc(tiny_profile, warm=0.1, cold=1.0)
        slow = self.full_doc(tiny_profile, warm=0.1, cold=10.0)
        rc, _ = self.run_sentinel(tmp_path, slow, [base, base], "--no-append")
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out
        rc, hist = self.run_sentinel(
            tmp_path, slow, [base, base], "--warn-only", "--no-append"
        )
        assert rc == 0
        assert len(read_history(hist)) == 2  # --no-append respected


class TestConcurrencyRows:
    def test_cache_contention_row_shape_and_speedup(self):
        from repro.bench import _ROW_REQUIRED, _cache_contention_row

        row = _cache_contention_row(2, 40)
        assert _ROW_REQUIRED["cache_contention"] <= set(row)
        assert row["all_writes_landed"] is True
        assert row["speedup"] > 0
        assert row["sharded_writes_per_second"] > 0

    def test_new_kinds_flatten_into_history_metrics(self):
        from repro.bench import _entry_metrics

        doc = {"rows": [
            {"kind": "cache_contention", "instance": "writers-2x10",
             "single_writer_per_second": 100.0,
             "sharded_writes_per_second": 300.0, "speedup": 3.0},
            {"kind": "queue_throughput", "instance": "noop-4x2",
             "jobs_per_second": 42.0},
            {"kind": "sharded_sweep", "instance": "bdd-8x2",
             "serial_seconds": 1.0, "queue_seconds": 0.5,
             "queue_jobs_per_second": 16.0},
        ]}
        metrics = _entry_metrics(doc)
        assert metrics["cache_contention/writers-2x10/speedup"] == 3.0
        assert metrics["queue_throughput/noop-4x2/jobs_per_second"] == 42.0
        assert metrics["sharded_sweep/bdd-8x2/queue_seconds"] == 0.5

    def test_per_second_metrics_are_higher_is_better(self):
        from repro.bench import _metric_direction

        assert _metric_direction("a/jobs_per_second") == "higher"
        assert _metric_direction("a/speedup") == "higher"
        assert _metric_direction("a/queue_seconds") == "lower"

    def test_validation_accepts_new_row_kinds(self):
        from repro.bench import _cache_contention_row

        doc = {
            "schema": BENCH_SCHEMA, "profile": "tiny",
            "environment": {}, "rows": [_cache_contention_row(2, 20)],
            "summary": {"ilp_mr_min_speedup": None,
                        "all_costs_identical": True},
        }
        assert validate_bench_document(doc) == []
