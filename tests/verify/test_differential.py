"""Tests for the differential/metamorphic verifier core."""

import pytest

from repro.reliability import exact
from repro.verify import (
    Finding,
    brute_force_failure,
    closed_form_cases,
    verify_problem,
)
from repro.verify.corpus import bridge_case, example1_case, series_case


class TestBruteForce:
    @pytest.mark.parametrize(
        "case", closed_form_cases(), ids=lambda c: c.name
    )
    def test_matches_closed_forms(self, case):
        assert brute_force_failure(case.problem) == pytest.approx(
            case.expected, rel=1e-12
        )

    def test_rejects_oversized_instances(self):
        case = series_case(p=0.1, n=20)
        with pytest.raises(ValueError, match="brute force limited"):
            brute_force_failure(case.problem, max_nodes=14)

    def test_disconnected_is_certain_failure(self):
        case = series_case()
        graph = case.problem.graph.copy()
        graph.remove_node("m1")
        from repro.reliability import ReliabilityProblem

        cut = ReliabilityProblem(graph, case.problem.sources, case.problem.sink)
        assert brute_force_failure(cut) == 1.0


class TestVerifyProblem:
    @pytest.mark.parametrize(
        "case", closed_form_cases(), ids=lambda c: c.name
    )
    def test_clean_engines_verify_green(self, case):
        result = verify_problem(
            case.problem, case=case.name, expected=case.expected,
            mc_samples=2000,
        )
        assert result.ok, [f.as_dict() for f in result.findings]
        assert result.checks_run > 0
        # bdd/factoring/sdp apply to everything in the corpus.
        assert {"bdd", "factoring", "sdp"} <= set(result.engines)

    def test_polynomial_skipped_with_reason_on_nonuniform(self):
        case = bridge_case(p_arm=0.1, p_tie=0.2)  # two distinct nonzero p
        result = verify_problem(case.problem, mc_samples=0)
        assert result.ok
        assert "polynomial" in result.skipped
        assert "uniform" in result.skipped["polynomial"]

    def test_poisoned_engine_is_confirmed_disagreement(self, monkeypatch):
        case = example1_case()
        original = exact._ENGINES["sdp"]
        monkeypatch.setitem(
            exact._ENGINES, "sdp", lambda p: original(p) + 1e-5
        )
        result = verify_problem(
            case.problem, case=case.name, expected=case.expected,
            mc_samples=0,
        )
        assert not result.ok
        checks = {f.check for f in result.confirmed_findings}
        assert "engine-disagreement" in checks
        assert "closed-form" in checks
        disagreement = next(
            f for f in result.findings if f.check == "engine-disagreement"
        )
        assert disagreement.delta == pytest.approx(1e-5, rel=1e-3)

    def test_crashing_engine_is_a_finding_not_an_abort(self, monkeypatch):
        def boom(problem):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(exact._ENGINES, "factoring", boom)
        case = series_case()
        result = verify_problem(case.problem, expected=case.expected,
                                mc_samples=0)
        errors = [f for f in result.findings if f.check == "engine-error"]
        assert len(errors) == 1
        assert "kaboom" in errors[0].detail
        # The remaining engines still verified against the closed form.
        assert "bdd" in result.engines
        assert not [f for f in result.findings if f.check == "closed-form"]

    def test_mc_miss_is_statistical(self, monkeypatch):
        # Poison every exact engine identically: the engines agree with
        # each other, the closed form is not supplied, brute force is the
        # only exact tripwire -- and Monte-Carlo flags it statistically.
        case = example1_case(p=0.05)
        for name in ("bdd", "factoring", "sdp", "ie"):
            monkeypatch.setitem(exact._ENGINES, name, lambda p: 0.9)
        result = verify_problem(case.problem, mc_samples=4000,
                                metamorphic=False)
        assert not result.ok
        mc = [f for f in result.findings if f.check == "mc-interval"]
        assert mc and all(f.statistical for f in mc)
        assert [f for f in result.findings if f.check == "brute-force"]
        # Statistical findings never count as confirmed on their own.
        assert all(
            f.check != "mc-interval" for f in result.confirmed_findings
        )


class TestFindingSerialization:
    def test_dict_roundtrip(self):
        finding = Finding(
            case="c", check="engine-disagreement", detail="d",
            value=0.25, reference=0.5, statistical=False,
        )
        assert Finding.from_dict(finding.as_dict()) == finding
        assert finding.delta == 0.25

    def test_delta_none_without_reference(self):
        assert Finding(case="c", check="x", detail="d").delta is None
