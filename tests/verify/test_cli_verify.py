"""End-to-end tests for the ``repro verify`` CLI command."""

import json
import os

import pytest

from repro.cli import main
from repro.engine import ReliabilityCache
from repro.reliability import exact, failure_probability
from repro.verify.corpus import closed_form_cases


def _verify_argv(tmp_path, fuzz=2, extra=()):
    return [
        "verify", "--fuzz", str(fuzz), "--seed", "0", "--mc-samples", "0",
        "--no-eps", "--repro-dir", str(tmp_path / "repros"), *extra,
    ]


class TestCmdVerify:
    def test_green_run_exits_zero(self, tmp_path, capsys):
        assert main(_verify_argv(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "OK:" in out
        assert "no confirmed findings" in out
        assert not (tmp_path / "repros").exists()

    def test_poisoned_engine_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        original = exact._ENGINES["sdp"]
        monkeypatch.setitem(
            exact._ENGINES, "sdp", lambda p: original(p) * 1.5 + 1e-6
        )
        assert main(_verify_argv(tmp_path)) == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out
        assert "engine-disagreement" in out

    def test_failing_fuzz_case_writes_shrunk_repro(self, tmp_path, capsys,
                                                   monkeypatch):
        monkeypatch.setitem(exact._ENGINES, "bdd", lambda p: 0.5)
        assert main(_verify_argv(tmp_path, fuzz=1)) == 1
        repro_dir = tmp_path / "repros"
        files = sorted(repro_dir.glob("*.json"))
        assert len(files) == 1
        data = json.loads(files[0].read_text())
        assert data["case"].startswith("fuzz-0/")
        assert data["seed"] == 0
        assert data["findings"]
        # The shrunk counterexample stays small: a handful of nodes, not
        # the full generated instance.
        assert len(data["problem"]["nodes"]) <= 6

    def test_audits_existing_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        with ReliabilityCache(cache_dir) as cache:
            for case in closed_form_cases()[:2]:
                value = failure_probability(case.problem, method="bdd")
                cache.store(case.problem, "bdd", value)
        argv = _verify_argv(tmp_path, fuzz=0,
                            extra=["--cache-dir", str(cache_dir)])
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cache audit: 2/2" in out

    def test_fresh_cache_dir_skips_audit(self, tmp_path, capsys):
        # --cache-dir without a pre-existing relcache file: the batch
        # creates one, but there is nothing meaningful to audit yet.
        argv = _verify_argv(
            tmp_path, fuzz=0, extra=["--cache-dir", str(tmp_path / "new")]
        )
        assert main(argv) == 0

    def test_verify_jobs_parallel(self, tmp_path, capsys):
        assert main(_verify_argv(tmp_path, extra=["--jobs", "2"])) == 0
        assert "OK:" in capsys.readouterr().out

    def test_help_lists_verify(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "verify" in capsys.readouterr().out


class TestVerifyReportTable:
    def test_render_verification_table(self):
        from repro.report import render_verification_table

        table = render_verification_table([
            {"case": "c1", "check": "engine-disagreement", "value": 0.25,
             "reference": 0.5, "statistical": False, "detail": "x"},
            {"case": "c2", "check": "mc-interval", "value": None,
             "reference": None, "statistical": True, "detail": "y"},
        ])
        assert "engine-disagreement" in table
        assert "confirmed" in table
        assert "statistical" in table
        assert "2.500000e-01" in table
