"""Tests for the seeded fuzzer, the shrinker, and repro files."""

import pytest

from repro.reliability import exact, minimal_path_sets
from repro.verify import (
    fuzz_cases,
    load_repro,
    problem_from_dict,
    problem_to_dict,
    save_repro,
    shrink_problem,
    verify_problem,
)
from repro.verify.corpus import series_parallel_case


class TestGenerators:
    def test_same_seed_same_cases(self):
        a = [problem_to_dict(c.problem) for c in fuzz_cases(12, seed=3)]
        b = [problem_to_dict(c.problem) for c in fuzz_cases(12, seed=3)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [problem_to_dict(c.problem) for c in fuzz_cases(12, seed=3)]
        b = [problem_to_dict(c.problem) for c in fuzz_cases(12, seed=4)]
        assert a != b

    def test_all_instances_are_live(self):
        for case in fuzz_cases(15, seed=0):
            assert minimal_path_sets(case.problem.restricted()), case.name

    def test_both_families_generated(self):
        origins = {c.name.rsplit("-", 1)[-1] for c in fuzz_cases(6, seed=0)}
        assert origins == {"layered", "sub"}  # eps-sub names end in "sub"


class TestSerialization:
    def test_roundtrip_is_bit_exact(self):
        for case in fuzz_cases(6, seed=5):
            data = problem_to_dict(case.problem)
            back = problem_from_dict(data)
            assert problem_to_dict(back) == data
            for n in case.problem.graph.nodes:
                assert (
                    back.graph.nodes[n]["p"] == case.problem.graph.nodes[n]["p"]
                )

    def test_repro_file_roundtrip(self, tmp_path):
        case = fuzz_cases(1, seed=9)[0]
        findings = [{"case": case.name, "check": "engine-disagreement",
                     "detail": "x", "value": 0.1, "reference": 0.2}]
        path = save_repro(
            case.problem, tmp_path / "deep" / "r.json", case=case.name,
            findings=findings, seed=9,
        )
        data = load_repro(path)
        assert data["case"] == case.name
        assert data["seed"] == 9
        assert data["findings"] == findings
        assert problem_to_dict(data["problem"]) == problem_to_dict(case.problem)


class TestShrinker:
    def test_shrinks_to_one_minimal_instance(self):
        case = fuzz_cases(1, seed=2)[0]

        def two_imperfect(problem):
            restricted = problem.restricted()
            return sum(
                1 for n in restricted.graph.nodes
                if restricted.failure_prob(n) > 0.0
            ) >= 2

        if not two_imperfect(case.problem):
            pytest.skip("seed produced a <2-imperfect instance")
        shrunk = shrink_problem(case.problem, two_imperfect)
        assert two_imperfect(shrunk)
        # 1-minimality: no single reduction preserves the property.
        from repro.verify.fuzz import _candidates

        for candidate in _candidates(shrunk):
            try:
                assert not two_imperfect(candidate)
            except Exception:
                pass  # a crashing candidate counts as not-failing

    def test_shrinks_real_engine_disagreement(self, monkeypatch):
        # A constant-biased BDD disagrees with factoring everywhere; the
        # minimal counterexample should be far smaller than the original.
        monkeypatch.setitem(exact._ENGINES, "bdd", lambda p: 0.5)
        case = series_parallel_case()

        def still_fails(problem):
            result = verify_problem(
                problem, mc_samples=0, metamorphic=False
            )
            return bool(result.confirmed_findings)

        assert still_fails(case.problem)
        shrunk = shrink_problem(case.problem, still_fails)
        assert still_fails(shrunk)
        assert (
            shrunk.graph.number_of_nodes()
            < case.problem.graph.number_of_nodes()
        )
