"""Tests for auditing the persistent reliability cache."""

import sqlite3

import pytest

from repro.engine import ReliabilityCache
from repro.engine.cache import CACHE_FILENAME
from repro.reliability import failure_probability
from repro.verify import audit_cache
from repro.verify.corpus import closed_form_cases


def _populate(cache_dir, n=4):
    cases = closed_form_cases()[:n]
    with ReliabilityCache(cache_dir) as cache:
        for case in cases:
            value = failure_probability(case.problem, method="bdd")
            cache.store(case.problem, "bdd", value)
    return cases


class TestAuditCache:
    def test_clean_cache_audits_green(self, tmp_path):
        _populate(tmp_path)
        report = audit_cache(tmp_path, sample=10, seed=0)
        assert report.ok
        assert report.entries == 4
        assert report.sampled == 4
        assert report.audited == 4
        assert report.skipped == 0

    def test_tampered_value_detected(self, tmp_path):
        _populate(tmp_path)
        conn = sqlite3.connect(str(tmp_path / CACHE_FILENAME))
        conn.execute(
            "UPDATE reliability SET value = value + 0.01 "
            "WHERE digest = (SELECT MIN(digest) FROM reliability)"
        )
        conn.commit()
        conn.close()
        report = audit_cache(tmp_path, sample=10, seed=0)
        assert not report.ok
        assert [f.check for f in report.findings] == ["cache-audit"]
        assert report.findings[0].delta == pytest.approx(0.01, rel=1e-6)

    def test_corrupted_payload_detected(self, tmp_path):
        _populate(tmp_path)
        conn = sqlite3.connect(str(tmp_path / CACHE_FILENAME))
        conn.execute(
            "UPDATE reliability SET problem = '{\"garbage\": true}' "
            "WHERE digest = (SELECT MIN(digest) FROM reliability)"
        )
        conn.commit()
        conn.close()
        report = audit_cache(tmp_path, sample=10, seed=0)
        assert [f.check for f in report.findings] == ["cache-digest"]

    def test_pre_payload_entries_are_skipped(self, tmp_path):
        _populate(tmp_path)
        conn = sqlite3.connect(str(tmp_path / CACHE_FILENAME))
        conn.execute("UPDATE reliability SET problem = NULL")
        conn.commit()
        conn.close()
        report = audit_cache(tmp_path, sample=10, seed=0)
        assert report.ok
        assert report.audited == 0
        assert report.skipped == report.sampled == 4

    def test_sampling_is_seeded(self, tmp_path):
        _populate(tmp_path)
        a = audit_cache(tmp_path, sample=2, seed=1)
        b = audit_cache(tmp_path, sample=2, seed=1)
        assert a.sampled == b.sampled == 2
        assert a.audited == b.audited

    def test_missing_cache_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            audit_cache(tmp_path / "nope")
