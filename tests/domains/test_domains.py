"""Tests for the §VI generalization domains (power grid, comm network)."""

import pytest

from repro.domains import (
    build_comm_network_template,
    build_power_grid_template,
    comm_network_spec,
    power_grid_spec,
)
from repro.reliability import approximate_failure, worst_case_failure
from repro.synthesis import synthesize_ilp_ar, synthesize_ilp_mr


class TestPowerGridTemplate:
    def test_shape(self):
        t = build_power_grid_template(num_plants=3, num_substations=3,
                                      num_feeders=4, num_customers=3)
        assert t.num_nodes == 13
        assert t.type_order == ["plant", "substation", "feeder", "customer"]
        assert len(t.source_indices()) == 3
        assert len(t.sink_indices()) == 3

    def test_orbits_declared(self):
        t = build_power_grid_template()
        groups = {frozenset(g) for g in t.interchangeable_groups}
        assert frozenset({"S1", "S2", "S3"}) in groups

    def test_substation_ties_bidirectional(self):
        t = build_power_grid_template()
        s1, s2 = t.index_of("S1"), t.index_of("S2")
        assert t.is_allowed(s1, s2) and t.is_allowed(s2, s1)

    def test_synthesis_meets_target(self):
        spec = power_grid_spec(reliability_target=1e-7)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        assert res.reliability <= 1e-7
        r, _ = worst_case_failure(res.architecture)
        assert r <= 1e-7

    def test_power_adequacy_respected(self):
        spec = power_grid_spec(reliability_target=1e-4)
        res = synthesize_ilp_mr(spec, backend="scipy")
        arch = res.architecture
        t = arch.template
        supply = sum(
            t.spec(i).capacity for i in arch.used_nodes() if t.spec(i).capacity > 0
        )
        demand = sum(t.spec(i).demand for i in range(t.num_nodes))
        assert supply >= demand


class TestCommNetworkTemplate:
    def test_shape(self):
        t = build_comm_network_template(num_datacenters=2, num_core=3,
                                        num_edge=4, num_gateways=2)
        assert t.num_nodes == 11
        assert t.num_types == 4

    def test_edge_router_gateway_cap(self):
        spec = comm_network_spec(reliability_target=1e-6)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.feasible
        arch = res.architecture
        t = arch.template
        for er in t.nodes_of_type("edge_router"):
            gws = [
                j for (i, j) in arch.edges
                if i == er and t.type_of(j) == "gateway"
            ]
            assert len(gws) <= 2  # the ConnectionBound requirement

    def test_ilp_ar_works_on_comm_domain(self):
        spec = comm_network_spec(reliability_target=1e-6)
        res = synthesize_ilp_ar(spec, backend="scipy")
        assert res.feasible
        assert res.approx_reliability <= 1e-6
        profile = approximate_failure(res.architecture, "GW1").redundancy
        assert profile["core_router"] >= 2  # p_core = 2e-4 needs h >= 2

    def test_both_algorithms_comparable_cost(self):
        spec = comm_network_spec(reliability_target=1e-6)
        mr = synthesize_ilp_mr(spec, backend="scipy")
        ar = synthesize_ilp_ar(spec, backend="scipy")
        assert mr.feasible and ar.feasible
        assert ar.cost <= mr.cost * 2
        assert mr.cost <= ar.cost * 2

    def test_infeasible_target_detected(self):
        # Tiny template: 1 core / 1 edge router cannot reach 1e-12.
        t = build_comm_network_template(num_datacenters=1, num_core=1,
                                        num_edge=1, num_gateways=1)
        spec = comm_network_spec(t, reliability_target=1e-12)
        res = synthesize_ilp_mr(spec, backend="scipy")
        assert res.status == "infeasible"
