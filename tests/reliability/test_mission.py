"""Tests for mission-time reliability (failure rates, R(t), MTTF)."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import failure_probability, ReliabilityProblem
from repro.reliability.mission import (
    MissionReliability,
    mission_reliability,
    rate_to_probability,
)


def _graph(edges, rates):
    g = nx.DiGraph()
    for n, rate in rates.items():
        g.add_node(n, rate=rate)
    g.add_edges_from(edges)
    return g


def _series(rates):
    names = list(rates)
    return mission_reliability(
        _graph(list(zip(names, names[1:])), rates), [names[0]], names[-1]
    )


class TestRateToProbability:
    def test_basic_value(self):
        assert rate_to_probability(1e-4, 10.0) == pytest.approx(1 - math.exp(-1e-3))

    def test_zero_rate(self):
        assert rate_to_probability(0.0, 100.0) == 0.0

    def test_zero_duration(self):
        assert rate_to_probability(1.0, 0.0) == 0.0

    def test_small_rate_precision(self):
        # expm1 keeps precision where 1 - exp(-x) would cancel
        assert rate_to_probability(1e-12, 1.0) == pytest.approx(1e-12, rel=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rate_to_probability(-1.0, 1.0)


class TestMissionReliability:
    def test_matches_static_analysis(self):
        """r(t) must equal the static engine fed with p_i = 1 - exp(-l t)."""
        rates = {"S": 1e-4, "M": 2e-4, "T": 5e-5}
        mission = _series(rates)
        t = 1234.5
        static = _graph([("S", "M"), ("M", "T")], rates)
        for n, rate in rates.items():
            static.nodes[n]["p"] = rate_to_probability(rate, t)
        expected = failure_probability(
            ReliabilityProblem(static, ("S",), "T")
        )
        assert mission.failure_at(t) == pytest.approx(expected, rel=1e-12)

    def test_monotone_in_time(self):
        mission = _series({"S": 1e-3, "T": 1e-3})
        values = [mission.failure_at(t) for t in (0, 10, 100, 1000)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_reliability_curve_shape(self):
        mission = _series({"S": 1e-3, "T": 1e-3})
        curve = mission.reliability_curve([0.0, 1.0, 10.0])
        assert len(curve) == 3
        assert curve[0] == (0.0, 0.0)

    def test_missing_rate_rejected(self):
        g = nx.DiGraph()
        g.add_node("S")
        with pytest.raises(ValueError):
            MissionReliability(g, ("S",), "S")

    def test_disconnected_sink(self):
        g = _graph([], {"S": 1e-3, "T": 1e-3})
        mission = mission_reliability(g, ["S"], "T")
        assert not mission.is_connected
        assert mission.failure_at(5.0) == 1.0
        assert mission.max_mission_duration(1e-3) == 0.0


class TestMaxMissionDuration:
    def test_single_component_closed_form(self):
        # one source=sink with rate l: r(t) = 1 - exp(-l t) <= r* at
        # t = -ln(1 - r*) / l.
        lam = 1e-4
        g = _graph([], {"S": lam})
        mission = mission_reliability(g, ["S"], "S")
        r_star = 1e-6
        expected = -math.log1p(-r_star) / lam
        assert mission.max_mission_duration(r_star) == pytest.approx(
            expected, rel=1e-6
        )

    def test_redundancy_extends_mission(self):
        lam = 1e-4
        single = mission_reliability(
            _graph([("S1", "T")], {"S1": lam, "T": 0.0}), ["S1"], "T"
        )
        dual = mission_reliability(
            _graph([("S1", "T"), ("S2", "T")], {"S1": lam, "S2": lam, "T": 0.0}),
            ["S1", "S2"],
            "T",
        )
        r_star = 1e-6
        assert dual.max_mission_duration(r_star) > 10 * single.max_mission_duration(
            r_star
        )


class TestMttf:
    def test_single_component(self):
        lam = 1e-3
        g = _graph([], {"S": lam})
        mission = mission_reliability(g, ["S"], "S")
        assert mission.mttf() == pytest.approx(1.0 / lam, rel=1e-3)

    def test_series_system(self):
        # Series of independent exponentials: MTTF = 1 / sum(rates).
        rates = {"a": 1e-3, "b": 2e-3, "c": 3e-3}
        mission = _series(rates)
        assert mission.mttf() == pytest.approx(1.0 / sum(rates.values()), rel=1e-2)

    def test_parallel_beats_series(self):
        lam = 1e-3
        series = _series({"a": lam, "b": lam})
        parallel = mission_reliability(
            _graph([("S1", "T"), ("S2", "T")],
                   {"S1": lam, "S2": lam, "T": 0.0}),
            ["S1", "S2"], "T",
        )
        # 1-out-of-2 parallel: MTTF = 1.5/lam > series 0.5/lam.
        assert parallel.mttf() == pytest.approx(1.5 / lam, rel=1e-2)
        assert series.mttf() == pytest.approx(0.5 / lam, rel=1e-2)

    def test_perfect_system_infinite(self):
        g = _graph([("S", "T")], {"S": 0.0, "T": 0.0})
        mission = mission_reliability(g, ["S"], "T")
        assert mission.mttf() == math.inf


@given(st.floats(1e-6, 1e-2), st.floats(1.0, 1e4))
@settings(max_examples=50, deadline=None)
def test_failure_at_matches_rate_formula(lam, t):
    g = _graph([], {"S": lam})
    mission = mission_reliability(g, ["S"], "S")
    assert mission.failure_at(t) == pytest.approx(rate_to_probability(lam, t), rel=1e-12)
