"""Tests for component importance measures."""

import networkx as nx
import pytest

from repro.reliability import (
    ReliabilityProblem,
    failure_probability,
    importance_measures,
    ranked_importance,
)


def _series(probs):
    g = nx.DiGraph()
    names = list(probs)
    for name, p in probs.items():
        g.add_node(name, p=p)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return ReliabilityProblem(g, (names[0],), names[-1])


def _two_path():
    """S -> (A | B) -> T with asymmetric probabilities."""
    g = nx.DiGraph()
    g.add_node("S", p=0.01)
    g.add_node("A", p=0.1)
    g.add_node("B", p=0.3)
    g.add_node("T", p=0.0)
    g.add_edges_from([("S", "A"), ("S", "B"), ("A", "T"), ("B", "T")])
    return ReliabilityProblem(g, ("S",), "T")


class TestBirnbaum:
    def test_series_birnbaum_matches_derivative(self):
        """For a series system, I_B(i) = prod_{j != i} (1 - p_j)."""
        probs = {"a": 0.1, "b": 0.2, "c": 0.3}
        prob = _series(probs)
        measures = importance_measures(prob)
        for node, p in probs.items():
            expected = 1.0
            for other, q in probs.items():
                if other != node:
                    expected *= 1.0 - q
            assert measures[node].birnbaum == pytest.approx(expected), node

    def test_finite_difference_consistency(self):
        """I_B numerically equals dr/dp via finite differences."""
        prob = _two_path()
        measures = importance_measures(prob)
        eps = 1e-7
        for node, m in measures.items():
            base_p = prob.graph.nodes[node]["p"]
            prob.graph.nodes[node]["p"] = base_p + eps
            r_plus = failure_probability(prob)
            prob.graph.nodes[node]["p"] = base_p - eps
            r_minus = failure_probability(prob)
            prob.graph.nodes[node]["p"] = base_p
            derivative = (r_plus - r_minus) / (2 * eps)
            assert m.birnbaum == pytest.approx(derivative, rel=1e-4), node

    def test_single_point_of_failure_dominates(self):
        prob = _two_path()
        measures = importance_measures(prob)
        # S is a cut vertex: far more important than either redundant branch.
        assert measures["S"].birnbaum > measures["A"].birnbaum
        assert measures["S"].birnbaum > measures["B"].birnbaum


class TestOtherMeasures:
    def test_improvement_potential_bounds(self):
        prob = _two_path()
        r = failure_probability(prob)
        for m in importance_measures(prob).values():
            assert 0.0 <= m.improvement_potential <= r + 1e-15

    def test_criticality_sums_reasonably(self):
        # Series system: criticalities are each p_i * prod(1-p_j)/r; their
        # sum is <= 1 and close to 1 for small p.
        prob = _series({"a": 1e-3, "b": 1e-3, "c": 1e-3})
        total = sum(m.criticality for m in importance_measures(prob).values())
        assert 0.9 <= total <= 1.0 + 1e-9

    def test_fussell_vesely_in_unit_interval(self):
        prob = _two_path()
        for m in importance_measures(prob).values():
            assert 0.0 <= m.fussell_vesely <= 1.0

    def test_perfect_components_skipped(self):
        prob = _two_path()
        assert "T" not in importance_measures(prob)  # p = 0

    def test_disconnected_problem_empty(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        prob = ReliabilityProblem(g, ("S",), "T")
        assert importance_measures(prob) == {}


class TestRanking:
    def test_ranked_by_birnbaum(self):
        prob = _two_path()
        ranked = ranked_importance(prob, "birnbaum")
        values = [m.birnbaum for m in ranked]
        assert values == sorted(values, reverse=True)
        assert ranked[0].component == "S"

    def test_top_limits_output(self):
        prob = _two_path()
        assert len(ranked_importance(prob, "birnbaum", top=1)) == 1

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            ranked_importance(_two_path(), "voodoo")

    def test_rank_by_each_measure(self):
        prob = _two_path()
        for measure in ("criticality", "improvement_potential", "fussell_vesely"):
            ranked = ranked_importance(prob, measure)
            values = [getattr(m, measure) for m in ranked]
            assert values == sorted(values, reverse=True), measure
