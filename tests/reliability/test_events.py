"""Tests for the failure model plumbing: problems, restriction, edge
failures, path probabilities, Monte-Carlo estimator mechanics."""

import math

import networkx as nx
import pytest

from repro.reliability import (
    MonteCarloEstimate,
    ReliabilityProblem,
    failure_probability,
    failure_probability_mc,
    graph_with_edge_failures,
    path_failure_probability,
)


def _graph(edges, probs):
    g = nx.DiGraph()
    for n, p in probs.items():
        g.add_node(n, p=p)
    g.add_edges_from(edges)
    return g


class TestReliabilityProblem:
    def test_missing_probability_rejected(self):
        g = nx.DiGraph()
        g.add_node("a")
        with pytest.raises(ValueError):
            ReliabilityProblem(g, ("a",), "a")

    def test_invalid_probability_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", p=1.5)
        with pytest.raises(ValueError):
            ReliabilityProblem(g, ("a",), "a")

    def test_unknown_sink_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", p=0.1)
        with pytest.raises(ValueError):
            ReliabilityProblem(g, ("a",), "zzz")

    def test_sources_sorted(self):
        g = _graph([], {"b": 0.1, "a": 0.1})
        prob = ReliabilityProblem(g, ("b", "a"), "a")
        assert prob.sources == ("a", "b")

    def test_relevant_subgraph_drops_side_branches(self):
        g = _graph(
            [("S", "A"), ("A", "T"), ("S", "X"), ("Y", "T")],
            {n: 0.1 for n in "SATXY"},
        )
        prob = ReliabilityProblem(g, ("S",), "T")
        sub = prob.relevant_subgraph()
        assert set(sub.nodes) == {"S", "A", "T"}  # X dead-end, Y unsourced

    def test_restricted_keeps_sink_when_disconnected(self):
        g = _graph([], {"S": 0.1, "T": 0.2})
        prob = ReliabilityProblem(g, ("S",), "T").restricted()
        assert prob.sink == "T"
        assert prob.sources == ()


class TestEdgeFailures:
    def test_perfect_edges_passthrough(self):
        g = _graph([("a", "b")], {"a": 0.1, "b": 0.1})
        out = graph_with_edge_failures(g)
        assert out.has_edge("a", "b")
        assert set(out.nodes) == {"a", "b"}

    def test_unreliable_edge_spliced(self):
        g = _graph([("a", "b")], {"a": 0.1, "b": 0.1})
        g["a"]["b"]["p"] = 0.05
        out = graph_with_edge_failures(g)
        assert not out.has_edge("a", "b")
        assert out.has_edge("a", "a@b") and out.has_edge("a@b", "b")
        assert out.nodes["a@b"]["p"] == 0.05

    def test_edge_failure_probability_semantics(self):
        # a->b with failing edge == 3-node series system.
        g = _graph([("a", "b")], {"a": 0.1, "b": 0.2})
        g["a"]["b"]["p"] = 0.3
        spliced = graph_with_edge_failures(g)
        prob = ReliabilityProblem(spliced, ("a",), "b")
        expected = 1 - (0.9 * 0.8 * 0.7)
        assert failure_probability(prob, method="bdd") == pytest.approx(expected)

    def test_name_collision_detected(self):
        g = _graph([("a", "b")], {"a": 0.1, "b": 0.1, "a@b": 0.1})
        g.add_node("a@b", p=0.1)
        g["a"]["b"]["p"] = 0.5
        with pytest.raises(ValueError):
            graph_with_edge_failures(g)


class TestPathFailureProbability:
    def test_series_formula(self):
        g = _graph([("a", "b"), ("b", "c")], {"a": 0.1, "b": 0.2, "c": 0.0})
        rho = path_failure_probability(g, ["a", "b", "c"])
        assert rho == pytest.approx(1 - 0.9 * 0.8)

    def test_eps_magnitude(self):
        """Table I values give rho ~= 8e-4 on a 4-failing-component path."""
        p = 2e-4
        g = _graph(
            [("g", "b"), ("b", "r"), ("r", "d"), ("d", "l")],
            {"g": p, "b": p, "r": p, "d": p, "l": 0.0},
        )
        rho = path_failure_probability(g, ["g", "b", "r", "d", "l"])
        assert rho == pytest.approx(8e-4, rel=1e-3)


class TestMonteCarlo:
    def test_certain_failure_when_disconnected(self):
        g = _graph([], {"S": 0.0, "T": 0.0})
        prob = ReliabilityProblem(g, ("S",), "T")
        est = failure_probability_mc(prob, samples=100, seed=0)
        assert est.estimate == 1.0

    def test_certain_success_when_perfect(self):
        g = _graph([("S", "T")], {"S": 0.0, "T": 0.0})
        prob = ReliabilityProblem(g, ("S",), "T")
        est = failure_probability_mc(prob, samples=500, seed=0)
        assert est.estimate == 0.0

    def test_deterministic_given_seed(self):
        g = _graph([("S", "T")], {"S": 0.3, "T": 0.3})
        prob = ReliabilityProblem(g, ("S",), "T")
        a = failure_probability_mc(prob, samples=10_000, seed=42)
        b = failure_probability_mc(prob, samples=10_000, seed=42)
        assert a.estimate == b.estimate

    def test_interval_contains_truth(self):
        g = _graph([("S", "T")], {"S": 0.3, "T": 0.1})
        prob = ReliabilityProblem(g, ("S",), "T")
        est = failure_probability_mc(prob, samples=50_000, seed=7)
        truth = 1 - 0.7 * 0.9
        assert est.contains(truth)
        lo, hi = est.interval()
        assert 0.0 <= lo <= est.estimate <= hi <= 1.0

    def test_batching_equivalent(self):
        g = _graph([("S", "M"), ("M", "T")], {"S": 0.2, "M": 0.2, "T": 0.2})
        prob = ReliabilityProblem(g, ("S",), "T")
        small_batch = failure_probability_mc(prob, samples=4_000, seed=5, batch=1_000)
        one_batch = failure_probability_mc(prob, samples=4_000, seed=5, batch=4_000)
        # Different batching draws different streams; both must be near truth.
        truth = 1 - 0.8**3
        assert abs(small_batch.estimate - truth) < 0.05
        assert abs(one_batch.estimate - truth) < 0.05

    def test_estimate_dataclass(self):
        est = MonteCarloEstimate(estimate=0.5, stderr=0.01, samples=100, failures=50)
        assert est.contains(0.5)
        assert not est.contains(0.9)
