"""Cross-checking the exact reliability engines against each other, against
closed forms, and against Monte-Carlo — including the paper's Example 1."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    ReliabilityProblem,
    cross_check,
    failure_probability,
    failure_probability_bdd,
    failure_probability_factoring,
    failure_probability_ie,
    failure_probability_mc,
    failure_probability_sdp,
    minimal_cut_sets,
    minimal_path_sets,
)

ENGINES = ["bdd", "factoring", "sdp", "ie"]


def _series(p, n=3):
    """S -> m1 -> ... -> T chain, every node failing with probability p."""
    g = nx.DiGraph()
    names = ["S"] + [f"m{i}" for i in range(n)] + ["T"]
    for name in names:
        g.add_node(name, p=p)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return ReliabilityProblem(g, ("S",), "T")


def _parallel(p, k=3):
    """k disjoint S_i -> T paths; T fails too."""
    g = nx.DiGraph()
    g.add_node("T", p=p)
    sources = []
    for i in range(k):
        g.add_node(f"S{i}", p=p)
        g.add_node(f"m{i}", p=p)
        g.add_edge(f"S{i}", f"m{i}")
        g.add_edge(f"m{i}", "T")
        sources.append(f"S{i}")
    return ReliabilityProblem(g, tuple(sources), "T")


class TestClosedForms:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("p", [0.0, 1e-4, 0.05, 0.5, 1.0])
    def test_series_chain(self, engine, p):
        prob = _series(p, n=2)
        expected = 1.0 - (1.0 - p) ** 4  # 4 nodes in series
        assert failure_probability(prob, method=engine) == pytest.approx(
            expected, abs=1e-12
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_parallel_paths(self, engine):
        p = 0.1
        prob = _parallel(p, k=3)
        path_fail = 1.0 - (1.0 - p) ** 2  # S_i and m_i
        expected = p + (1.0 - p) * path_fail**3
        assert failure_probability(prob, method=engine) == pytest.approx(expected)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_example1_of_paper(self, engine):
        """Fig. 1b: r_L = p_L + (1-p_L){p_D + (1-p_D)[p_B + (1-p_B) p_G]}^2."""
        p = 2e-4
        g = nx.DiGraph()
        for n in ("G1", "G2", "B1", "B2", "D1", "D2", "L"):
            g.add_node(n, p=p)
        g.add_edges_from(
            [("G1", "B1"), ("B1", "D1"), ("D1", "L"), ("G2", "B2"), ("B2", "D2"), ("D2", "L")]
        )
        prob = ReliabilityProblem(g, ("G1", "G2"), "L")
        inner = p + (1 - p) * (p + (1 - p) * p)
        expected = p + (1 - p) * inner**2
        assert failure_probability(prob, method=engine) == pytest.approx(
            expected, rel=1e-10
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_disconnected_sink_fails_certainly(self, engine):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        prob = ReliabilityProblem(g, ("S",), "T")
        assert failure_probability(prob, method=engine) == 1.0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_source_is_sink(self, engine):
        g = nx.DiGraph()
        g.add_node("S", p=0.2)
        prob = ReliabilityProblem(g, ("S",), "S")
        assert failure_probability(prob, method=engine) == pytest.approx(0.2)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_perfect_components_never_fail(self, engine):
        prob = _series(0.0, n=3)
        assert failure_probability(prob, method=engine) == 0.0


class TestPrecisionAtTinyProbabilities:
    def test_bdd_no_cancellation(self):
        # Series of 4 components at p = 1e-12: r = ~4e-12 must come out with
        # full relative precision from the additive BDD evaluation.
        p = 1e-12
        prob = _series(p, n=2)
        r = failure_probability_bdd(prob)
        expected = 4 * p - 6 * p**2  # expansion of 1-(1-p)^4
        assert r == pytest.approx(expected, rel=1e-9)

    def test_redundant_architecture_tiny_r(self):
        p = 2e-4
        prob = _parallel(p, k=3)
        r = failure_probability_bdd(prob)
        # dominated by p (sink) — cross-engine agreement at tiny values
        assert failure_probability_factoring(prob) == pytest.approx(r, rel=1e-9)


@st.composite
def random_dag_problem(draw):
    """Random layered DAGs with 2-3 layers and random probabilities."""
    layers = [draw(st.integers(1, 3)) for _ in range(draw(st.integers(1, 3)))]
    g = nx.DiGraph()
    prob_of = {}
    names_by_layer = []
    counter = 0
    for size in layers:
        names = []
        for _ in range(size):
            name = f"n{counter}"
            counter += 1
            p = draw(st.sampled_from([0.0, 0.05, 0.2, 0.5]))
            g.add_node(name, p=p)
            names.append(name)
        names_by_layer.append(names)
    g.add_node("T", p=draw(st.sampled_from([0.0, 0.1])))
    # edges between consecutive layers (each at least one outgoing)
    for a_layer, b_layer in zip(names_by_layer, names_by_layer[1:]):
        for a in a_layer:
            targets = draw(
                st.lists(st.sampled_from(b_layer), min_size=1, unique=True)
            )
            for b in targets:
                g.add_edge(a, b)
    for a in names_by_layer[-1]:
        if draw(st.booleans()):
            g.add_edge(a, "T")
    if not any(g.has_edge(a, "T") for a in names_by_layer[-1]):
        g.add_edge(names_by_layer[-1][0], "T")
    return ReliabilityProblem(g, tuple(names_by_layer[0]), "T")


@given(random_dag_problem())
@settings(max_examples=80, deadline=None)
def test_engines_agree_on_random_dags(problem):
    values = cross_check(problem, methods=ENGINES, tol=1e-9)
    assert all(0.0 <= v <= 1.0 for v in values.values())


@given(random_dag_problem())
@settings(max_examples=15, deadline=None)
def test_monte_carlo_brackets_exact(problem):
    exact = failure_probability_bdd(problem)
    mc = failure_probability_mc(problem, samples=40_000, seed=3)
    assert mc.contains(exact)


class TestPathAndCutSets:
    def test_minimality(self):
        g = nx.DiGraph()
        for n in ("S", "A", "B", "T"):
            g.add_node(n, p=0.1)
        g.add_edges_from([("S", "A"), ("A", "T"), ("S", "B"), ("B", "A")])
        prob = ReliabilityProblem(g, ("S",), "T")
        sets = minimal_path_sets(prob)
        # S->B->A->T is a superset of S->A->T: must be pruned.
        assert sets == [frozenset({"S", "A", "T"})]

    def test_cut_sets_hit_every_path(self):
        prob = _parallel(0.1, k=2)
        cuts = minimal_cut_sets(prob)
        paths = minimal_path_sets(prob)
        for cut in cuts:
            assert all(cut & ps for ps in paths)

    def test_cut_sets_of_disconnected(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        prob = ReliabilityProblem(g, ("S",), "T")
        assert minimal_cut_sets(prob) == [frozenset()]

    def test_series_cut_sets_are_singletons(self):
        prob = _series(0.1, n=2)
        cuts = minimal_cut_sets(prob)
        assert all(len(c) == 1 for c in cuts)
        assert len(cuts) == 4


class TestInclusionExclusionLimits:
    def test_too_many_paths_rejected(self):
        prob = _parallel(0.1, k=2)
        # monkey-ish: build a graph with > limit paths is expensive; instead
        # check the guard constant is respected via a direct call contract.
        from repro.reliability import inclusion_exclusion as ie

        assert ie._MAX_PATHS >= 10  # sanity: oracle usable on small systems


class TestCrossCheckFailureDetection:
    def test_cross_check_raises_on_disagreement(self):
        prob = _series(0.3, n=1)
        from repro.reliability import exact

        original = exact._ENGINES["sdp"]
        exact._ENGINES["sdp"] = lambda p: 0.123
        try:
            with pytest.raises(AssertionError):
                cross_check(prob, methods=("bdd", "sdp"))
        finally:
            exact._ENGINES["sdp"] = original
