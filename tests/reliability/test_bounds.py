"""Tests for Esary-Proschan bounds and the rare-event estimate."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.reliability import ReliabilityProblem, failure_probability
from repro.reliability.bounds import (
    ReliabilityBounds,
    rare_event_estimate,
    reliability_bounds,
)
from tests.reliability.test_engines import random_dag_problem


def _series(p, n=3):
    g = nx.DiGraph()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        g.add_node(name, p=p)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return ReliabilityProblem(g, (names[0],), names[-1])


def _parallel(p, k=2):
    g = nx.DiGraph()
    g.add_node("T", p=0.0)
    for i in range(k):
        g.add_node(f"S{i}", p=p)
        g.add_edge(f"S{i}", "T")
    return ReliabilityProblem(g, tuple(f"S{i}" for i in range(k)), "T")


class TestExactOnSpecialStructures:
    def test_series_bounds_are_tight(self):
        """A series system is both a single path set and singleton cuts:
        both bounds collapse onto the exact value."""
        prob = _series(0.1, n=3)
        bounds = reliability_bounds(prob)
        exact = failure_probability(prob)
        assert bounds.lower == pytest.approx(exact)
        assert bounds.upper == pytest.approx(exact)

    def test_parallel_bounds_are_tight(self):
        prob = _parallel(0.3, k=3)
        bounds = reliability_bounds(prob)
        exact = failure_probability(prob)
        assert bounds.lower == pytest.approx(exact)
        assert bounds.upper == pytest.approx(exact)

    def test_disconnected(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        prob = ReliabilityProblem(g, ("S",), "T")
        bounds = reliability_bounds(prob)
        assert bounds.lower == bounds.upper == 1.0
        assert rare_event_estimate(prob) == 1.0


class TestBracketProperty:
    @given(random_dag_problem())
    @settings(max_examples=80, deadline=None)
    def test_bracket_contains_exact(self, problem):
        bounds = reliability_bounds(problem)
        exact = failure_probability(problem)
        assert bounds.contains(exact), (
            f"[{bounds.lower}, {bounds.upper}] misses {exact}"
        )
        assert 0.0 <= bounds.lower <= bounds.upper <= 1.0

    @given(random_dag_problem())
    @settings(max_examples=60, deadline=None)
    def test_rare_event_upper_bounds_exact(self, problem):
        estimate = rare_event_estimate(problem)
        exact = failure_probability(problem)
        assert estimate >= exact - 1e-12


class TestRareEventAccuracy:
    def test_tight_at_small_p(self):
        prob = _series(1e-5, n=4)
        estimate = rare_event_estimate(prob)
        exact = failure_probability(prob)
        assert estimate == pytest.approx(exact, rel=1e-3)

    def test_counts_reported(self):
        prob = _parallel(0.2, k=2)
        bounds = reliability_bounds(prob)
        assert bounds.num_path_sets == 2
        assert bounds.num_cut_sets >= 1
        assert bounds.width >= 0.0
