"""Unit tests for the ROBDD engine itself."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import BDD


class TestConstruction:
    def test_var_and_terminals(self):
        bdd = BDD(["a", "b"])
        a = bdd.var("a")
        assert bdd.evaluate(a, {"a": True})
        assert not bdd.evaluate(a, {"a": False})

    def test_duplicate_order_rejected(self):
        with pytest.raises(ValueError):
            BDD(["a", "a"])

    def test_reduction_no_redundant_nodes(self):
        bdd = BDD(["a", "b"])
        a = bdd.var("a")
        # a OR a == a: apply must return the identical node (hash-consing).
        assert bdd.apply("or", a, a) == a

    def test_cube(self):
        bdd = BDD(["a", "b", "c"])
        cube = bdd.cube(["a", "c"])
        assert bdd.evaluate(cube, {"a": True, "b": False, "c": True})
        assert not bdd.evaluate(cube, {"a": True, "b": True, "c": False})

    def test_unknown_op_rejected(self):
        bdd = BDD(["a"])
        with pytest.raises(ValueError):
            bdd.apply("xor", 0, 1)


class TestSemantics:
    @pytest.mark.parametrize("op,fn", [("and", all), ("or", any)])
    def test_apply_truth_tables(self, op, fn):
        bdd = BDD(["a", "b", "c"])
        u = bdd.apply(op, bdd.var("a"), bdd.apply(op, bdd.var("b"), bdd.var("c")))
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", bits))
            assert bdd.evaluate(u, assignment) == fn(bits)

    def test_negate(self):
        bdd = BDD(["a", "b"])
        f = bdd.apply("and", bdd.var("a"), bdd.var("b"))
        g = bdd.negate(f)
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip("ab", bits))
            assert bdd.evaluate(g, assignment) == (not all(bits))

    def test_from_path_sets(self):
        bdd = BDD(["a", "b", "c", "d"])
        root = bdd.from_path_sets([frozenset("ab"), frozenset("cd")])
        assert bdd.evaluate(root, {"a": True, "b": True, "c": False, "d": False})
        assert bdd.evaluate(root, {"a": False, "b": False, "c": True, "d": True})
        assert not bdd.evaluate(root, {"a": True, "b": False, "c": True, "d": False})

    def test_size_counts_reachable_nodes(self):
        bdd = BDD(["a", "b"])
        f = bdd.apply("or", bdd.var("a"), bdd.var("b"))
        assert bdd.size(f) == 2
        assert bdd.size(0) == 0


class TestProbability:
    def test_prob_one_plus_prob_zero_is_one(self):
        bdd = BDD(["a", "b", "c"])
        root = bdd.from_path_sets([frozenset("ab"), frozenset("bc")])
        up = {"a": 0.9, "b": 0.8, "c": 0.7}
        assert bdd.prob_one(root, up) + bdd.prob_zero(root, up) == pytest.approx(1.0)

    def test_single_var_probability(self):
        bdd = BDD(["a"])
        assert bdd.prob_one(bdd.var("a"), {"a": 0.3}) == pytest.approx(0.3)

    def test_terminal_probabilities(self):
        bdd = BDD(["a"])
        assert bdd.prob_one(1, {}) == 1.0
        assert bdd.prob_one(0, {}) == 0.0
        assert bdd.prob_zero(0, {}) == 1.0

    def test_missing_vars_default_certain(self):
        bdd = BDD(["a", "b"])
        f = bdd.apply("and", bdd.var("a"), bdd.var("b"))
        # b missing from up_prob: treated as always-up.
        assert bdd.prob_one(f, {"a": 0.25}) == pytest.approx(0.25)

    def test_invalid_terminal(self):
        bdd = BDD(["a"])
        with pytest.raises(ValueError):
            bdd.prob_reaching(bdd.var("a"), 2, {})


@given(
    st.lists(
        st.frozensets(st.sampled_from("abcd"), min_size=1, max_size=3),
        min_size=1,
        max_size=4,
    ),
    st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4),
)
@settings(max_examples=100, deadline=None)
def test_prob_matches_brute_force(path_sets, probs):
    """P(f=1) from the BDD equals brute-force enumeration over assignments."""
    order = list("abcd")
    up = dict(zip(order, probs))
    bdd = BDD(order)
    root = bdd.from_path_sets(path_sets)

    brute = 0.0
    for bits in itertools.product([False, True], repeat=4):
        assignment = dict(zip(order, bits))
        if any(all(assignment[v] for v in ps) for ps in path_sets):
            weight = 1.0
            for var, bit in assignment.items():
                weight *= up[var] if bit else 1.0 - up[var]
            brute += weight
    assert bdd.prob_one(root, up) == pytest.approx(brute, abs=1e-12)
