"""Tests for symbolic failure polynomials (the paper's series expansions)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    ReliabilityProblem,
    failure_polynomial,
    failure_probability,
    minimal_cut_sets,
)


def _series_chain(n, p=0.01):
    g = nx.DiGraph()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        g.add_node(name, p=p)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return ReliabilityProblem(g, (names[0],), names[-1])


def _example1(p=0.01):
    g = nx.DiGraph()
    for n in ("G1", "G2", "B1", "B2", "D1", "D2", "L"):
        g.add_node(n, p=p)
    for chain in (("G1", "B1", "D1", "L"), ("G2", "B2", "D2", "L")):
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b)
    return ReliabilityProblem(g, ("G1", "G2"), "L")


class TestPaperExpansions:
    def test_example1_series(self):
        """The paper: r_L = p + 9p^2 + O(p^3)."""
        poly = failure_polynomial(_example1(), max_degree=2)
        assert poly.coefficient(0) == pytest.approx(0.0)
        assert poly.coefficient(1) == pytest.approx(1.0)
        assert poly.coefficient(2) == pytest.approx(9.0)

    def test_series_chain_linear_coefficient_counts_components(self):
        # 1-(1-p)^n = n p - C(n,2) p^2 + ...
        poly = failure_polynomial(_series_chain(4), max_degree=2)
        assert poly.coefficient(1) == pytest.approx(4.0)
        assert poly.coefficient(2) == pytest.approx(-6.0)

    def test_leading_term_is_min_cut(self):
        """Lowest degree = min cut size; coefficient = #cuts of that size."""
        prob = _example1()
        poly = failure_polynomial(prob, max_degree=3)
        degree, coeff = poly.leading_term()
        cuts = minimal_cut_sets(prob)
        min_size = min(len(c) for c in cuts)
        count = sum(1 for c in cuts if len(c) == min_size)
        assert degree == min_size == 1  # the load itself
        assert coeff == pytest.approx(count)

    def test_min_cut_two_architecture(self):
        # remove the load's own failure: min cut becomes size 2 (9 cuts).
        g = _example1().graph.copy()
        g.nodes["L"]["p"] = 0.0
        prob = ReliabilityProblem(g, ("G1", "G2"), "L")
        poly = failure_polynomial(prob, max_degree=2)
        degree, coeff = poly.leading_term()
        assert degree == 2
        assert coeff == pytest.approx(9.0)


class TestNumericalConsistency:
    @pytest.mark.parametrize("p", [1e-5, 1e-4, 1e-3])
    def test_polynomial_approximates_exact(self, p):
        prob = _example1(p)
        poly = failure_polynomial(prob, max_degree=3)
        exact = failure_probability(prob)
        assert poly(p) == pytest.approx(exact, rel=1e-6)

    def test_truncation_error_shrinks_with_degree(self):
        p = 0.05
        prob = _example1(p)
        exact = failure_probability(prob)
        errors = [
            abs(failure_polynomial(prob, max_degree=d)(p) - exact)
            for d in (1, 2, 4, 6)
        ]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-6

    def test_full_degree_is_exact(self):
        prob = _series_chain(3, p=0.3)
        poly = failure_polynomial(prob, max_degree=3)
        assert poly(0.3) == pytest.approx(failure_probability(prob), abs=1e-12)

    def test_disconnected_constant_one(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        prob = ReliabilityProblem(g, ("S",), "T")
        poly = failure_polynomial(prob, max_degree=2)
        assert poly.coefficient(0) == 1.0

    def test_perfect_components_excluded_from_expansion(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("M", p=0.0)  # perfect mid component
        g.add_node("T", p=0.1)
        g.add_edges_from([("S", "M"), ("M", "T")])
        prob = ReliabilityProblem(g, ("S",), "T")
        poly = failure_polynomial(prob, max_degree=2)
        # 1-(1-p)^2 = 2p - p^2: only two imperfect comps participate
        assert poly.coefficient(1) == pytest.approx(2.0)
        assert poly.coefficient(2) == pytest.approx(-1.0)

    def test_repr_mentions_terms(self):
        poly = failure_polynomial(_example1(), max_degree=2)
        assert "p^2" in repr(poly)


@given(st.integers(2, 5), st.floats(1e-4, 0.2))
@settings(max_examples=40, deadline=None)
def test_series_chain_property(n, p):
    """Polynomial at full degree equals the closed form for chains."""
    prob = _series_chain(n, p)
    poly = failure_polynomial(prob, max_degree=n)
    expected = 1.0 - (1.0 - p) ** n
    assert poly(p) == pytest.approx(expected, rel=1e-9)
