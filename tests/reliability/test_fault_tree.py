"""Tests for the FTA engine and the eq.-5 architecture bridge."""

import networkx as nx
import pytest

from repro.arch import Architecture, ArchitectureTemplate, ComponentSpec, Library, Role
from repro.reliability import ReliabilityProblem, failure_probability
from repro.reliability.fault_tree import (
    BasicEvent,
    FaultTree,
    Gate,
    fault_tree_from_architecture,
    fault_tree_from_problem,
)


class TestConstruction:
    def test_basic_event_validation(self):
        with pytest.raises(ValueError):
            BasicEvent("e", 1.5)

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate("g", "xor", ("a",))
        with pytest.raises(ValueError):
            Gate("g", "and", ())
        with pytest.raises(ValueError):
            Gate("g", "k_of_n", ("a", "b"), k=3)

    def test_duplicate_names_rejected(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        with pytest.raises(ValueError):
            tree.add_event("a", 0.2)
        with pytest.raises(ValueError):
            tree.add_gate("a", "or", ["a"])

    def test_unknown_input_detected(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        tree.add_gate("top", "or", ["a", "ghost"])
        tree.set_top("top")
        with pytest.raises(ValueError, match="unknown"):
            tree.validate()

    def test_missing_top_detected(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        with pytest.raises(ValueError, match="top"):
            tree.validate()

    def test_cycle_detected(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        tree.gates["g1"] = Gate("g1", "or", ("g2",))
        tree.gates["g2"] = Gate("g2", "or", ("g1",))
        tree.set_top("g1")
        with pytest.raises(ValueError, match="cycle"):
            tree.validate()


class TestProbabilities:
    def test_or_gate(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        tree.add_event("b", 0.2)
        tree.add_gate("top", "or", ["a", "b"])
        tree.set_top("top")
        assert tree.top_event_probability() == pytest.approx(1 - 0.9 * 0.8)

    def test_and_gate(self):
        tree = FaultTree()
        tree.add_event("a", 0.1)
        tree.add_event("b", 0.2)
        tree.add_gate("top", "and", ["a", "b"])
        tree.set_top("top")
        assert tree.top_event_probability() == pytest.approx(0.02)

    def test_k_of_n_gate(self):
        tree = FaultTree()
        for name in "abc":
            tree.add_event(name, 0.5)
        tree.add_gate("top", "k_of_n", ["a", "b", "c"], k=2)
        tree.set_top("top")
        # P(at least 2 of 3 at 0.5) = 4/8 = 0.5
        assert tree.top_event_probability() == pytest.approx(0.5)

    def test_shared_subtree_no_double_counting(self):
        """Shared events must NOT be treated as independent gate inputs."""
        tree = FaultTree()
        tree.add_event("shared", 0.5)
        tree.add_gate("g1", "or", ["shared"])
        tree.add_gate("g2", "or", ["shared"])
        tree.add_gate("top", "and", ["g1", "g2"])
        tree.set_top("top")
        # top = shared AND shared = shared: probability 0.5, not 0.25.
        assert tree.top_event_probability() == pytest.approx(0.5)

    def test_top_can_be_basic_event(self):
        tree = FaultTree()
        tree.add_event("a", 0.3)
        tree.set_top("a")
        assert tree.top_event_probability() == pytest.approx(0.3)


class TestMinimalCutSets:
    def test_or_of_ands(self):
        tree = FaultTree()
        for name in "abcd":
            tree.add_event(name, 0.1)
        tree.add_gate("g1", "and", ["a", "b"])
        tree.add_gate("g2", "and", ["c", "d"])
        tree.add_gate("top", "or", ["g1", "g2"])
        tree.set_top("top")
        cuts = tree.minimal_cut_sets()
        assert set(cuts) == {frozenset("ab"), frozenset("cd")}

    def test_absorption(self):
        # top = a OR (a AND b): minimal cuts = {a} only.
        tree = FaultTree()
        tree.add_event("a", 0.1)
        tree.add_event("b", 0.1)
        tree.add_gate("g", "and", ["a", "b"])
        tree.add_gate("top", "or", ["a", "g"])
        tree.set_top("top")
        assert tree.minimal_cut_sets() == [frozenset("a")]


def _two_path_problem(p=0.01):
    g = nx.DiGraph()
    for n in ("S1", "S2", "M1", "M2", "T"):
        g.add_node(n, p=p)
    g.add_edges_from([("S1", "M1"), ("S2", "M2"), ("M1", "T"), ("M2", "T")])
    return ReliabilityProblem(g, ("S1", "S2"), "T")


def _shared_source_problem(p=0.05):
    """One source feeding two mids: R_T's subtrees share fail[S]."""
    g = nx.DiGraph()
    for n in ("S", "M1", "M2", "T"):
        g.add_node(n, p=p)
    g.add_edges_from([("S", "M1"), ("S", "M2"), ("M1", "T"), ("M2", "T")])
    return ReliabilityProblem(g, ("S",), "T")


class TestEquation5Bridge:
    def test_two_path_matches_exact_engine(self):
        problem = _two_path_problem()
        tree = fault_tree_from_problem(problem)
        assert tree.top_event_probability() == pytest.approx(
            failure_probability(problem), rel=1e-12
        )

    def test_shared_source_matches_exact_engine(self):
        """The case naive FTA gets wrong: shared upstream dependency."""
        problem = _shared_source_problem()
        tree = fault_tree_from_problem(problem)
        assert tree.top_event_probability() == pytest.approx(
            failure_probability(problem), rel=1e-12
        )

    def test_cut_sets_match_graph_cut_sets(self):
        from repro.reliability import minimal_cut_sets

        problem = _two_path_problem()
        tree_cuts = {
            frozenset(n[len("fail["):-1] for n in cut)
            for cut in fault_tree_from_problem(problem).minimal_cut_sets()
        }
        graph_cuts = set(minimal_cut_sets(problem))
        assert tree_cuts == graph_cuts

    def test_disconnected_sink_certain(self):
        g = nx.DiGraph()
        g.add_node("S", p=0.1)
        g.add_node("T", p=0.1)
        problem = ReliabilityProblem(g, ("S",), "T")
        tree = fault_tree_from_problem(problem)
        assert tree.top_event_probability() == 1.0

    def test_from_architecture_with_sibling_expansion(self):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("G1", "gen", failure_prob=0.01, role=Role.SOURCE))
        lib.add(ComponentSpec("B1", "bus", failure_prob=0.01))
        lib.add(ComponentSpec("B2", "bus", failure_prob=0.01))
        lib.add(ComponentSpec("T", "load", role=Role.SINK))
        lib.set_type_order(["gen", "bus", "load"])
        t = ArchitectureTemplate(lib, ["G1", "B1", "B2", "T"])
        t.allow_edge("G1", "B1")
        t.allow_bidirectional("B1", "B2")
        t.allow_edge("B2", "T")
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        arch = Architecture(t, [e("G1", "B1"), e("B1", "B2"), e("B2", "B1"),
                                e("B2", "T")])
        tree = fault_tree_from_architecture(arch, "T")
        from repro.reliability import problem_from_architecture

        expected = failure_probability(problem_from_architecture(arch, "T"))
        assert tree.top_event_probability() == pytest.approx(expected, rel=1e-12)
