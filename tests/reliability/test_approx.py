"""Tests for the approximate reliability algebra (§IV-A) and Theorem 2."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    Architecture,
    ArchitectureTemplate,
    ComponentSpec,
    Library,
    Role,
    functional_link,
)
from repro.reliability import (
    ReliabilityProblem,
    approximate_failure,
    approximate_failure_from_link,
    failure_probability,
    single_path_failure,
    theorem2_bound,
)


def _example1_graph(p):
    g = nx.DiGraph()
    for n, t in [("G1", "gen"), ("G2", "gen"), ("B1", "bus"), ("B2", "bus"),
                 ("D1", "dc"), ("D2", "dc"), ("L", "load")]:
        g.add_node(n, p=p, ctype=t)
    g.add_edges_from(
        [("G1", "B1"), ("B1", "D1"), ("D1", "L"), ("G2", "B2"), ("B2", "D2"), ("D2", "L")]
    )
    return g


class TestEquation7:
    def test_example1_r_tilde(self):
        """Paper: r~_L = p_L + 2 p_D^2 + 2 p_B^2 + 2 p_G^2 = p + 6 p^2."""
        p = 0.01
        link = functional_link(_example1_graph(p), ["G1", "G2"], "L")
        result = approximate_failure_from_link(
            link, {"gen": p, "bus": p, "dc": p, "load": p}
        )
        assert result.r_tilde == pytest.approx(p + 6 * p * p)
        assert result.redundancy == {"gen": 2, "bus": 2, "dc": 2, "load": 1}
        assert result.num_paths == 2

    def test_term_breakdown(self):
        p = 0.01
        link = functional_link(_example1_graph(p), ["G1", "G2"], "L")
        result = approximate_failure_from_link(
            link, {"gen": p, "bus": p, "dc": p, "load": p}
        )
        assert result.term("load") == pytest.approx(p)
        assert result.term("gen") == pytest.approx(2 * p * p)
        assert result.jointly_implementing == ["bus", "dc", "gen", "load"]

    def test_non_implementing_type_excluded(self):
        # Direct G->L edge bypasses buses: bus no longer jointly implements.
        g = _example1_graph(0.01)
        g.add_edge("G1", "L")
        link = functional_link(g, ["G1", "G2"], "L")
        result = approximate_failure_from_link(
            link, {"gen": 0.01, "bus": 0.01, "dc": 0.01, "load": 0.01}
        )
        assert "bus" not in result.redundancy
        assert "dc" not in result.redundancy

    def test_reduced_paths_collapse_adjacent_same_type(self):
        # S -> B1 -> B2 -> T: adjacent same-type pair counts once (h=1).
        g = nx.DiGraph()
        for n, t in [("S", "src"), ("B1", "bus"), ("B2", "bus"), ("T", "snk")]:
            g.add_node(n, p=0.1, ctype=t)
        g.add_edges_from([("S", "B1"), ("B1", "B2"), ("B2", "T")])
        link = functional_link(g, ["S"], "T")
        result = approximate_failure_from_link(link, {"src": 0.1, "bus": 0.1, "snk": 0.1})
        assert result.redundancy["bus"] == 1


class TestTheorem2:
    def test_example1_bound_value(self):
        # m = 4 types, f = 2 paths, |mu| = 4 nodes each: bound = 8/16 = 0.5.
        link = functional_link(_example1_graph(0.01), ["G1", "G2"], "L")
        assert theorem2_bound(link) == pytest.approx(0.5)

    def test_empty_link(self):
        g = nx.DiGraph()
        g.add_node("T", p=0.1, ctype="snk")
        link = functional_link(g, [], "T")
        assert theorem2_bound(link) == 0.0

    @pytest.mark.parametrize("p", [1e-4, 1e-3, 1e-2, 0.05])
    def test_bound_holds_on_example1(self, p):
        g = _example1_graph(p)
        link = functional_link(g, ["G1", "G2"], "L")
        result = approximate_failure_from_link(
            link, {t: p for t in ("gen", "bus", "dc", "load")}
        )
        prob = ReliabilityProblem(g, ("G1", "G2"), "L")
        r_exact = failure_probability(prob, method="bdd")
        assert result.guaranteed_upper_bound(r_exact)


@st.composite
def random_two_layer_architecture(draw):
    """Random bipartite-ish source->mid->sink graphs with typed nodes."""
    n_src = draw(st.integers(1, 3))
    n_mid = draw(st.integers(1, 3))
    p = draw(st.sampled_from([1e-3, 1e-2, 0.05]))
    g = nx.DiGraph()
    for i in range(n_src):
        g.add_node(f"S{i}", p=p, ctype="src")
    for i in range(n_mid):
        g.add_node(f"M{i}", p=p, ctype="mid")
    g.add_node("T", p=p, ctype="snk")
    connected_mids = set()
    for i in range(n_src):
        targets = draw(st.lists(st.integers(0, n_mid - 1), min_size=1, unique=True))
        for j in targets:
            g.add_edge(f"S{i}", f"M{j}")
            connected_mids.add(j)
    for j in sorted(connected_mids):
        if draw(st.booleans()) or j == min(connected_mids):
            g.add_edge(f"M{j}", "T")
    return g, [f"S{i}" for i in range(n_src)], p


@given(random_two_layer_architecture())
@settings(max_examples=100, deadline=None)
def test_theorem2_bound_on_random_architectures(case):
    """r~ / r >= m f / M_f on every random layered architecture."""
    g, sources, p = case
    link = functional_link(g, sources, "T")
    if not link.paths:
        return  # disconnected: algebra degenerates to r~ = 1, nothing to check
    result = approximate_failure_from_link(link, {"src": p, "mid": p, "snk": p})
    prob = ReliabilityProblem(g, tuple(sources), "T")
    r_exact = failure_probability(prob, method="bdd")
    assert result.guaranteed_upper_bound(r_exact), (
        f"ratio {result.r_tilde / r_exact} < bound {result.bound_ratio}"
    )


class TestArchitectureLevelHelpers:
    @pytest.fixture
    def arch(self):
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("G1", "gen", failure_prob=0.01, role=Role.SOURCE))
        lib.add(ComponentSpec("G2", "gen", failure_prob=0.01, role=Role.SOURCE))
        lib.add(ComponentSpec("B1", "bus", failure_prob=0.01))
        lib.add(ComponentSpec("B2", "bus", failure_prob=0.01))
        lib.add(ComponentSpec("T", "load", failure_prob=0.0, role=Role.SINK))
        lib.set_type_order(["gen", "bus", "load"])
        t = ArchitectureTemplate(lib, ["G1", "G2", "B1", "B2", "T"])
        for gsrc in ("G1", "G2"):
            for b in ("B1", "B2"):
                t.allow_edge(gsrc, b)
        t.allow_edge("B1", "T")
        t.allow_edge("B2", "T")
        e = lambda a, b: (t.index_of(a), t.index_of(b))
        return Architecture(
            t, [e("G1", "B1"), e("G2", "B2"), e("B1", "T"), e("B2", "T")]
        )

    def test_approximate_failure_on_architecture(self, arch):
        result = approximate_failure(arch, "T")
        assert result.redundancy == {"gen": 2, "bus": 2, "load": 1}
        assert result.r_tilde == pytest.approx(2 * 0.01**2 + 2 * 0.01**2)

    def test_single_path_failure(self, arch):
        rho = single_path_failure(arch, "T")
        assert rho == pytest.approx(1 - (1 - 0.01) ** 2)  # gen + bus on path

    def test_disconnected_sink(self, arch):
        bare = Architecture(arch.template, [])
        result = approximate_failure(bare, "T")
        assert result.r_tilde == 1.0
        assert result.num_paths == 0
        assert single_path_failure(bare, "T") == 1.0


class TestShortestPathDeterminism:
    """_shortest_path must not depend on enumeration order (regression:
    `min(..., key=len)` used to break length ties by list position)."""

    def test_tie_broken_lexicographically(self):
        from repro.reliability.approx import _shortest_path

        paths = [("S", "b", "T"), ("S", "a", "T"), ("S", "c", "T")]
        assert _shortest_path(paths) == ("S", "a", "T")

    def test_invariant_under_permutation(self):
        from itertools import permutations

        from repro.reliability.approx import _shortest_path

        paths = [("S", "x", "T"), ("S", "a", "q", "T"), ("S", "m", "T")]
        picks = {_shortest_path(list(p)) for p in permutations(paths)}
        assert picks == {("S", "m", "T")}

    def test_rho_stable_on_equal_length_paths(self):
        # Two equal-length disjoint paths with different probabilities:
        # rho must come from the same (canonical) path every time.
        lib = Library(switch_cost=1.0)
        lib.add(ComponentSpec("G1", "gen", cost=1, capacity=10,
                              failure_prob=0.2, role=Role.SOURCE))
        lib.add(ComponentSpec("G2", "gen", cost=1, capacity=10,
                              failure_prob=0.1, role=Role.SOURCE))
        lib.add(ComponentSpec("T", "load", demand=1, role=Role.SINK))
        lib.set_type_order(["gen", "load"])
        t = ArchitectureTemplate(lib, ["G1", "G2", "T"])
        t.allow_edge("G1", "T")
        t.allow_edge("G2", "T")
        arch = Architecture(t, t.allowed_edges)
        rho = single_path_failure(arch, "T")
        # Canonical pick is the lexicographically smaller path (G1, T).
        assert rho == pytest.approx(0.2)
        assert single_path_failure(arch, "T") == rho
