"""Engine registry tests + cross-engine agreement (the differential seed).

Every applicable exact engine must produce the same number on the same
problem — on hand-built graphs with known closed forms and on the EPS
case-study sinks. These are the inline version of what ``repro verify``
checks at scale.
"""

import pytest

from repro.arch import Architecture
from repro.eps import paper_template
from repro.reliability import (
    EngineInfo,
    applicable_exact_engines,
    engine_info,
    engine_names,
    exact,
    exact_engine_names,
    failure_probability,
    inapplicable_reason,
    problem_from_architecture,
    register_engine,
    run_engine,
)
from repro.verify.corpus import closed_form_cases, eps_cases

EXACT_ENGINES = exact_engine_names()


class TestRegistry:
    def test_all_exact_engines_registered(self):
        assert {"bdd", "factoring", "sdp", "ie", "polynomial"} <= set(
            EXACT_ENGINES
        )

    def test_mc_listed_but_not_exact(self):
        assert "mc" in engine_names()
        assert "mc" not in EXACT_ENGINES
        assert not engine_info("mc").exact

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown reliability engine"):
            engine_info("quantum")

    def test_ie_inapplicable_beyond_path_cap(self):
        problem = eps_cases()[0].problem  # ~320 path sets
        reason = inapplicable_reason("ie", problem)
        assert reason is not None and "path" in reason

    def test_polynomial_inapplicable_on_nonuniform(self):
        from repro.verify.corpus import bridge_case

        problem = bridge_case(p_arm=0.1, p_tie=0.2).problem
        reason = inapplicable_reason("polynomial", problem)
        assert reason is not None and "uniform" in reason

    def test_applicable_exact_engines_on_small_uniform(self):
        case = closed_form_cases()[0]  # series: everything applies
        assert set(applicable_exact_engines(case.problem)) == set(
            EXACT_ENGINES
        )

    def test_registered_engine_reaches_failure_probability(self):
        name = "const-test-engine"
        try:
            register_engine(
                EngineInfo(name=name, fn=lambda p: 0.125, exact=True)
            )
            case = closed_form_cases()[0]
            assert failure_probability(case.problem, method=name) == 0.125
            assert run_engine(name, case.problem) == 0.125
        finally:
            exact._ENGINES.pop(name, None)
            from repro.reliability import registry

            registry._REGISTRY.pop(name, None)

    def test_run_engine_observes_monkeypatched_table(self, monkeypatch):
        # The verifier resolves engines through exact._ENGINES at call
        # time, so a perturbed engine is seen -- not a stale reference.
        monkeypatch.setitem(exact._ENGINES, "sdp", lambda p: 0.77)
        case = closed_form_cases()[0]
        assert run_engine("sdp", case.problem) == 0.77


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("engine", EXACT_ENGINES)
    @pytest.mark.parametrize(
        "case", closed_form_cases(), ids=lambda c: c.name
    )
    def test_closed_form_graphs(self, engine, case):
        if inapplicable_reason(engine, case.problem) is not None:
            pytest.skip(f"{engine} not applicable")
        assert run_engine(engine, case.problem) == pytest.approx(
            case.expected, rel=1e-9, abs=1e-12
        )

    @pytest.mark.parametrize("case", eps_cases(), ids=lambda c: c.name)
    def test_eps_sinks_agree_within_1e_9(self, case):
        engines = applicable_exact_engines(case.problem)
        assert {"bdd", "factoring", "sdp", "polynomial"} <= set(engines)
        values = {name: run_engine(name, case.problem) for name in engines}
        reference = values["bdd"]
        for name, value in values.items():
            assert value == pytest.approx(reference, rel=1e-9, abs=1e-12), (
                f"{name} disagrees with bdd on {case.name}"
            )

    def test_full_eps_matches_paper_scale(self):
        # Full configuration, paper probabilities: every sink's failure
        # probability is tiny but nonzero.
        template = paper_template()
        arch = Architecture(template, template.allowed_edges)
        for sink in arch.sink_names():
            problem = problem_from_architecture(arch, sink)
            value = run_engine("bdd", problem)
            assert 0.0 < value < 1e-6
