"""Tests for Monte-Carlo seeding: explicit rng end-to-end, no global state."""

import networkx as nx
import numpy as np

from repro.reliability import ReliabilityProblem, failure_probability_mc


def problem():
    g = nx.DiGraph()
    g.add_node("G0", p=0.2)
    g.add_node("G1", p=0.2)
    g.add_node("B0", p=0.1)
    g.add_node("L0", p=0.05)
    g.add_edge("G0", "B0")
    g.add_edge("G1", "B0")
    g.add_edge("B0", "L0")
    return ReliabilityProblem(g, ("G0", "G1"), "L0")


SAMPLES = 4_000


class TestMonteCarloSeeding:
    def test_same_seed_reproduces_exactly(self):
        a = failure_probability_mc(problem(), samples=SAMPLES, seed=7)
        b = failure_probability_mc(problem(), samples=SAMPLES, seed=7)
        assert a.estimate == b.estimate
        assert a.failures == b.failures

    def test_explicit_rng_equals_seed_derived_rng(self):
        by_seed = failure_probability_mc(problem(), samples=SAMPLES, seed=13)
        by_rng = failure_probability_mc(
            problem(), samples=SAMPLES, rng=np.random.default_rng(13)
        )
        assert by_seed.failures == by_rng.failures
        assert by_seed.estimate == by_rng.estimate

    def test_spawned_streams_are_independent(self):
        # The parallel-worker pattern: one child seed per worker.
        children = np.random.SeedSequence(42).spawn(2)
        a = failure_probability_mc(
            problem(), samples=SAMPLES, rng=np.random.default_rng(children[0])
        )
        b = failure_probability_mc(
            problem(), samples=SAMPLES, rng=np.random.default_rng(children[1])
        )
        assert a.failures != b.failures  # distinct streams, distinct draws

    def test_global_numpy_state_untouched(self):
        np.random.seed(1234)
        before = np.random.get_state()[1].copy()
        failure_probability_mc(problem(), samples=SAMPLES, seed=0)
        after = np.random.get_state()[1]
        assert np.array_equal(before, after)

    def test_estimate_brackets_truth(self):
        # Sanity: the estimator still estimates. Exact failure probability:
        # sink fails, or bus fails, or both generators fail.
        exact = 1 - (1 - 0.05) * (1 - 0.1) * (1 - 0.2 ** 2)
        est = failure_probability_mc(problem(), samples=50_000, seed=3)
        assert est.contains(exact)
