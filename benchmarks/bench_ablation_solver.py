"""Ablation — MILP backends and search options on synthesis models.

Compares the from-scratch branch-and-bound (DESIGN.md's "no external
optimizer" path) against HiGHS on the paper-template GENILP model, and the
two branching rules against each other. Also quantifies what the
symmetry-breaking requirement buys on a learned-constraint model (DESIGN.md
decision: EPS packs declare interchangeable orbits).
"""

import pytest

from conftest import emit
from repro.eps import build_eps_template, eps_requirements, eps_spec
from repro.ilp import BnBOptions, solve_milp
from repro.synthesis import SymmetryBreaking, SynthesisSpec, synthesize_ilp_mr


def base_model(num_generators: int = 2):
    """The iteration-1 GENILP model of a small EPS template.

    The from-scratch solver refactorizes a dense basis per simplex
    iteration, so its ablation runs at |V| = 10 (2 generators); HiGHS gets
    the same instance for an apples-to-apples optimum check and is
    additionally timed at |V| = 20.
    """
    spec = eps_spec(
        build_eps_template(num_generators=num_generators), reliability_target=None
    )
    enc = spec.build_encoder()
    return enc.model.to_matrix_form()


@pytest.mark.benchmark(group="ablation-solver")
def test_own_bnb_on_genilp(benchmark):
    form = base_model()
    out = benchmark.pedantic(
        lambda: solve_milp(form, BnBOptions(lp_engine="simplex")),
        rounds=1, iterations=1,
    )
    assert out.status == "optimal"


@pytest.mark.benchmark(group="ablation-solver")
@pytest.mark.parametrize("gens", [2, 4])
def test_highs_on_genilp(benchmark, gens):
    from repro.ilp.scipy_backend import solve_with_scipy

    form = base_model(gens)
    out = benchmark.pedantic(lambda: solve_with_scipy(form), rounds=1, iterations=1)
    assert out.status == "optimal"


@pytest.mark.benchmark(group="ablation-solver")
def test_backends_agree_on_genilp(benchmark):
    from repro.ilp.scipy_backend import solve_with_scipy

    form = base_model()

    def both():
        ours = solve_milp(form, BnBOptions(lp_engine="simplex"))
        ref = solve_with_scipy(form)
        return ours, ref

    ours, ref = benchmark.pedantic(both, rounds=1, iterations=1)
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


@pytest.mark.benchmark(group="ablation-solver")
@pytest.mark.parametrize("branching", ["pseudocost", "most_fractional"])
def test_branching_rules(benchmark, branching):
    form = base_model()
    out = benchmark.pedantic(
        lambda: solve_milp(form, BnBOptions(branching=branching)),
        rounds=1, iterations=1,
    )
    assert out.status == "optimal"


@pytest.mark.benchmark(group="ablation-symmetry")
def test_symmetry_breaking_value(benchmark):
    """ILP-MR on the 20-node template with and without orbit constraints.

    Same optimum either way; the ablation records the wall-clock delta that
    motivated making SymmetryBreaking part of the standard EPS pack.
    """
    template = build_eps_template(num_generators=4)
    with_sb = [r for r in eps_requirements(template)]
    without_sb = [r for r in with_sb if not isinstance(r, SymmetryBreaking)]

    def run(requirements):
        spec = SynthesisSpec(
            template=template,
            requirements=requirements,
            reliability_target=1e-11,
        )
        return synthesize_ilp_mr(spec, backend="scipy", mip_rel_gap=2e-2)

    def both():
        return run(with_sb), run(without_sb)

    res_with, res_without = benchmark.pedantic(both, rounds=1, iterations=1)
    assert res_with.feasible and res_without.feasible
    # Orbit ordering must not change the achievable optimum (within gap).
    assert res_with.cost == pytest.approx(res_without.cost, rel=5e-2)
    emit(
        None,
        "Ablation: symmetry breaking on ILP-MR (|V| = 20, r* = 1e-11)",
        ["variant", "solver (s)", "cost", "#iter"],
        [
            ("with orbits", f"{res_with.solver_time:.1f}", f"{res_with.cost:.6g}",
             res_with.num_iterations),
            ("without", f"{res_without.solver_time:.1f}", f"{res_without.cost:.6g}",
             res_without.num_iterations),
        ],
    )
