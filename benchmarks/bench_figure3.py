"""Figure 3 — ILP-AR architectures across reliability requirement levels.

The paper synthesizes three EPS architectures with Algorithm 3 for
``r* = 2e-3 / 2e-6 / 2e-10`` and reports (r~, r) pairs:
(6.0e-4, 6e-4), (2.4e-7, 3.5e-7), (7.2e-11, 2.8e-10) — costs and
redundancy growing monotonically, with r~ tracking r to the right order of
magnitude and the tightest level slightly exceeding r* within the
Theorem 2 bound.

This benchmark re-runs the sweep and checks exactly those shape claims.
"""

import pytest

from conftest import CACHE_DIR, JOBS, emit
from repro.engine import requirement_sweep, run_batch
from repro.eps import eps_spec, paper_template
from repro.reliability import approximate_failure
from repro.report import format_scientific

LEVELS = [2e-3, 2e-6, 2e-10]


@pytest.mark.benchmark(group="figure3")
def test_figure3_ilp_ar_requirement_sweep(benchmark):
    def sweep():
        """The whole Fig. 3 sweep as one engine batch (loose -> tight,
        matching the paper's presentation order)."""
        spec = eps_spec(paper_template(), reliability_target=None)
        batch = requirement_sweep(
            spec, LEVELS, algorithm="ar", name="figure3", backend="scipy"
        )
        outcome = run_batch(batch, jobs=JOBS, cache_dir=CACHE_DIR)
        return [res.unwrap() for res in outcome.results]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for r_star, res in zip(LEVELS, results):
        assert res.feasible
        # The encoded estimate respects the requirement...
        assert res.approx_reliability <= r_star * (1 + 1e-9)
        # ...and the exact value stays within one order of magnitude (the
        # algebra's guaranteed-order property).
        assert res.reliability <= 10 * r_star
        worst = max(
            (approximate_failure(res.architecture, s) for s in
             res.architecture.sink_names()),
            key=lambda a: a.r_tilde,
        )
        rows.append(
            (
                format_scientific(r_star),
                f"{res.cost:.6g}",
                format_scientific(res.approx_reliability),
                format_scientific(res.reliability),
                max(worst.redundancy.values()),
                f"{res.setup_time:.2f}",
                f"{res.solver_time:.2f}",
            )
        )

    costs = [res.cost for res in results]
    assert costs[0] < costs[1] < costs[2], "cost must grow as r* tightens"

    emit(
        benchmark,
        "Figure 3: ILP-AR sweep. Paper: (r~, r) = (6.0e-4, 6e-4), (2.4e-7, 3.5e-7), (7.2e-11, 2.8e-10)",
        ["r*", "cost", "r~ (eq. 7)", "r (exact)", "max h", "setup (s)", "solve (s)"],
        rows,
    )
