"""Example 1 — the approximate algebra vs exact computation (micro-bench).

Reproduces the worked example of §IV-A: on the Fig. 1b architecture,
r~ = p + 6p^2 versus r = p + 9p^2 + O(p^3), and times the four exact
engines against the (closed-form-checked) answer. This is the one
benchmark where the paper gives an analytic target, so it doubles as a
numerical regression gate.
"""

import networkx as nx
import pytest

from conftest import emit
from repro.arch import functional_link
from repro.reliability import (
    ReliabilityProblem,
    approximate_failure_from_link,
    failure_probability,
)
from repro.report import format_scientific

P = 2e-4


def build_problem():
    g = nx.DiGraph()
    for name, ctype in [
        ("G1", "gen"), ("G2", "gen"), ("B1", "bus"), ("B2", "bus"),
        ("D1", "dc"), ("D2", "dc"), ("L", "load"),
    ]:
        g.add_node(name, p=P, ctype=ctype)
    for chain in (("G1", "B1", "D1", "L"), ("G2", "B2", "D2", "L")):
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b)
    return ReliabilityProblem(g, ("G1", "G2"), "L")


def closed_form():
    inner = P + (1 - P) * (P + (1 - P) * P)
    return P + (1 - P) * inner**2


@pytest.mark.benchmark(group="example1")
@pytest.mark.parametrize("method", ["bdd", "factoring", "sdp", "ie"])
def test_example1_exact_engines(benchmark, method):
    problem = build_problem()
    value = benchmark(failure_probability, problem, method=method)
    assert value == pytest.approx(closed_form(), rel=1e-9)


@pytest.mark.benchmark(group="example1")
def test_example1_approximate_algebra(benchmark):
    problem = build_problem()

    def approximate():
        link = functional_link(problem.graph, list(problem.sources), "L")
        return approximate_failure_from_link(
            link, {"gen": P, "bus": P, "dc": P, "load": P}
        )

    approx = benchmark(approximate)
    assert approx.r_tilde == pytest.approx(P + 6 * P * P)
    exact = closed_form()
    assert approx.guaranteed_upper_bound(exact)
    emit(
        None,
        "Example 1: r~ vs r (paper: p + 6p^2 vs p + 9p^2 + O(p^3))",
        ["quantity", "value"],
        [
            ("r~ (eq. 7)", format_scientific(approx.r_tilde, 6)),
            ("r (exact)", format_scientific(exact, 6)),
            ("ratio r~/r", f"{approx.r_tilde / exact:.6f}"),
            ("Theorem 2 bound", f"{approx.bound_ratio:.3f}"),
        ],
    )
