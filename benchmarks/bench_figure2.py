"""Figure 2 — ILP-MR iteration sequence on the paper's EPS template.

The paper shows three snapshots for ``r* = 2e-10``: the minimal
architecture (r ~ 6e-4), the +2-redundant-paths architecture
(r = 2.8e-10), and the fine-tuned final one (r = 0.79e-10), produced in
~38 s total.

This benchmark re-runs the full ILP-MR loop and reports the same series:
per-iteration cost and exact reliability, plus the ESTPATH inference
(k = 2 at the first learning step, from rho ~= 8e-4).
"""

import pytest

from conftest import emit
from repro.eps import eps_spec, paper_template
from repro.report import format_scientific
from repro.synthesis import synthesize_ilp_mr

R_STAR = 2e-10


def run_figure2():
    spec = eps_spec(paper_template(), reliability_target=R_STAR)
    return synthesize_ilp_mr(spec, backend="scipy")


@pytest.mark.benchmark(group="figure2")
def test_figure2_ilp_mr_iterations(benchmark):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)

    assert result.feasible, result.status
    assert result.reliability <= R_STAR
    # Shape of Fig. 2: a minimal first iterate around 1e-4..1e-3, then a
    # large jump to within one order of the target, then fine-tuning.
    first = result.iterations[0]
    assert 1e-4 <= first.reliability <= 1e-3
    assert result.iterations[0].estimated_k == 2  # the paper's k = 2
    assert 2 <= result.num_iterations <= 6  # paper: 3

    rows = [
        (
            it.index,
            f"{it.cost:.6g}",
            format_scientific(it.reliability),
            it.learned_constraints,
            it.estimated_k if it.estimated_k is not None else "-",
            f"{it.solver_time:.2f}",
            f"{it.analysis_time:.3f}",
        )
        for it in result.iterations
    ]
    emit(
        benchmark,
        "Figure 2: ILP-MR iterations (r* = 2e-10). Paper: r = 6e-4 -> 2.8e-10 -> 0.79e-10 in 3 iterations, ~38 s",
        ["iter", "cost", "r (exact)", "+constraints", "ESTPATH k", "solve (s)", "analysis (s)"],
        rows,
    )
