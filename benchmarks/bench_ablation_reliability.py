"""Ablation — exact reliability engines across redundancy levels.

DESIGN.md decision 4 makes the BDD engine the default RELANALYSIS; this
ablation justifies it by timing all four exact engines on EPS-style
architectures with growing parallel redundancy (the graphs ILP-MR actually
analyzes at each iteration). Inclusion-exclusion blows up combinatorially
in the number of paths, SDP in disjoint products, while BDD and factoring
stay polynomial-ish on these layered structures.
"""

import networkx as nx
import pytest

from conftest import emit
from repro.reliability import ReliabilityProblem, failure_probability

P = 2e-4


def redundant_eps_graph(width: int) -> ReliabilityProblem:
    """A fully cross-connected gen/bus/rect/dc layer stack of given width."""
    g = nx.DiGraph()
    layers = []
    for prefix in ("G", "B", "R", "D"):
        layer = [f"{prefix}{i}" for i in range(width)]
        for name in layer:
            g.add_node(name, p=P)
        layers.append(layer)
    g.add_node("L", p=0.0)
    for a_layer, b_layer in zip(layers, layers[1:]):
        for a in a_layer:
            for b in b_layer:
                g.add_edge(a, b)
    for d in layers[-1]:
        g.add_edge(d, "L")
    return ReliabilityProblem(g, tuple(layers[0]), "L")


@pytest.mark.benchmark(group="ablation-reliability")
@pytest.mark.parametrize("method", ["bdd", "factoring", "sdp"])
@pytest.mark.parametrize("width", [2, 3])
def test_engine_timing(benchmark, method, width):
    problem = redundant_eps_graph(width)
    value = benchmark(failure_probability, problem, method=method)
    reference = failure_probability(problem, method="bdd")
    assert value == pytest.approx(reference, rel=1e-9)


@pytest.mark.benchmark(group="ablation-reliability")
def test_engines_agree_at_width_3(benchmark):
    """Cross-engine agreement on the width-3 instance (3^4 = 81 paths)."""
    problem = redundant_eps_graph(3)

    def all_engines():
        return {
            m: failure_probability(problem, method=m)
            for m in ("bdd", "factoring", "sdp")
        }

    values = benchmark.pedantic(all_engines, rounds=1, iterations=1)
    reference = values["bdd"]
    for method, value in values.items():
        assert value == pytest.approx(reference, rel=1e-9), method
    emit(
        None,
        "Ablation: exact engines on width-3 EPS stack (81 minimal paths)",
        ["engine", "r"],
        [(m, f"{v:.6e}") for m, v in sorted(values.items())],
    )
