"""Table II — ILP-MR scaling: LEARNCONS vs the lazy one-path baseline.

The paper's table (r* = 1e-11, n = 5 types) reports, for |V| = 20..50:

* with LEARNCONS (Algorithm 2): a constant 3 iterations and moderate
  analysis time (34 s -> 181 s);
* with the lazy strategy (one extra path per iteration): iteration counts
  growing 4 -> 14 and analysis time exploding (72 s -> 39 563 s).

The headline claim is the *relative* blow-up of the lazy baseline — more
iterations, and far more time spent inside exact reliability analysis.
This benchmark reproduces both arms. Default sizes keep the suite fast;
``REPRO_BENCH_FULL=1`` unlocks the full sweep (see conftest).
"""

import pytest

from conftest import CACHE_DIR, JOBS, LAZY_SIZES, SCALING_GAP, TABLE_SIZES, emit
from repro.engine import run_batch, scaling_sweep
from repro.eps import build_eps_template, eps_spec
from repro.report import format_scientific
from repro.synthesis import synthesize_ilp_mr

R_STAR = 1e-11


def run_one(num_nodes: int, strategy: str):
    gens = num_nodes // 5
    spec = eps_spec(
        build_eps_template(num_generators=gens), reliability_target=R_STAR
    )
    return synthesize_ilp_mr(
        spec, strategy=strategy, backend="scipy", mip_rel_gap=SCALING_GAP
    )


def run_sizes(sizes, strategy):
    """One engine batch over the |V| sweep for one Table II arm."""
    labeled = [
        (n, eps_spec(build_eps_template(num_generators=n // 5),
                     reliability_target=R_STAR))
        for n in sizes
    ]
    algorithm = "mr-lazy" if strategy == "lazy" else "mr"
    batch = scaling_sweep(
        labeled, algorithm=algorithm, name=f"table2-{strategy}",
        backend="scipy", mip_rel_gap=SCALING_GAP,
    )
    outcome = run_batch(batch, jobs=JOBS, cache_dir=CACHE_DIR)
    return [(res.meta["label"], res.unwrap()) for res in outcome.results]


@pytest.mark.benchmark(group="table2")
def test_table2_learncons_scaling(benchmark):
    def sweep():
        return run_sizes(TABLE_SIZES, "learncons")

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, res in results:
        assert res.feasible
        assert res.reliability <= R_STAR
        # Paper: LEARNCONS converges in a constant ~3 iterations.
        assert res.num_iterations <= 6
        rows.append(
            (
                f"{n} ({n // 5})",
                res.num_iterations,
                f"{res.analysis_time:.2f}",
                f"{res.solver_time:.1f}",
                f"{res.cost:.6g}",
                format_scientific(res.reliability),
            )
        )
    emit(
        benchmark,
        "Table II (top): ILP-MR with LEARNCONS. Paper iterations: 3/3/3/3",
        ["|V| (gens)", "#iter", "analysis (s)", "solver (s)", "cost", "r"],
        rows,
    )


@pytest.mark.benchmark(group="table2")
def test_table2_lazy_baseline_scaling(benchmark):
    def sweep():
        return run_sizes(LAZY_SIZES, "lazy")

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, res in results:
        assert res.feasible
        assert res.reliability <= R_STAR
        rows.append(
            (
                f"{n} ({n // 5})",
                res.num_iterations,
                f"{res.analysis_time:.2f}",
                f"{res.solver_time:.1f}",
                f"{res.cost:.6g}",
                format_scientific(res.reliability),
            )
        )
    emit(
        benchmark,
        "Table II (bottom): ILP-MR lazy baseline. Paper iterations: 4/7/10/14",
        ["|V| (gens)", "#iter", "analysis (s)", "solver (s)", "cost", "r"],
        rows,
    )


@pytest.mark.benchmark(group="table2")
def test_table2_learncons_beats_lazy(benchmark):
    """The Table II claim at a common size: LEARNCONS needs strictly fewer
    iterations than the lazy strategy and spends less time in analysis +
    solving overall."""

    size = LAZY_SIZES[-1]

    def both():
        return run_one(size, "learncons"), run_one(size, "lazy")

    fast, slow = benchmark.pedantic(both, rounds=1, iterations=1)
    assert fast.feasible and slow.feasible
    assert fast.num_iterations < slow.num_iterations
    emit(
        benchmark,
        f"Table II claim at |V| = {size}: LEARNCONS vs lazy",
        ["strategy", "#iter", "analysis (s)", "solver (s)"],
        [
            ("learncons", fast.num_iterations, f"{fast.analysis_time:.2f}",
             f"{fast.solver_time:.1f}"),
            ("lazy", slow.num_iterations, f"{slow.analysis_time:.2f}",
             f"{slow.solver_time:.1f}"),
        ],
    )
