"""Ablation — the three reliability encodings head to head.

The paper's core argument (§II) is a three-way trade-off:

* flat exact encodings blow up exponentially (here: ILP-TSE, the truncated
  state enumeration — sound, but its model grows with C(n_fail, order));
* ILP-AR stays polynomial but is only order-of-magnitude accurate;
* ILP-MR keeps exactness by *iterating* instead of encoding.

This benchmark runs all three on the same synthesis instance and reports
model size, times, cost, and the exact reliability each achieves —
the quantitative version of the paper's §V closing discussion. A second
test tracks the approximate algebra's optimism (r~/r vs the Theorem 2
bound) across requirement levels.
"""

import pytest

from conftest import emit
from repro.eps import build_eps_template, eps_spec, paper_template
from repro.reliability import approximate_failure
from repro.report import format_scientific
from repro.synthesis import synthesize_ilp_ar, synthesize_ilp_mr, synthesize_ilp_tse

R_STAR = 1e-6  # TSE order 2 can certify this on the 10-node template

# The head-to-head runs on a 10-node EPS instance: ILP-TSE's scenario
# blow-up (C(n_fail, 2) reachability blocks) already takes minutes on the
# paper's 21-node template — which is precisely the paper's point; the
# small instance keeps the suite fast while the model-size column tells
# the story.


@pytest.mark.benchmark(group="ablation-encodings")
def test_three_encodings_head_to_head(benchmark):
    spec = eps_spec(build_eps_template(num_generators=2), reliability_target=R_STAR)

    def run_all():
        mr = synthesize_ilp_mr(spec, backend="scipy")
        ar = synthesize_ilp_ar(spec, backend="scipy")
        tse = synthesize_ilp_tse(spec, order=2, backend="scipy")
        return mr, ar, tse

    mr, ar, tse = benchmark.pedantic(run_all, rounds=1, iterations=1)

    assert mr.feasible and ar.feasible and tse.feasible
    # Exactness guarantees: MR and TSE certify r <= r*; AR only r~ <= r*.
    assert mr.reliability <= R_STAR
    assert tse.reliability <= R_STAR
    assert ar.approx_reliability <= R_STAR * (1 + 1e-9)
    # Model blow-up ordering: TSE >> AR (the paper's motivating claim).
    assert tse.model_stats["constraints"] > ar.model_stats["constraints"]

    rows = [
        (
            res.algorithm,
            res.model_stats.get("constraints", "-"),
            f"{res.setup_time:.2f}",
            f"{res.solver_time + res.setup_time:.2f}",
            f"{res.cost:.6g}",
            format_scientific(res.reliability),
            "exact" if name != "AR" else "order-of-magnitude",
        )
        for name, res in (("MR", mr), ("AR", ar), ("TSE", tse))
    ]
    emit(
        benchmark,
        f"Ablation: reliability encodings at r* = {R_STAR:.0e} (paper §II/§V trade-off)",
        ["algorithm", "#constraints", "setup (s)", "total (s)", "cost",
         "r (exact)", "guarantee"],
        rows,
    )


@pytest.mark.benchmark(group="ablation-encodings")
def test_approximation_optimism_series(benchmark):
    """r~/r across requirement levels, against the Theorem 2 bound."""

    levels = [2e-3, 2e-6, 2e-10]

    def sweep():
        out = []
        for r_star in levels:
            spec = eps_spec(paper_template(), reliability_target=r_star)
            res = synthesize_ilp_ar(spec, backend="scipy")
            worst = max(
                (approximate_failure(res.architecture, s)
                 for s in res.architecture.sink_names()),
                key=lambda a: a.r_tilde,
            )
            out.append((r_star, res, worst))
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for r_star, res, worst in series:
        ratio = res.approx_reliability / res.reliability
        assert worst.guaranteed_upper_bound(res.reliability)
        rows.append(
            (
                format_scientific(r_star),
                format_scientific(res.approx_reliability),
                format_scientific(res.reliability),
                f"{ratio:.3f}",
                format_scientific(worst.bound_ratio),
            )
        )
    emit(
        benchmark,
        "Ablation: approximate-algebra optimism (r~/r) vs Theorem 2 bound",
        ["r*", "r~", "r", "r~/r", "Thm2 bound"],
        rows,
    )
