"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures. Console
rows are printed (run with ``-s`` to see them) and also attached to the
pytest-benchmark ``extra_info`` so the JSON export carries the reproduced
numbers.

Environment:

``REPRO_BENCH_FULL=1``
    Unlock the paper's full |V| = 20..50 sweep for Tables II/III. The
    default keeps sizes at 20-30 nodes so the whole suite finishes in
    minutes on a laptop (the 50-node ILP-AR solve took ~1.4 h of CPLEX
    time on the authors' machine; see EXPERIMENTS.md).
``REPRO_BENCH_JOBS=N``
    Worker processes for the sweep-shaped benchmarks (they route through
    :mod:`repro.engine`); default 1 keeps timing comparable to the paper's
    sequential runs.
``REPRO_BENCH_CACHE=DIR``
    Persistent reliability cache directory for the engine-backed sweeps.
    Off by default so each benchmark run measures cold analysis times.
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
#: Engine fan-out for the sweep benchmarks (1 = serial, apples-to-apples).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")
#: Optional persistent reliability cache directory for the engine sweeps.
CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE") or None

#: |V| sweep for the scaling tables (|V| = 5 * generators).
TABLE_SIZES = [20, 30, 40, 50] if FULL else [20, 30]
#: Sizes the lazy ILP-MR baseline runs at (its analysis blow-up is the
#: point of Table II; capped lower because it is the slow arm).
LAZY_SIZES = [20, 30] if FULL else [20]
#: Relative MIP gap used for the scaling benchmarks (see DESIGN.md §5).
SCALING_GAP = 2e-2


def emit(benchmark, title: str, headers, rows) -> None:
    """Print a table and attach it to the benchmark's extra info."""
    from repro.report import format_table, section

    text = section(title) + "\n" + format_table(headers, rows)
    print(text)
    if benchmark is not None:
        benchmark.extra_info[title] = [list(map(str, r)) for r in rows]
