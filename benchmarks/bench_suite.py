#!/usr/bin/env python
"""Standalone entry point for the ILP benchmark suite.

Thin wrapper over :func:`repro.bench.run_bench` so the suite can run
without pytest (CI calls it directly, developers via ``repro bench``):

    PYTHONPATH=src python benchmarks/bench_suite.py --profile smoke
    PYTHONPATH=src python benchmarks/bench_suite.py --profile full

Writes ``BENCH_ilp.json`` (schema ``repro.bench/ilp/v1``) at the repo root
by default and exits nonzero if the document fails its own schema check or
any warm/cold arm disagreed on the optimal cost — the bench doubles as a
correctness gate for the warm-start machinery.

``REPRO_BENCH_PROFILE`` overrides the default profile (CLI flag wins).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main  # noqa: E402  (path bootstrap first)

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(a.startswith("--profile") for a in argv):
        profile = os.environ.get("REPRO_BENCH_PROFILE", "smoke")
        argv = ["--profile", profile, *argv]
    sys.exit(main(["bench", *argv]))
