"""Table III — ILP-AR scaling: constraint counts, setup and solver time.

The paper's table (r* = 1e-11, n = 5) reports, for |V| = 20..50 nodes:
5 290 / 24 514 / 74 258 / 176 794 constraints, setup times 27 s -> 18 902 s
and solver times 11 s -> 5 059 s — i.e. superlinear growth in both, with
~70% of total time spent generating constraints. The counts stay far below
the O(|V|^3 n) asymptotic bound thanks to the EPS sparsity.

This benchmark regenerates the row structure: constraints, auxiliary
variables, setup time, solve time per template size — and checks the
superlinear-growth and polynomial-bound claims.
"""

import pytest

from conftest import SCALING_GAP, TABLE_SIZES, emit
from repro.eps import build_eps_template, eps_spec
from repro.report import format_scientific
from repro.synthesis import synthesize_ilp_ar

R_STAR = 1e-11


def run_one(num_nodes: int):
    gens = num_nodes // 5
    spec = eps_spec(
        build_eps_template(num_generators=gens), reliability_target=R_STAR
    )
    return synthesize_ilp_ar(
        spec, backend="scipy", mip_rel_gap=SCALING_GAP
    )


@pytest.mark.benchmark(group="table3")
def test_table3_ilp_ar_scaling(benchmark):
    def sweep():
        return [(n, run_one(n)) for n in TABLE_SIZES]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for n, res in results:
        assert res.feasible, f"|V|={n}: {res.status}"
        # The algebra-level requirement holds by construction...
        assert res.approx_reliability <= R_STAR * (1 + 1e-9)
        # ...and the constraint count respects the polynomial bound.
        num_types = 5
        assert res.model_stats["constraints"] <= n**3 * num_types
        rows.append(
            (
                f"{n} ({n // 5})",
                res.model_stats["constraints"],
                res.model_stats["variables"],
                f"{res.setup_time:.2f}",
                f"{res.solver_time:.2f}",
                format_scientific(res.approx_reliability),
                format_scientific(res.reliability),
            )
        )

    # Superlinear growth of the constraint count across the sweep.
    counts = [r.model_stats["constraints"] for _, r in results]
    sizes = [n for n, _ in results]
    if len(counts) >= 2:
        growth = (counts[-1] / counts[0])
        assert growth > (sizes[-1] / sizes[0]), "constraint growth must be superlinear"

    emit(
        benchmark,
        "Table III: ILP-AR scaling. Paper: 5290/24514/74258/176794 constraints, setup 27->18902 s, solve 11->5059 s",
        ["|V| (gens)", "#constraints", "#variables", "setup (s)", "solve (s)",
         "r~", "r (exact)"],
        rows,
    )
