"""Tour of the design-space exploration engine (`repro.engine`).

Four batch shapes over the paper's EPS template, all through one
`run_batch` entry point with a shared persistent reliability cache:

1. a requirement sweep (Fig. 3 as one batch, fanned out over workers);
2. an N-1 contingency sweep — re-synthesize with each generator knocked
   out and watch the redundancy (and cost) the optimizer adds back;
3. a per-sink reliability map of the synthesized design, exact and
   Monte-Carlo (each MC job gets its own derived seed, so the estimates
   are reproducible under any parallelism);
4. a budget bisection — the dual question "most reliable under cost C".

Run:  python examples/batch_exploration.py
Run it twice: the second pass is served almost entirely from the
reliability cache, and the closing telemetry table shows it.
"""

from repro.engine import (
    budget_bisection,
    contingency_sweep,
    reliability_map,
    requirement_sweep,
    run_batch,
    summarize_telemetry,
    tradeoff_points,
)
from repro.eps import eps_spec, paper_template
from repro.report import format_scientific, format_table, render_batch_summary
from repro.synthesis import pareto_front

CACHE_DIR = ".relcache"
TELEMETRY = f"{CACHE_DIR}/telemetry.jsonl"
JOBS = 2


def main() -> None:
    spec = eps_spec(paper_template(), reliability_target=2e-6)

    # 1. Requirement sweep -> Pareto front.
    batch = requirement_sweep(
        spec, [2e-3, 2e-6, 2e-10], algorithm="ar", backend="scipy"
    )
    outcome = run_batch(batch, jobs=JOBS, cache_dir=CACHE_DIR,
                        telemetry=TELEMETRY)
    points = tradeoff_points(outcome.results)
    print("Pareto front of the requirement sweep:")
    print(format_table(
        ["cost", "r (exact)"],
        [(f"{p.cost:.6g}", format_scientific(p.reliability))
         for p in pareto_front(points)],
    ))
    print(outcome.summary())
    nominal = next(p for p in points if p.feasible)

    # 2. N-1 contingency sweep over the generators.
    generators = [s.name for s in spec.template.library
                  if s.name.startswith(("LG", "RG"))][:2]
    cont = run_batch(
        contingency_sweep(spec, generators, algorithm="ar", backend="scipy"),
        jobs=JOBS, cache_dir=CACHE_DIR, telemetry=TELEMETRY,
    )
    print("\nContingency sweep (component knocked out -> re-synthesized):")
    rows = []
    for res in cont.results:
        result = res.unwrap()
        rows.append(
            (
                res.meta["outage"] or "(none)",
                result.status,
                f"{result.cost:.6g}" if result.feasible else "-",
                format_scientific(result.reliability),
            )
        )
    print(format_table(["outage", "status", "cost", "r (exact)"], rows))

    # 3. Per-sink reliability map of the nominal design, exact + MC.
    arch = nominal.result.architecture
    exact = run_batch(reliability_map(arch, method="bdd"),
                      jobs=JOBS, cache_dir=CACHE_DIR, telemetry=TELEMETRY)
    mc = run_batch(reliability_map(arch, method="mc", samples=200_000, seed=7),
                   jobs=JOBS, telemetry=TELEMETRY)
    print("\nPer-sink reliability of the nominal design:")
    mc_by_sink = {r.meta["sink"]: r.unwrap() for r in mc.results}
    print(format_table(
        ["sink", "r (exact)", "r (MC)", "MC 3-sigma"],
        [
            (
                r.meta["sink"],
                format_scientific(r.unwrap()),
                format_scientific(mc_by_sink[r.meta["sink"]].estimate),
                format_scientific(3 * mc_by_sink[r.meta["sink"]].stderr),
            )
            for r in exact.results
        ],
    ))

    # 4. Budget bisection: most reliable design under each budget.
    budgets = [15000.0, 30000.0]
    duals = run_batch(
        budget_bisection(spec, budgets, algorithm="ar", backend="scipy",
                         iterations=8),
        jobs=JOBS, cache_dir=CACHE_DIR, telemetry=TELEMETRY,
    )
    print("\nMost reliable design under a cost budget:")
    rows = []
    for res in duals.results:
        point = res.unwrap()
        rows.append(
            (
                f"{res.meta['budget']:g}",
                "-" if point is None else f"{point.cost:.6g}",
                "-" if point is None else format_scientific(point.reliability),
            )
        )
    print(format_table(["budget", "cost", "r (exact)"], rows))

    print("\nEngine telemetry (cold vs warm runs):")
    print(render_batch_summary(summarize_telemetry(TELEMETRY)))


if __name__ == "__main__":
    main()
