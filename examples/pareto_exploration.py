"""Full cost/reliability trade-off exploration of an EPS template.

The paper's Fig. 3 samples three points of the cost-versus-reliability
curve; this example traces the whole front:

1. sweep the reliability requirement across eight orders of magnitude with
   ILP-AR (fast one-shot synthesis per level), fanned out over worker
   processes by the exploration engine with a persistent reliability cache
   (delete ``.relcache/`` to watch the cold/warm difference — the second
   run's telemetry reports the cache hits);
2. prune dominated designs to the Pareto front;
3. answer the two practical questions: "cheapest design meeting 1e-8?" and
   "most reliable design under a 30 000 budget?" (the latter by bisection
   on the requirement).

Run:  python examples/pareto_exploration.py
"""

from repro.engine import summarize_telemetry
from repro.eps import eps_spec, paper_template
from repro.report import format_scientific, format_table, render_batch_summary
from repro.synthesis import (
    cheapest_under_target,
    explore_tradeoff,
    most_reliable_under_budget,
    pareto_front,
)

LEVELS = [2e-3, 2e-5, 2e-7, 2e-9, 2e-11]
CACHE_DIR = ".relcache"
TELEMETRY = f"{CACHE_DIR}/telemetry.jsonl"


def main() -> None:
    spec = eps_spec(paper_template(), reliability_target=None)

    points = explore_tradeoff(
        spec, LEVELS, algorithm="ar", backend="scipy",
        jobs=2, cache_dir=CACHE_DIR, telemetry=TELEMETRY,
    )
    rows = [
        (
            format_scientific(p.r_star),
            "ok" if p.feasible else p.result.status,
            f"{p.cost:.6g}" if p.feasible else "-",
            format_scientific(p.result.approx_reliability) if p.feasible else "-",
            format_scientific(p.reliability) if p.feasible else "-",
        )
        for p in points
    ]
    print("Requirement sweep (ILP-AR):")
    print(format_table(["r*", "status", "cost", "r~", "r (exact)"], rows))

    front = pareto_front(points)
    print("\nPareto front (non-dominated cost/exact-reliability designs):")
    print(format_table(
        ["cost", "r (exact)"],
        [(f"{p.cost:.6g}", format_scientific(p.reliability)) for p in front],
    ))

    pick = cheapest_under_target(points, 1e-8)
    if pick:
        print(f"\nCheapest explored design with exact r <= 1e-8: "
              f"cost {pick.cost:.6g} (r = {pick.reliability:.2e})")

    budget = 30000.0
    best = most_reliable_under_budget(
        spec, budget=budget, algorithm="ar", backend="scipy", iterations=10
    )
    if best:
        print(f"Most reliable design under budget {budget:g}: "
              f"cost {best.cost:.6g}, exact r = {best.reliability:.2e}")

    print("\nEngine telemetry (one row per recorded sweep):")
    print(render_batch_summary(summarize_telemetry(TELEMETRY)))


if __name__ == "__main__":
    main()
