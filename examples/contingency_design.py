"""N-1 contingency-aware EPS synthesis.

The paper's §V power-flow requirement asks that generation cover demand
"in each operating condition". This example takes the classical reading —
the N-1 criterion: after losing any single generator, the remaining
instantiated generation must still cover every essential load — and shows
what it costs:

1. synthesize with the standard requirement pack (total supply >= demand);
2. synthesize again with `NMinusOneAdequacy` added;
3. compare generator fleets, costs, and the exact reliability of both.

Run:  python examples/contingency_design.py
"""

from repro.eps import build_eps_template, eps_requirements
from repro.report import format_table
from repro.synthesis import NMinusOneAdequacy, SynthesisSpec, synthesize_ilp_mr

# A loose reliability target keeps the baseline fleet minimal, so the N-1
# criterion is what forces the second generator (at a tight target like
# 2e-10 the reliability requirement alone already demands a redundant
# fleet and N-1 comes for free — try it).
TARGET = 2e-3


def fleet(arch):
    """Used generators with their ratings."""
    t = arch.template
    return sorted(
        (t.name_of(i), t.spec(i).capacity)
        for i in arch.used_nodes()
        if t.spec(i).capacity > 0
    )


def main() -> None:
    template = build_eps_template(num_generators=4, include_apu=True)
    base_requirements = eps_requirements(template)

    rows = []
    results = {}
    for label, extra in (("baseline", []), ("N-1", [NMinusOneAdequacy()])):
        spec = SynthesisSpec(
            template=template,
            requirements=base_requirements + extra,
            reliability_target=TARGET,
        )
        res = synthesize_ilp_mr(spec, backend="scipy")
        results[label] = res
        gens = fleet(res.architecture) if res.feasible else []
        total = sum(g for _, g in gens)
        largest = max((g for _, g in gens), default=0.0)
        rows.append(
            (
                label,
                res.status,
                f"{res.cost:.6g}",
                f"{res.reliability:.2e}" if res.reliability is not None else "-",
                ", ".join(f"{n}({g:g}kW)" for n, g in gens),
                f"{total - largest:g} kW",
            )
        )

    print(f"EPS synthesis with r* = {TARGET:.0e}, demand = 70 kW total:\n")
    print(format_table(
        ["variant", "status", "cost", "r (exact)", "generator fleet",
         "post-N-1 capacity"],
        rows,
    ))
    base, n1 = results["baseline"], results["N-1"]
    if base.feasible and n1.feasible:
        print(
            f"\nThe N-1 criterion costs {n1.cost - base.cost:+.6g} over the "
            f"baseline and guarantees any single generator loss still leaves "
            f"enough capacity for all essential loads."
        )


if __name__ == "__main__":
    main()
