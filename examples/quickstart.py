"""Quickstart: synthesize a reliable aircraft EPS architecture.

Reproduces the paper's headline workflow in ~20 lines of API use:

1. build the Table I template (4 generators + APU, 4 of each bus type);
2. attach the §V connectivity / power-flow requirements and a reliability
   target of 2e-10 on every load;
3. run ILP-MR (Algorithm 1) and inspect the iteration trace;
4. double-check the synthesized architecture with the exact and
   approximate reliability analyses.

Run:  python examples/quickstart.py
"""

from repro.eps import eps_spec, paper_template, render_single_line
from repro.reliability import approximate_failure, sink_failure_probabilities
from repro.synthesis import synthesize_ilp_mr


def main() -> None:
    template = paper_template()
    print(f"Template: {template}\n")

    spec = eps_spec(template, reliability_target=2e-10)
    result = synthesize_ilp_mr(spec, backend="scipy")

    print("=== ILP-MR synthesis trace (compare with the paper's Fig. 2) ===")
    print(result.summary())
    if not result.feasible:
        raise SystemExit("synthesis failed")

    arch = result.architecture
    print("\n=== Synthesized single-line diagram ===")
    print(render_single_line(arch))

    print("\n=== Verification ===")
    for sink, r in sink_failure_probabilities(arch).items():
        approx = approximate_failure(arch, sink)
        print(
            f"  {sink}: exact r = {r:.3e}, approximate r~ = {approx.r_tilde:.3e}, "
            f"redundancy h = {dict(sorted(approx.redundancy.items()))}"
        )
    print(f"\nAll loads meet r* = 2e-10: "
          f"{all(r <= 2e-10 for r in sink_failure_probabilities(arch).values())}")
    print(f"Total architecture cost (eq. 1): {arch.cost():.6g}")


if __name__ == "__main__":
    main()
