"""Importance-guided component upgrades on a synthesized EPS architecture.

Workflow a reliability engineer would run after synthesis:

1. synthesize a highly reliable EPS architecture with ILP-MR — its final
   fine-tuning iteration leaves *asymmetric* redundancy (one type gets an
   extra path), which is exactly when importance analysis earns its keep;
2. rank its components by Birnbaum importance (the exact sensitivity
   dr/dp_i, computed on the BDD) to find the failure-probability levers;
3. "upgrade" the top-ranked component (halve its failure probability) and
   quantify the improvement against upgrading a low-ranked one.

Demonstrates the analysis half of the toolbox on its own — no re-synthesis
needed to answer what-if questions.

Run:  python examples/importance_upgrade.py
"""

from repro.eps import eps_spec, paper_template
from repro.reliability import (
    ReliabilityProblem,
    failure_probability,
    problem_from_architecture,
    ranked_importance,
)
from repro.report import format_table
from repro.synthesis import synthesize_ilp_mr

SINK = "LL1"


def upgraded(problem: ReliabilityProblem, component: str, factor: float) -> float:
    """Failure probability after scaling one component's p by ``factor``."""
    graph = problem.graph.copy()
    graph.nodes[component]["p"] *= factor
    return failure_probability(ReliabilityProblem(graph, problem.sources, problem.sink))


def main() -> None:
    spec = eps_spec(paper_template(), reliability_target=2e-10)
    result = synthesize_ilp_mr(spec, backend="scipy")
    if not result.feasible:
        raise SystemExit("synthesis failed")
    arch = result.architecture
    problem = problem_from_architecture(arch, SINK)
    base_r = failure_probability(problem)
    print(f"Synthesized architecture: cost {result.cost:.6g}, "
          f"r({SINK}) = {base_r:.3e}\n")

    ranked = ranked_importance(problem, "birnbaum")
    rows = [
        (m.component, f"{m.failure_prob:.1e}", f"{m.birnbaum:.3e}",
         f"{m.criticality:.3e}", f"{m.improvement_potential:.3e}",
         f"{m.fussell_vesely:.3e}")
        for m in ranked
    ]
    print("Component importance (exact, BDD-based):")
    print(format_table(
        ["component", "p", "Birnbaum", "criticality", "improvement", "Fussell-Vesely"],
        rows,
    ))

    top = ranked[0].component
    bottom = ranked[-1].component
    r_top = upgraded(problem, top, 0.5)
    r_bottom = upgraded(problem, bottom, 0.5)
    print(f"\nHalving p of the top-ranked component {top}: "
          f"r drops {base_r:.3e} -> {r_top:.3e} "
          f"({(1 - r_top / base_r) * 100:.1f}% better)")
    print(f"Halving p of the bottom-ranked component {bottom}: "
          f"r drops {base_r:.3e} -> {r_bottom:.3e} "
          f"({(1 - r_bottom / base_r) * 100:.1f}% better)")
    print("\nThe ranking tells the designer where redundancy or higher-grade "
          "parts pay off.")


if __name__ == "__main__":
    main()
