"""Generalization to a terrestrial power grid (§VI of the paper).

Synthesizes a plant -> substation -> feeder -> customer distribution
architecture with ILP-MR and compares it against ILP-AR on the same
template. Demonstrates that nothing in the framework is aircraft-specific:
the same requirement objects and both algorithms drive a different library
and a different topology.

Run:  python examples/power_grid_design.py
"""

from repro.domains import build_power_grid_template, power_grid_spec
from repro.reliability import approximate_failure, sink_failure_probabilities
from repro.synthesis import synthesize_ilp_ar, synthesize_ilp_mr

TARGET = 1e-8


def main() -> None:
    template = build_power_grid_template(
        num_plants=3, num_substations=3, num_feeders=4, num_customers=3
    )
    print(f"Template: {template}")
    spec = power_grid_spec(template, reliability_target=TARGET)

    print(f"\n=== ILP-MR, r* = {TARGET:.0e} ===")
    mr = synthesize_ilp_mr(spec, backend="scipy")
    print(mr.summary())
    if mr.feasible:
        print(mr.architecture.describe())

    print(f"\n=== ILP-AR, r* = {TARGET:.0e} ===")
    ar = synthesize_ilp_ar(spec, backend="scipy")
    print(ar.summary())
    if ar.feasible:
        print(ar.architecture.describe())

    if mr.feasible and ar.feasible:
        print("\n=== Comparison ===")
        print(f"  ILP-MR cost {mr.cost:.6g} vs ILP-AR cost {ar.cost:.6g}")
        for name, res in (("ILP-MR", mr), ("ILP-AR", ar)):
            worst = max(sink_failure_probabilities(res.architecture).values())
            print(f"  {name}: worst-case exact r = {worst:.3e}")
        approx = approximate_failure(ar.architecture, "C1")
        print(f"  ILP-AR redundancy at C1: {dict(sorted(approx.redundancy.items()))}")


if __name__ == "__main__":
    main()
