"""Mission-time reliability of a synthesized EPS architecture.

Extends the paper's static per-mission failure probabilities toward the
"system dynamics" direction its conclusions sketch: components get
exponential failure *rates* (per flight hour), and the synthesized
architecture is evaluated over mission duration:

* R(t) curve of the worst load across flight lengths;
* the longest mission that still meets a 1e-9 requirement;
* MTTF of the essential-power function;
* the effect of doubling redundancy on all three.

The per-hour rates are chosen so a 1-hour mission reproduces the paper's
p = 2e-4 component failure probability.

Run:  python examples/mission_profile.py
"""

import math

from repro.eps import eps_spec, paper_template
from repro.reliability import problem_from_architecture
from repro.reliability.mission import MissionReliability
from repro.report import format_scientific, format_table
from repro.synthesis import synthesize_ilp_ar

#: Per-flight-hour failure rate matching Table I's p = 2e-4 per 1 h mission.
RATE = -math.log(1 - 2e-4)
SINK = "LL1"


def mission_for(arch) -> MissionReliability:
    problem = problem_from_architecture(arch, SINK)
    graph = problem.graph.copy()
    for node in graph.nodes:
        graph.nodes[node]["rate"] = RATE if graph.nodes[node]["p"] > 0 else 0.0
    return MissionReliability(graph, problem.sources, SINK)


def main() -> None:
    rows = []
    missions = {}
    for label, r_star in (("h=2 design", 2e-6), ("h=3 design", 2e-10)):
        spec = eps_spec(paper_template(), reliability_target=r_star)
        result = synthesize_ilp_ar(spec, backend="scipy")
        if not result.feasible:
            raise SystemExit(f"synthesis failed for {label}")
        missions[label] = (result, mission_for(result.architecture))

    durations = [0.5, 1.0, 5.0, 20.0, 100.0]
    print(f"Failure probability of {SINK} vs mission duration "
          f"(component rate = {RATE:.2e}/h):\n")
    rows = []
    for t in durations:
        row = [f"{t:g} h"]
        for label in missions:
            row.append(format_scientific(missions[label][1].failure_at(t)))
        rows.append(tuple(row))
    print(format_table(["mission", *missions.keys()], rows))

    print("\nOperational envelope:")
    for label, (result, mission) in missions.items():
        t_max = mission.max_mission_duration(1e-9)
        mttf = mission.mttf()
        print(f"  {label} (cost {result.cost:.6g}): "
              f"longest mission meeting r <= 1e-9: {t_max:.3f} h; "
              f"MTTF = {mttf:,.0f} h")

    print("\nExtra redundancy buys mission length at the same per-hour "
          "component quality — the dynamic view of the paper's Fig. 3 "
          "cost/reliability trade-off.")


if __name__ == "__main__":
    main()
