"""Reliability/cost trade-off exploration with ILP-AR (the paper's Fig. 3).

Sweeps the reliability requirement across six orders of magnitude and
synthesizes a cost-optimal architecture for each level with the eager
approximate encoding (Algorithm 3). For every solution it reports:

* the algebra's estimate r~ (eq. 7) that the ILP constrained,
* the exact failure probability r (BDD engine),
* the Theorem 2 optimism bound m*f/M_f,
* cost and per-type redundancy degrees h_ij.

The printed series is the reproduction of Fig. 3: monotonically increasing
cost and redundancy as r* tightens, with r~ tracking r to the right order
of magnitude.

Run:  python examples/eps_ilp_ar_tradeoff.py
"""

from repro.eps import eps_spec, paper_template
from repro.report import format_scientific, format_table
from repro.reliability import approximate_failure, worst_case_failure
from repro.synthesis import synthesize_ilp_ar

REQUIREMENTS = [2e-3, 2e-6, 2e-10]  # the three panels of Fig. 3


def main() -> None:
    rows = []
    for r_star in REQUIREMENTS:
        spec = eps_spec(paper_template(), reliability_target=r_star)
        result = synthesize_ilp_ar(spec, backend="scipy")
        if not result.feasible:
            rows.append((format_scientific(r_star), "infeasible", "-", "-", "-", "-"))
            continue
        arch = result.architecture
        worst_sink = max(
            spec.sinks(), key=lambda s: approximate_failure(arch, s).r_tilde
        )
        approx = approximate_failure(arch, worst_sink)
        rows.append(
            (
                format_scientific(r_star),
                f"{result.cost:.6g}",
                format_scientific(result.approx_reliability),
                format_scientific(result.reliability),
                format_scientific(approx.bound_ratio),
                dict(sorted(approx.redundancy.items())),
            )
        )

    print("ILP-AR trade-off sweep (paper Fig. 3):")
    print(
        format_table(
            ["r* (required)", "cost", "r~ (eq. 7)", "r (exact)",
             "Thm2 bound", "redundancy h_ij"],
            rows,
        )
    )
    print(
        "\nNote how the exact r may slightly exceed r* at the tightest level —"
        "\nexactly the paper's Fig. 3c observation — while staying within the"
        "\nTheorem 2 optimism bound."
    )


if __name__ == "__main__":
    main()
