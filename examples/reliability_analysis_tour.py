"""Tour of the reliability analysis toolbox on the paper's Example 1.

Builds the Fig. 1b architecture (two disjoint generator-bus-DC-bus chains
feeding one load), then:

* computes the exact failure probability with all four exact engines and
  confirms they match the closed form printed in the paper;
* estimates the same quantity by Monte-Carlo and shows the CI;
* evaluates the approximate algebra r~ = p_L + 2p_D^2 + 2p_B^2 + 2p_G^2 and
  the Theorem 2 bound;
* lists minimal path sets and minimal cut sets.

Run:  python examples/reliability_analysis_tour.py
"""

import networkx as nx

from repro.arch import functional_link
from repro.reliability import (
    ReliabilityProblem,
    approximate_failure_from_link,
    failure_probability,
    failure_probability_mc,
    minimal_cut_sets,
    minimal_path_sets,
)

P = 2e-4  # Table I failure probability


def build_example1() -> ReliabilityProblem:
    g = nx.DiGraph()
    for name, ctype in [
        ("G1", "gen"), ("G2", "gen"), ("B1", "bus"), ("B2", "bus"),
        ("D1", "dc_bus"), ("D2", "dc_bus"), ("L", "load"),
    ]:
        g.add_node(name, p=P, ctype=ctype)
    for chain in (("G1", "B1", "D1", "L"), ("G2", "B2", "D2", "L")):
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b)
    return ReliabilityProblem(g, ("G1", "G2"), "L")


def main() -> None:
    problem = build_example1()

    # Closed form from the paper's Example 1.
    inner = P + (1 - P) * (P + (1 - P) * P)
    closed_form = P + (1 - P) * inner**2
    print(f"Paper's closed form: r_L = {closed_form:.12e}\n")

    print("Exact engines:")
    for method in ("bdd", "factoring", "sdp", "ie"):
        value = failure_probability(problem, method=method)
        print(f"  {method:10s} -> {value:.12e}  "
              f"(delta = {abs(value - closed_form):.2e})")

    mc = failure_probability_mc(problem, samples=2_000_000, seed=2015)
    lo, hi = mc.interval()
    print(f"\nMonte-Carlo ({mc.samples} samples): {mc.estimate:.3e} "
          f"in [{lo:.3e}, {hi:.3e}]")

    link = functional_link(problem.graph, list(problem.sources), "L")
    approx = approximate_failure_from_link(
        link, {"gen": P, "bus": P, "dc_bus": P, "load": P}
    )
    print(f"\nApproximate algebra (eq. 7): r~ = {approx.r_tilde:.6e}")
    print(f"  = p_L + 2p_D^2 + 2p_B^2 + 2p_G^2 = {P + 6 * P * P:.6e}")
    print(f"  redundancy degrees h: {dict(sorted(approx.redundancy.items()))}")
    print(f"  Theorem 2 bound m*f/M_f = {approx.bound_ratio:.3f}; "
          f"observed ratio r~/r = {approx.r_tilde / closed_form:.3f}")

    print("\nMinimal path sets:")
    for ps in minimal_path_sets(problem):
        print(f"  {sorted(ps)}")
    print("Minimal cut sets:")
    for cs in minimal_cut_sets(problem):
        print(f"  {sorted(cs)}")


if __name__ == "__main__":
    main()
