"""Declarative batch descriptions for the exploration engine.

A :class:`Job` is one picklable unit of work — a synthesis run, an exact
reliability query, a Monte-Carlo estimate, or a budget bisection — and a
:class:`BatchSpec` is an ordered set of them. Builders cover the sweeps
the paper's evaluation is made of:

* :func:`requirement_sweep` — one synthesis per requirement level
  (Fig. 3 / the ``tradeoff`` command);
* :func:`scaling_sweep` — one synthesis per template size (Table II/III /
  the ``scaling`` command);
* :func:`contingency_sweep` — re-synthesize with each listed component
  knocked out (N-1 style design studies);
* :func:`reliability_map` — exact or Monte-Carlo analysis per sink of a
  fixed architecture;
* :func:`budget_bisection` — the dual question (most reliable design
  under each cost budget) as one bisection job per budget.

Builders only *describe* work; :func:`repro.engine.run_batch` executes it,
serially or across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..synthesis.pareto import TradeoffPoint
from ..synthesis.spec import ForbidEdge, SynthesisSpec

__all__ = [
    "Job",
    "JobResult",
    "BatchSpec",
    "requirement_sweep",
    "scaling_sweep",
    "contingency_sweep",
    "reliability_map",
    "budget_bisection",
    "tradeoff_points",
]

#: Algorithms a synthesis job accepts (mirrors the CLI's ``--algorithm``).
SYNTHESIS_ALGORITHMS = ("ar", "mr", "mr-lazy", "tse")


@dataclass
class Job:
    """One picklable unit of work.

    ``kind`` selects the runner (see :mod:`repro.engine.executor`);
    ``payload`` is everything the runner needs, and must pickle cleanly
    so the job can cross a process boundary; ``meta`` is free-form
    caller context echoed back on the result (sweep coordinates, labels).
    """

    job_id: str
    kind: str
    payload: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class JobResult:
    """Outcome of one job, streamed back as the batch executes."""

    job_id: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    attempts: int = 1
    wall_time: float = 0.0
    worker_pid: Optional[int] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-job :mod:`repro.obs` metrics delta recorded by the worker
    #: (snapshot shape; ``None`` on failed jobs and pre-PR-5 payloads).
    metrics: Optional[Dict[str, Any]] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def unwrap(self) -> Any:
        """The job's value, re-raising its recorded failure if it has one."""
        if self.ok:
            return self.value
        raise RuntimeError(
            f"job {self.job_id!r} failed after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.error}"
        )


@dataclass
class BatchSpec:
    """An ordered, named set of jobs submitted as one unit."""

    name: str
    jobs: List[Job] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    def job_ids(self) -> List[str]:
        return [job.job_id for job in self.jobs]


def _check_algorithm(algorithm: str) -> str:
    if algorithm not in SYNTHESIS_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r} (use one of {SYNTHESIS_ALGORITHMS})"
        )
    return algorithm


def _level_spec(spec: SynthesisSpec, r_star: Optional[float]) -> SynthesisSpec:
    return SynthesisSpec(
        template=spec.template,
        requirements=list(spec.requirements),
        reliability_target=r_star,
        sinks_of_interest=spec.sinks_of_interest,
    )


def requirement_sweep(
    spec: SynthesisSpec,
    levels: Sequence[float],
    algorithm: str = "ar",
    name: str = "requirement-sweep",
    **options: Any,
) -> BatchSpec:
    """One synthesis job per requirement level, loose -> tight.

    ``options`` (``backend``, ``mip_rel_gap``, ``strategy``,
    ``rel_method``, ...) are forwarded verbatim to the synthesis call so
    sweep jobs use exactly the solver configuration a single
    ``synthesize`` run would.
    """
    _check_algorithm(algorithm)
    jobs = [
        Job(
            job_id=f"r_star={r_star:.6g}",
            kind="synthesize",
            payload={
                "spec": _level_spec(spec, r_star),
                "algorithm": algorithm,
                "options": dict(options),
            },
            meta={"r_star": r_star},
        )
        for r_star in sorted(levels, reverse=True)
    ]
    return BatchSpec(name=name, jobs=jobs, meta={"algorithm": algorithm})


def scaling_sweep(
    labeled_specs: Sequence[tuple],
    algorithm: str = "mr",
    name: str = "scaling-sweep",
    **options: Any,
) -> BatchSpec:
    """One synthesis job per ``(label, spec)`` pair (Table II style)."""
    _check_algorithm(algorithm)
    jobs = [
        Job(
            job_id=f"size={label}",
            kind="synthesize",
            payload={
                "spec": spec,
                "algorithm": algorithm,
                "options": dict(options),
            },
            meta={"label": label},
        )
        for label, spec in labeled_specs
    ]
    return BatchSpec(name=name, jobs=jobs, meta={"algorithm": algorithm})


def contingency_sweep(
    spec: SynthesisSpec,
    outages: Sequence[str],
    algorithm: str = "mr",
    name: str = "contingency-sweep",
    include_baseline: bool = True,
    **options: Any,
) -> BatchSpec:
    """Re-synthesize with each listed component unavailable.

    Knocking a component out is expressed declaratively: every template
    edge incident to it is forbidden, so the optimizer must route around
    the outage (or report infeasibility — itself the interesting answer).
    """
    _check_algorithm(algorithm)
    template = spec.template
    jobs: List[Job] = []
    if include_baseline:
        jobs.append(
            Job(
                job_id="outage=none",
                kind="synthesize",
                payload={
                    "spec": _level_spec(spec, spec.reliability_target),
                    "algorithm": algorithm,
                    "options": dict(options),
                },
                meta={"outage": None},
            )
        )
    for outage in outages:
        idx = template.index_of(outage)
        forbidden = [
            ForbidEdge(template.name_of(i), template.name_of(j))
            for (i, j) in template.allowed_edges
            if idx in (i, j)
        ]
        out_spec = SynthesisSpec(
            template=template,
            requirements=list(spec.requirements) + forbidden,
            reliability_target=spec.reliability_target,
            sinks_of_interest=spec.sinks_of_interest,
        )
        jobs.append(
            Job(
                job_id=f"outage={outage}",
                kind="synthesize",
                payload={
                    "spec": out_spec,
                    "algorithm": algorithm,
                    "options": dict(options),
                },
                meta={"outage": outage},
            )
        )
    return BatchSpec(name=name, jobs=jobs, meta={"algorithm": algorithm})


def reliability_map(
    architecture,
    sinks: Optional[Sequence[str]] = None,
    method: str = "bdd",
    samples: int = 100_000,
    seed: int = 0,
    name: str = "reliability-map",
) -> BatchSpec:
    """One reliability query per sink of a fixed architecture.

    ``method="mc"`` uses the Monte-Carlo sampler; each sink's job carries
    its own derived seed (``seed + job index``) so parallel workers draw
    independent, reproducible streams.
    """
    names = list(sinks) if sinks is not None else architecture.sink_names()
    jobs = []
    for i, sink in enumerate(names):
        payload: Dict[str, Any] = {
            "architecture": architecture,
            "sink": sink,
            "method": method,
        }
        if method == "mc":
            payload["samples"] = samples
            payload["seed"] = seed + i
        jobs.append(
            Job(
                job_id=f"sink={sink}",
                kind="reliability",
                payload=payload,
                meta={"sink": sink, "method": method},
            )
        )
    return BatchSpec(name=name, jobs=jobs, meta={"method": method})


def budget_bisection(
    spec: SynthesisSpec,
    budgets: Sequence[float],
    algorithm: str = "ar",
    name: str = "budget-bisection",
    **options: Any,
) -> BatchSpec:
    """One ``most_reliable_under_budget`` bisection per cost budget."""
    _check_algorithm(algorithm)
    jobs = [
        Job(
            job_id=f"budget={budget:.6g}",
            kind="budget",
            payload={
                "spec": _level_spec(spec, None),
                "budget": budget,
                "algorithm": algorithm,
                "options": dict(options),
            },
            meta={"budget": budget},
        )
        for budget in budgets
    ]
    return BatchSpec(name=name, jobs=jobs, meta={"algorithm": algorithm})


def tradeoff_points(results: Sequence[JobResult]) -> List[TradeoffPoint]:
    """Convert a requirement-sweep batch back into sorted tradeoff points.

    Results are ordered loose -> tight exactly like the serial
    :func:`repro.synthesis.explore_tradeoff`; a failed job re-raises its
    recorded error so batch and serial call sites fail identically.
    """
    points = [
        TradeoffPoint(r_star=res.meta["r_star"], result=res.unwrap())
        for res in results
    ]
    points.sort(key=lambda p: p.r_star, reverse=True)
    return points
