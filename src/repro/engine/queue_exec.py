"""File-backed work queue: lease-based execution across processes.

The process pool in :mod:`repro.engine.executor` couples workers to one
parent for the lifetime of a batch. The work queue decouples them: a
coordinator serializes jobs into a shared directory, any number of worker
processes — spawned locally by :func:`iter_queue`, or started by hand via
``repro worker`` on the same filesystem — *lease* jobs out of it, and
results flow back through the same directory. That makes a sweep
restartable (the queue survives the coordinator) and lets several hosts
share one cache-backed queue over a common mount.

Layout under ``queue_dir``::

    jobs/<digest>.pkl       the pickled :class:`~repro.engine.jobs.Job`
    pending/<digest>.json   claim token ({"attempts": n}); presence = runnable
    leased/<digest>.json    the same token while a worker owns the job;
                            the file's mtime is the worker's heartbeat
    results/<digest>.pkl    the finished record (ok payload or failure)
    trace.json              the coordinator's :class:`repro.obs.TraceContext`
                            (trace id + parent span uid); workers adopt it
                            so their spans join the coordinator's trace
    spools/worker-<pid>.jsonl   per-worker telemetry spool: span records,
                            metric deltas, correlated logs, and B&B search
                            events, heartbeat-flushed and folded back into
                            the run by the coordinator's
                            :class:`repro.obs.SpoolCollector`

Jobs are content-addressed by :func:`job_digest` (SHA-256 of the pickled
``(kind, payload)``), so identical subproblems submitted by different
batch entries — or different coordinators — collapse onto one execution;
the coordinator fans the single result back out to every ``job_id`` that
asked for it.

Leasing is one atomic :func:`os.rename` of the claim token from
``pending/`` to ``leased/`` — exactly one worker wins, no lock file, no
daemon. While a job runs, a heartbeat thread refreshes the lease file's
mtime; a lease whose heartbeat goes stale for longer than the TTL
(crashed or wedged worker) is re-queued with its attempt counter bumped,
and fails for good once the attempts exceed the retry budget. The queue
is therefore *at-least-once*: a worker that stalls past the TTL and then
recovers can finish a job that was also re-run elsewhere. Results are
first-write-wins and jobs are deterministic, so duplicated execution
costs time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from multiprocessing import Process
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from .. import obs
from .jobs import BatchSpec, Job, JobResult
from .telemetry import TelemetryWriter

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FileWorkQueue",
    "job_digest",
    "run_worker",
    "iter_queue",
]

#: Seconds a lease may go without a heartbeat before it is re-queued.
DEFAULT_LEASE_TTL = 60.0

#: How many crashed local workers :func:`iter_queue` will replace before
#: failing the remaining jobs instead of spinning forever.
MAX_WORKER_RESTARTS = 3

#: Coordinator/worker polling granularity when the queue is quiet.
POLL_INTERVAL = 0.05

_JOBS_DIR = "jobs"
_PENDING_DIR = "pending"
_LEASED_DIR = "leased"
_RESULTS_DIR = "results"
_STOP_FILE = "stop"
_TRACE_FILE = "trace.json"


def job_digest(job: Job) -> str:
    """Content address of a job: what it runs, not what it is called.

    ``job_id`` and ``meta`` are deliberately excluded — two sweep entries
    that describe the same computation under different labels must share
    one execution.
    """
    blob = pickle.dumps((job.kind, job.payload), protocol=4)
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Lease:
    """A claimed job: its digest plus the attempt this execution is."""

    digest: str
    attempts: int = 1


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_bytes(data)
    tmp.replace(path)


class FileWorkQueue:
    """The shared directory protocol described in the module docstring.

    Every method is safe to call from any number of processes on the
    same directory; filesystem errors degrade to "nothing claimable" /
    "no result yet" rather than raising, because a concurrent peer
    renaming files underneath us is normal operation, not failure.
    """

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self.path = Path(queue_dir)
        self.jobs_dir = self.path / _JOBS_DIR
        self.pending_dir = self.path / _PENDING_DIR
        self.leased_dir = self.path / _LEASED_DIR
        self.results_dir = self.path / _RESULTS_DIR
        self.spool_dir = self.path / obs.SPOOL_DIR_NAME
        for directory in (self.jobs_dir, self.pending_dir, self.leased_dir,
                          self.results_dir, self.spool_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- trace context ----------------------------------------------------

    def write_trace_context(self, ctx: "obs.TraceContext") -> "obs.TraceContext":
        """Persist the coordinator's trace context for workers to adopt.

        A queue that already carries a trace (a resumed or re-attached
        coordinator) keeps its original trace id — the whole point of a
        persistent id is that kill-and-resume lands in *one* trace — but
        the parent span uid and correlation fields are refreshed to the
        live coordinator. Returns the effective context.
        """
        existing = self.load_trace_context()
        if existing is not None and existing.trace_id != ctx.trace_id:
            ctx = obs.TraceContext(
                existing.trace_id, ctx.parent_uid, dict(ctx.fields)
            )
        _atomic_write(
            self.path / _TRACE_FILE,
            json.dumps(ctx.to_dict(), sort_keys=True).encode("utf-8"),
        )
        return ctx

    def load_trace_context(self) -> Optional["obs.TraceContext"]:
        try:
            doc = json.loads(
                (self.path / _TRACE_FILE).read_text(encoding="utf-8")
            )
            return obs.TraceContext.from_dict(doc)
        except (OSError, ValueError, KeyError):
            return None

    def spool_path(self, pid: Optional[int] = None) -> Path:
        """This process's telemetry spool file under the queue."""
        return self.spool_dir / f"worker-{os.getpid() if pid is None else pid}.jsonl"

    # -- enqueue ----------------------------------------------------------

    def enqueue(self, job: Job) -> Tuple[str, str]:
        """Make ``job`` runnable; returns ``(digest, status)``.

        Status is ``"cached"`` (a result already exists — nothing to
        run), ``"duplicate"`` (already pending or leased), or
        ``"enqueued"``.
        """
        digest = job_digest(job)
        if self.has_result(digest):
            return digest, "cached"
        job_path = self.jobs_dir / f"{digest}.pkl"
        if not job_path.exists():
            _atomic_write(job_path, pickle.dumps(job, protocol=4))
        token = f"{digest}.json"
        if (self.pending_dir / token).exists() or (
            self.leased_dir / token
        ).exists():
            return digest, "duplicate"
        self._write_token(self.pending_dir / token, attempts=1)
        return digest, "enqueued"

    def _write_token(self, path: Path, attempts: int) -> None:
        _atomic_write(
            path,
            json.dumps({"attempts": int(attempts)}).encode("utf-8"),
        )

    # -- worker side ------------------------------------------------------

    def claim(self) -> Optional[Lease]:
        """Atomically take one pending job; ``None`` when nothing is."""
        try:
            names = sorted(os.listdir(self.pending_dir))
        except OSError:
            return None
        for name in names:
            if not name.endswith(".json"):
                continue
            src = self.pending_dir / name
            try:
                token = json.loads(src.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                token = {}
            try:
                # The atomic claim: exactly one renamer wins the token.
                os.rename(src, self.leased_dir / name)
            except OSError:
                continue  # another worker beat us to it
            lease_path = self.leased_dir / name
            try:
                os.utime(lease_path)  # the claim is the first heartbeat
            except OSError:
                pass
            return Lease(digest=name[:-5],
                         attempts=int(token.get("attempts", 1)))
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the lease's liveness; self-heals a deleted lease file.

        (A racing ``requeue_expired`` can momentarily delete the token of
        a live worker — recreating it here keeps the job owned.)
        """
        path = self.leased_dir / f"{lease.digest}.json"
        try:
            os.utime(path)
        except OSError:
            try:
                self._write_token(path, attempts=lease.attempts)
            except OSError:
                pass
        if obs.enabled():
            obs.counter("engine.queue.heartbeats").inc()

    def load_job(self, digest: str) -> Optional[Job]:
        try:
            blob = (self.jobs_dir / f"{digest}.pkl").read_bytes()
            return pickle.loads(blob)
        except (OSError, pickle.PickleError):
            return None

    def release(self, lease: Lease, attempts: Optional[int] = None) -> None:
        """Put a leased job back into ``pending/`` (worker-side retry).

        The pending token is written *before* the lease is dropped so a
        crash in between leaves the job claimable, never lost.
        """
        token = f"{lease.digest}.json"
        self._write_token(
            self.pending_dir / token,
            attempts=attempts if attempts is not None else lease.attempts + 1,
        )
        self._discard_lease(lease.digest)

    def _discard_lease(self, digest: str) -> None:
        try:
            (self.leased_dir / f"{digest}.json").unlink()
        except OSError:
            pass

    def write_result(self, digest: str, record: Dict[str, Any]) -> None:
        """Publish a finished record; the first writer wins.

        A duplicated execution (expired-then-recovered lease) may publish
        second — jobs are deterministic, so overwriting with an identical
        record is harmless either way.
        """
        _atomic_write(
            self.results_dir / f"{digest}.pkl",
            pickle.dumps(record, protocol=4),
        )
        self._discard_lease(digest)

    # -- coordinator side -------------------------------------------------

    def has_result(self, digest: str) -> bool:
        return (self.results_dir / f"{digest}.pkl").exists()

    def load_result(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            blob = (self.results_dir / f"{digest}.pkl").read_bytes()
            return pickle.loads(blob)
        except (OSError, pickle.PickleError):
            return None

    def requeue_expired(self, lease_ttl: float,
                        max_attempts: Optional[int] = None) -> Tuple[int, int]:
        """Reclaim leases whose heartbeat went stale.

        Returns ``(requeued, failed)``: expired leases are re-queued with
        their attempt counter bumped, except those already at
        ``max_attempts``, which get a terminal ``TimeoutError`` result
        instead of looping forever on a poisonous job.
        """
        now = time.time()
        requeued = failed = 0
        try:
            names = sorted(os.listdir(self.leased_dir))
        except OSError:
            return 0, 0
        for name in names:
            if not name.endswith(".json"):
                continue
            path = self.leased_dir / name
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # the worker just finished or released it
            if age <= lease_ttl:
                continue
            digest = name[:-5]
            if self.has_result(digest):
                self._discard_lease(digest)
                continue
            try:
                attempts = int(
                    json.loads(path.read_text(encoding="utf-8"))["attempts"]
                )
            except (OSError, ValueError, KeyError):
                attempts = 1
            if max_attempts is not None and attempts >= max_attempts:
                self.write_result(digest, {
                    "ok": False,
                    "attempts": attempts,
                    "error": (
                        f"lease expired after {attempts} attempt(s) "
                        f"(ttl={lease_ttl}s)"
                    ),
                    "error_type": "TimeoutError",
                })
                failed += 1
                continue
            token = self.pending_dir / name
            if not token.exists():
                self._write_token(token, attempts=attempts + 1)
            self._discard_lease(digest)
            requeued += 1
        return requeued, failed

    def counts(self) -> Dict[str, int]:
        """Queue occupancy by stage (diagnostics and tests)."""
        out = {}
        for label, directory in (
            ("jobs", self.jobs_dir), ("pending", self.pending_dir),
            ("leased", self.leased_dir), ("results", self.results_dir),
        ):
            try:
                out[label] = sum(
                    1 for n in os.listdir(directory) if not n.startswith(".")
                    and ".tmp" not in n
                )
            except OSError:
                out[label] = 0
        return out

    def health(self, collector: Optional["obs.SpoolCollector"] = None
               ) -> Dict[str, Any]:
        """The ``/healthz`` contribution: depth, leases, spool backlog.

        ``spool_backlog`` is bytes workers have flushed that nobody has
        folded yet — with a live collector, relative to its offsets;
        standalone, the total spooled bytes. A fleet that stalls shows
        up as ``active_leases`` flatlining while ``queue_depth`` stays
        high and the backlog stops moving. ``oldest_lease_age`` is the
        seconds since the staleest lease's last heartbeat — the signal
        the ``stuck_lease`` alert rule thresholds against its ttl.
        """
        counts = self.counts()
        doc: Dict[str, Any] = {
            "queue_depth": counts["pending"],
            "active_leases": counts["leased"],
            "results": counts["results"],
            "spool_backlog": obs.spool_backlog(
                self.spool_dir, collector=collector
            ),
        }
        oldest: Optional[float] = None
        now = time.time()
        try:
            names = os.listdir(self.leased_dir)
        except OSError:
            names = []
        for name in names:
            if name.startswith(".") or ".tmp" in name:
                continue
            try:
                age = now - (self.leased_dir / name).stat().st_mtime
            except OSError:
                continue
            if oldest is None or age > oldest:
                oldest = age
        if oldest is not None:
            doc["oldest_lease_age"] = round(oldest, 3)
        if collector is not None:
            workers = {}
            for pid, snap in collector.worker_snapshots().items():
                jobs = (snap.get("engine.jobs.completed") or {}).get("value")
                workers[str(pid)] = {"jobs": jobs or 0}
            if workers:
                doc["workers"] = workers
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FileWorkQueue({str(self.path)!r}, {self.counts()})"


# ---------------------------------------------------------------------------
# Worker


def _heartbeat_loop(queue: FileWorkQueue, lease: Lease, interval: float,
                    stop: threading.Event,
                    spool: Optional["obs.TelemetrySpool"] = None) -> None:
    while not stop.wait(interval):
        queue.heartbeat(lease)
        if spool is not None:
            spool.flush()


def _execute_lease(queue: FileWorkQueue, lease: Lease, retries: int,
                   heartbeat_interval: float,
                   spool: Optional["obs.TelemetrySpool"] = None,
                   trace_ctx: Optional["obs.TraceContext"] = None) -> None:
    from .executor import TRANSIENT_EXCEPTIONS, _worker_run

    job = queue.load_job(lease.digest)
    if job is None:
        # The job spec vanished (queue pruned underneath us): the lease
        # is meaningless, drop it.
        queue._discard_lease(lease.digest)
        return
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(queue, lease, heartbeat_interval, stop, spool),
        daemon=True,
    )
    beat.start()
    tracer: Optional[obs.Tracer] = None

    def ship() -> None:
        # Telemetry ships *before* the result is published: the
        # coordinator stops collecting once every result is in, so the
        # ordering guarantees no result ever outruns its spans/metrics.
        if spool is None:
            return
        if tracer is not None:
            for s in tracer.spans:
                spool.emit_span(s)
        spool.ship_metrics()
        spool.flush()

    try:
        try:
            if trace_ctx is not None:
                with obs.trace_context(trace_ctx):
                    with obs.tracing() as tracer:
                        wrapped = _worker_run(job)
            else:
                wrapped = _worker_run(job)
        except TRANSIENT_EXCEPTIONS as exc:
            ship()
            if lease.attempts <= retries:
                if obs.enabled():
                    obs.counter("engine.queue.retries").inc()
                queue.release(lease)
            else:
                queue.write_result(lease.digest, {
                    "ok": False,
                    "attempts": lease.attempts,
                    "error": str(exc) or type(exc).__name__,
                    "error_type": type(exc).__name__,
                })
        except Exception as exc:
            ship()
            queue.write_result(lease.digest, {
                "ok": False,
                "attempts": lease.attempts,
                "error": str(exc) or type(exc).__name__,
                "error_type": type(exc).__name__,
            })
        else:
            ship()
            queue.write_result(lease.digest, {
                "ok": True,
                "attempts": lease.attempts,
                "wrapped": wrapped,
            })
    finally:
        stop.set()
        beat.join(timeout=1.0)


def run_worker(
    queue_dir: Union[str, Path],
    cache_dir: Optional[str] = None,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
    retries: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    stop_file: Optional[str] = None,
    idle_timeout: Optional[float] = None,
    max_jobs: Optional[int] = None,
    poll_interval: float = POLL_INTERVAL,
) -> int:
    """Drain jobs from ``queue_dir`` until told (or timed) to stop.

    This is the body of both the locally-spawned queue workers and the
    ``repro worker`` CLI command. The worker exits when ``stop_file``
    appears, after ``max_jobs`` executions, or after ``idle_timeout``
    seconds without claimable work; with none of the three it serves
    forever. Returns the number of jobs executed.

    Idle workers also sweep expired leases, so a fleet of standalone
    workers recovers crashed peers' jobs without any coordinator.

    Every worker spools its telemetry — lifetime metric deltas, span
    records for jobs run under the queue's trace context, and B&B
    search events — to ``spools/worker-<pid>.jsonl`` for the
    coordinator's collector, and its obslog records carry the run id,
    job digest, and lease attempt as correlation fields.
    """
    from ..ilp.search_events import capture_search_events
    from ..reliability.exact import set_reliability_cache
    from .cache import ReliabilityCache

    queue = FileWorkQueue(queue_dir)
    stop_path = Path(stop_file) if stop_file is not None else queue.path / _STOP_FILE
    cache = ReliabilityCache(cache_dir, backend=cache_backend,
                             shards=cache_shards)
    previous = set_reliability_cache(cache)
    obs.set_tracer(None)  # a forked worker must not share the parent's
    obs.reset_span_stack()  # tracer or its open batch span
    obs.add_observer()
    heartbeat_interval = min(max(lease_ttl / 4.0, 0.02), 2.0)
    executed = 0
    idle_since = time.monotonic()
    spool = obs.TelemetrySpool(queue.spool_path())
    base_ctx = queue.load_trace_context()
    worker_fields: Dict[str, Any] = {"worker_pid": os.getpid()}
    if base_ctx is not None:
        worker_fields.update(base_ctx.fields)

    def spool_search_event(event: Dict[str, Any]) -> None:
        spool.emit("bnb_event", worker_pid=os.getpid(), **event)

    try:
        with obs.log_context(**worker_fields), \
                capture_search_events(spool_search_event):
            obs.log("worker.started", queue=str(queue.path))
            while True:
                if stop_path.exists():
                    break
                if max_jobs is not None and executed >= max_jobs:
                    break
                lease = queue.claim()
                if lease is None:
                    queue.requeue_expired(lease_ttl, max_attempts=retries + 1)
                    if (idle_timeout is not None
                            and time.monotonic() - idle_since > idle_timeout):
                        break
                    time.sleep(poll_interval)
                    continue
                idle_since = time.monotonic()
                executed += 1
                if obs.enabled():
                    obs.counter("engine.queue.leases.claimed").inc()
                if base_ctx is None:
                    # The coordinator may have attached (and written the
                    # trace context) after we started polling.
                    base_ctx = queue.load_trace_context()
                lease_ctx = (
                    base_ctx.with_fields(job_digest=lease.digest[:12],
                                         lease_attempt=lease.attempts)
                    if base_ctx is not None else None
                )
                with obs.log_context(job_digest=lease.digest[:12],
                                     lease_attempt=lease.attempts):
                    obs.log("worker.lease_claimed")
                    _execute_lease(queue, lease, retries, heartbeat_interval,
                                   spool=spool, trace_ctx=lease_ctx)
                    obs.log("worker.lease_done", executed=executed)
            obs.log("worker.stopped", executed=executed)
    finally:
        spool.close()
        obs.remove_observer()
        set_reliability_cache(previous)
        cache.close()
    return executed


# ---------------------------------------------------------------------------
# Coordinator


def _record_result(job: Job, record: Dict[str, Any], primary: bool,
                   writer: TelemetryWriter) -> JobResult:
    from .executor import _ok_result

    if record.get("ok"):
        result = _ok_result(job, record["wrapped"], int(record["attempts"]))
        if not primary:
            # The fan-out copies of a deduplicated execution must not
            # double-count the one worker's metrics and cache traffic.
            result.metrics = None
            result.cache_hits = 0
            result.cache_misses = 0
        # Unlike the pool path, the result envelope is *not* merged into
        # the registry here: queue workers ship their whole lifetime —
        # including claims, heartbeats, and retries that happen outside
        # any job — through their spool, and the collector is the single
        # metrics channel (merging both would double-count).
        return result
    return JobResult(
        job_id=job.job_id,
        ok=False,
        error=record.get("error"),
        error_type=record.get("error_type"),
        attempts=int(record.get("attempts", 1)),
        meta=dict(job.meta),
    )


def iter_queue(
    batch: BatchSpec,
    jobs: int = 2,
    queue_dir: Optional[Union[str, Path]] = None,
    cache_dir: Optional[str] = None,
    retries: int = 1,
    lease_ttl: Optional[float] = None,
    writer: Optional[TelemetryWriter] = None,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
    spawn_workers: bool = True,
    poll_interval: float = POLL_INTERVAL,
) -> Iterator[JobResult]:
    """Run ``batch`` through a file work queue, yielding completions.

    Spawns ``jobs`` local worker processes against ``queue_dir`` (a
    throwaway queue when omitted) unless ``spawn_workers=False``, in
    which case external ``repro worker`` processes pointed at the same
    directory are expected to do the draining. Identical jobs collapse
    onto one execution and fan back out to every requesting ``job_id``.

    The coordinator writes its :class:`repro.obs.TraceContext` into the
    queue (minting one — parented under the live batch span when a
    tracer is active — unless the queue already carries a trace id, in
    which case a resumed run keeps it), folds every worker spool into
    the telemetry journal, the global metrics registry, and the active
    tracer via a :class:`repro.obs.SpoolCollector`, and contributes a
    ``queue`` health source (depth / leases / spool backlog) to
    ``/healthz`` for the duration of the drain.
    """
    writer = writer if writer is not None else TelemetryWriter(None)
    ttl = lease_ttl if lease_ttl is not None else DEFAULT_LEASE_TTL
    own_queue = queue_dir is None
    qdir = (
        Path(tempfile.mkdtemp(prefix="repro-queue-"))
        if own_queue else Path(queue_dir)
    )
    queue = FileWorkQueue(qdir)
    stop_path = queue.path / _STOP_FILE
    try:
        stop_path.unlink()  # a stale stop marker would strand the workers
    except OSError:
        pass

    ctx = obs.current_trace_context()
    cur = obs.current_span()
    if cur is not None:
        # Parent worker spans under the live batch span; keep the run's
        # trace id (and correlation fields) when a context is active.
        ctx = (ctx.reparent(cur) if ctx is not None
               else obs.TraceContext.from_span(cur, batch=batch.name))
    elif ctx is None:
        ctx = obs.TraceContext.mint(batch=batch.name)
    ctx = queue.write_trace_context(ctx)
    collector = obs.SpoolCollector(queue.spool_dir, writer=writer)
    obs.add_health_source("queue", lambda: queue.health(collector=collector))

    by_digest: Dict[str, List[Job]] = {}
    for job in batch.jobs:
        writer.emit("job_start", job=job.job_id, kind=job.kind, mode="queue")
        digest, status = queue.enqueue(job)
        group = by_digest.setdefault(digest, [])
        if group or status in ("duplicate", "cached"):
            writer.emit("job_dedup", job=job.job_id, digest=digest[:12],
                        status=status)
            if obs.enabled():
                obs.counter("engine.queue.jobs.deduped").inc()
        elif obs.enabled():
            obs.counter("engine.queue.jobs.enqueued").inc()
        group.append(job)

    def spawn() -> Process:
        worker = Process(
            target=run_worker,
            kwargs={
                "queue_dir": str(qdir),
                "cache_dir": cache_dir,
                "cache_backend": cache_backend,
                "cache_shards": cache_shards,
                "retries": retries,
                "lease_ttl": ttl,
                "stop_file": str(stop_path),
            },
            daemon=True,
        )
        worker.start()
        return worker

    workers: List[Process] = [spawn() for _ in range(jobs)] if spawn_workers else []
    restarts = 0
    unresolved = set(by_digest)
    try:
        while unresolved:
            progressed = False
            for digest in sorted(unresolved):
                record = queue.load_result(digest)
                if record is None:
                    continue
                # Workers flush their spool before publishing a result,
                # so folding first guarantees the metrics and spans of
                # this job are home before its JobResult is yielded.
                collector.poll()
                unresolved.discard(digest)
                progressed = True
                if obs.enabled():
                    obs.counter("engine.queue.results").inc()
                for i, job in enumerate(by_digest[digest]):
                    yield _record_result(job, record, primary=(i == 0),
                                         writer=writer)
            if not unresolved:
                break
            collector.poll()
            requeued, expired_failed = queue.requeue_expired(
                ttl, max_attempts=retries + 1
            )
            if requeued:
                writer.emit("lease_expired", requeued=requeued)
                if obs.enabled():
                    obs.counter("engine.queue.leases.expired").inc(requeued)
            if expired_failed and obs.enabled():
                obs.counter("engine.queue.leases.failed").inc(expired_failed)
            if spawn_workers:
                for i, worker in enumerate(workers):
                    if worker.is_alive():
                        continue
                    # Workers only exit on the stop file — a dead one
                    # crashed. Replace it a bounded number of times.
                    if restarts >= MAX_WORKER_RESTARTS:
                        continue
                    restarts += 1
                    writer.emit("worker_restart", count=restarts)
                    workers[i] = spawn()
                if workers and all(not w.is_alive() for w in workers):
                    # Restart budget exhausted and nobody is draining:
                    # fail what's left instead of polling forever.
                    for digest in sorted(unresolved):
                        for job in by_digest[digest]:
                            yield JobResult(
                                job_id=job.job_id,
                                ok=False,
                                error="queue workers exhausted restarts",
                                error_type="BrokenWorkerError",
                                meta=dict(job.meta),
                            )
                    unresolved.clear()
                    break
            if not progressed:
                time.sleep(poll_interval)
    finally:
        obs.remove_health_source("queue")
        try:
            stop_path.touch()
        except OSError:
            pass
        for worker in workers:
            worker.join(timeout=10.0)
        for worker in workers:
            if worker.is_alive():  # pragma: no cover - last resort
                worker.terminate()
                worker.join(timeout=1.0)
        # Final sweep: the workers' exit deltas (and, with external
        # workers, anything flushed since the last poll).
        collector.drain()
        if own_queue:
            shutil.rmtree(qdir, ignore_errors=True)
