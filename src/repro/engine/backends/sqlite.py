"""Single-file SQLite tier — the original persistent cache store.

One WAL-mode SQLite file holds every entry. WAL plus a generous busy
timeout lets concurrent reader/writer *processes* coexist on the file,
but within the file there is still exactly one writer at a time — the
scaling wall the sharded tier (:mod:`repro.engine.backends.sharded`)
removes. A closed or otherwise broken connection never propagates out:
``get`` degrades to a miss and ``put`` to a no-op, so the chain in front
keeps serving from memory.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["CACHE_FILENAME", "SQLiteBackend"]

#: Name of the SQLite file created inside a cache directory.
CACHE_FILENAME = "relcache.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reliability (
    digest TEXT PRIMARY KEY,
    method TEXT NOT NULL,
    value REAL NOT NULL,
    created_at REAL NOT NULL
)
"""


class SQLiteBackend:
    """Digest store over one SQLite file (WAL mode, busy timeout).

    One connection may be shared by several service worker threads (the
    global cache hook is process-wide); sqlite3 connections are not
    thread-safe on their own, so every statement runs under the
    backend's lock, and ``check_same_thread=False`` permits the sharing.
    """

    name = "sqlite"

    def __init__(self, path: Union[str, Path],
                 busy_timeout_ms: int = 30_000) -> None:
        self.path = Path(path)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self._lock = threading.RLock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            str(self.path), timeout=self.busy_timeout_ms / 1000.0,
            check_same_thread=False,
        )
        # WAL lets concurrent reader/writer processes coexist; the
        # explicit busy timeout makes writers queue (up to the timeout)
        # instead of failing fast with "database is locked" when several
        # workers share one cache file.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(_SCHEMA)
        self._migrate()
        self._conn.commit()

    @classmethod
    def in_directory(cls, cache_dir: Union[str, Path],
                     busy_timeout_ms: int = 30_000) -> "SQLiteBackend":
        """The conventional single-file layout: ``<dir>/relcache.sqlite``."""
        return cls(Path(cache_dir) / CACHE_FILENAME,
                   busy_timeout_ms=busy_timeout_ms)

    def _migrate(self) -> None:
        """Bring a pre-existing cache file up to the current schema.

        Older caches stored only ``digest -> value``; the ``problem``
        column (the canonical payload audited by :mod:`repro.verify`) is
        added in place. Entries written before the migration keep a NULL
        payload and are simply not auditable.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(reliability)")
        }
        if "problem" not in columns:
            self._conn.execute("ALTER TABLE reliability ADD COLUMN problem TEXT")

    @property
    def closed(self) -> bool:
        return self._conn is None

    def get(self, digest: str) -> Optional[float]:
        if self._conn is None:
            return None
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT value FROM reliability WHERE digest = ?",
                    (digest,),
                ).fetchone()
        except sqlite3.Error:
            # Closed or broken connection: degrade to a miss rather
            # than crashing the analysis that asked.
            return None
        return float(row[0]) if row is not None else None

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self._conn is None:
            return
        blob = (
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
            if payload is not None
            else None
        )
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR IGNORE INTO reliability "
                    "(digest, method, value, created_at, problem) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (digest, method, float(value), time.time(), blob),
                )
                self._conn.commit()
        except sqlite3.Error:
            pass  # persistence degrades; the memory tier keeps the entry

    def put_many(self, entries) -> None:
        """Insert many ``(digest, method, value, payload)`` in one commit.

        The group commit is what makes the sharded tier's write-back
        batching pay: one fsync-eligible transaction per batch instead of
        one per entry.
        """
        if self._conn is None:
            return
        now = time.time()
        rows = [
            (
                digest,
                method,
                float(value),
                now,
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                if payload is not None else None,
            )
            for digest, method, value, payload in entries
        ]
        if not rows:
            return
        try:
            with self._lock:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO reliability "
                    "(digest, method, value, created_at, problem) "
                    "VALUES (?, ?, ?, ?, ?)",
                    rows,
                )
                self._conn.commit()
        except sqlite3.Error:
            pass  # same degradation contract as put()

    def __len__(self) -> int:
        if self._conn is not None:
            try:
                with self._lock:
                    row = self._conn.execute(
                        "SELECT COUNT(*) FROM reliability"
                    ).fetchone()
                return int(row[0])
            except sqlite3.Error:
                pass
        return 0

    def close(self) -> None:
        if self._conn is not None:
            try:
                with self._lock:
                    self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"SQLiteBackend({str(self.path)!r}, {state})"
