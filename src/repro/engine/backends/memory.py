"""Bounded in-memory LRU tier.

The cache's front tier used to be a bare dict that grew for the life of
the process — a slow leak for long service runs whose sweeps touch
millions of distinct subproblems. This backend bounds it: entries are
kept in LRU order (reads refresh recency) and the oldest entry is
evicted once ``max_entries`` is exceeded. Eviction only ever forgets a
*cached copy* — the persistent tier behind it still holds the value, so
a bounded front can cost a re-read, never a recompute of a persisted
entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional

__all__ = ["DEFAULT_MAX_ENTRIES", "MemoryBackend"]

#: Default LRU capacity. A digest key plus a float is ~150 bytes, so the
#: default bounds the front tier around 10 MB per process.
DEFAULT_MAX_ENTRIES = 65_536


class MemoryBackend:
    """In-process LRU map of ``digest -> value``.

    ``max_entries=None`` disables the bound (the pre-bound behaviour,
    useful for short-lived test caches). All operations take the
    backend's lock: the service shares one cache across worker threads.
    """

    name = "memory"

    def __init__(self, max_entries: Optional[int] = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None)")
        self.max_entries = max_entries
        self.evictions = 0
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, digest: str) -> Optional[float]:
        with self._lock:
            value = self._entries.get(digest)
            if value is not None:
                self._entries.move_to_end(digest)
            return value

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return  # first write wins; refresh recency only
            self._entries[digest] = float(value)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def close(self) -> None:  # the LRU has nothing to release
        pass

    @property
    def closed(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryBackend(entries={len(self)}, max={self.max_entries}, "
            f"evictions={self.evictions})"
        )
