"""Filesystem-sharded SQLite tier: many small writers instead of one.

The single-file store serializes every ``put`` behind one SQLite writer
lock — with 8+ pool workers and concurrent service runs all storing
fresh reliability values, the cache itself becomes the bottleneck. This
tier splits the key space by content-hash prefix across ``shards``
independent SQLite files (``shards/relcache-<k>.sqlite``), each behind
its own in-process lock and its own WAL writer, so writers only contend
when they happen to land on the same shard (~1/shards of the time).

The shard count is persisted in ``shards.json`` when the directory is
first created and **always wins** over the constructor argument on
reopen — a digest must keep routing to the shard that stored it, or a
resized reopen would silently turn the whole cache into misses.

Shard files open lazily: a sweep that touches a fraction of the key
space pays only for the shards it actually hits.

Writes are **batched** (write-back with group commit): each shard
buffers up to ``batch_size`` entries in memory and lands them in one
transaction, turning the dominant per-``put`` cost — a SQLite commit —
into an amortized one. A cache can afford this: entries are
recomputable, ``INSERT OR IGNORE`` keeps first-write-wins across racing
flushes, and reads check the buffer first so a writer always sees its
own entries. A crash loses at most ``batch_size - 1`` buffered values
per shard — misses, never corruption. ``flush()``/``close()``/``len()``
force everything to disk.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .sqlite import SQLiteBackend

__all__ = [
    "DEFAULT_BATCH",
    "DEFAULT_SHARDS",
    "MIN_SHARDS",
    "MAX_SHARDS",
    "ShardedBackend",
]

#: Allowed shard-count range. 16 already cuts writer contention an order
#: of magnitude; past 256 the per-file overhead outweighs the spread.
MIN_SHARDS = 16
MAX_SHARDS = 256

#: Default shard count: enough spread for tens of workers, few enough
#: files to stay friendly to directory listings and open-file limits.
DEFAULT_SHARDS = 64

#: Write-back batch size: entries buffered per shard before one group
#: commit. 32 already amortizes the commit below the Python overhead of
#: the put itself; ``batch_size=1`` restores commit-per-put.
DEFAULT_BATCH = 32

#: Name of the shard-layout descriptor inside the cache directory.
SHARDS_META = "shards.json"

#: Subdirectory holding the per-shard SQLite files.
SHARDS_DIR = "shards"


class ShardedBackend:
    """Digest store sharded by content-hash prefix over SQLite files."""

    name = "sharded"

    def __init__(self, cache_dir: Union[str, Path], shards: int = DEFAULT_SHARDS,
                 busy_timeout_ms: int = 30_000,
                 batch_size: int = DEFAULT_BATCH) -> None:
        if not MIN_SHARDS <= int(shards) <= MAX_SHARDS:
            raise ValueError(
                f"shards must be in [{MIN_SHARDS}, {MAX_SHARDS}], got {shards}"
            )
        if int(batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.path = Path(cache_dir) / SHARDS_DIR
        self.path.mkdir(parents=True, exist_ok=True)
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.batch_size = int(batch_size)
        self.shards = self._pin_shard_count(Path(cache_dir), int(shards))
        self._closed = False
        # One slot and one lock per shard; backends open on first touch.
        # The locks are reentrant so the lazy open inside a locked put
        # cannot self-deadlock.
        self._backends: List[Optional[SQLiteBackend]] = [None] * self.shards
        self._locks = [threading.RLock() for _ in range(self.shards)]
        #: Per-shard write-back buffers: digest -> (method, value, payload).
        self._pending: List[Dict[str, tuple]] = [
            {} for _ in range(self.shards)
        ]
        self.shard_hits = [0] * self.shards
        self.shard_misses = [0] * self.shards
        self.shard_stores = [0] * self.shards

    def _pin_shard_count(self, root: Path, requested: int) -> int:
        """Read (or first-write) the directory's immutable shard count."""
        meta_path = root / SHARDS_META
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            return int(meta["shards"])
        except (OSError, ValueError, KeyError):
            pass
        tmp = meta_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps({"version": 1, "shards": requested}) + "\n",
            encoding="utf-8",
        )
        tmp.replace(meta_path)
        # Re-read: if two processes raced the first write, both end up
        # honouring whichever rename landed last — identical content in
        # practice, and a single consistent count either way.
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            return int(meta["shards"])
        except (OSError, ValueError, KeyError):  # pragma: no cover
            return requested

    def shard_of(self, digest: str) -> int:
        """Route a digest to its shard by hex prefix (stable, uniform)."""
        return int(digest[:4], 16) % self.shards

    def _shard(self, index: int) -> Optional[SQLiteBackend]:
        backend = self._backends[index]
        if backend is not None or self._closed:
            return backend
        with self._locks[index]:
            if self._backends[index] is None and not self._closed:
                self._backends[index] = SQLiteBackend(
                    self.path / f"relcache-{index:03d}.sqlite",
                    busy_timeout_ms=self.busy_timeout_ms,
                )
            return self._backends[index]

    def get(self, digest: str) -> Optional[float]:
        index = self.shard_of(digest)
        backend = self._shard(index)
        value = None
        if backend is not None:
            with self._locks[index]:
                buffered = self._pending[index].get(digest)
                value = (
                    float(buffered[1]) if buffered is not None
                    else backend.get(digest)
                )
        if value is None:
            self.shard_misses[index] += 1
        else:
            self.shard_hits[index] += 1
        return value

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        index = self.shard_of(digest)
        backend = self._shard(index)
        if backend is None:
            return
        with self._locks[index]:
            pending = self._pending[index]
            # First-write-wins holds inside the buffer just as it does
            # in the table's INSERT OR IGNORE.
            if digest not in pending:
                pending[digest] = (method, value, payload)
            self.shard_stores[index] += 1
            if len(pending) >= self.batch_size:
                self._flush_shard_locked(index, backend)

    def _flush_shard_locked(self, index: int,
                            backend: SQLiteBackend) -> None:
        pending = self._pending[index]
        if not pending:
            return
        backend.put_many(
            (digest, method, value, payload)
            for digest, (method, value, payload) in pending.items()
        )
        pending.clear()

    def flush(self) -> None:
        """Land every buffered entry on disk (one commit per dirty shard)."""
        for index in range(self.shards):
            if not self._pending[index]:
                continue
            with self._locks[index]:
                backend = self._backends[index]
                if backend is not None:
                    self._flush_shard_locked(index, backend)
                else:
                    self._pending[index].clear()  # closed: nothing to land

    def __len__(self) -> int:
        self.flush()  # buffered entries must count
        total = 0
        for index in range(self.shards):
            # Count only shards that already exist on disk — opening all
            # 256 files to answer len() would defeat the lazy layout.
            if self._backends[index] is None and not (
                self.path / f"relcache-{index:03d}.sqlite"
            ).is_file():
                continue
            backend = self._shard(index)
            if backend is not None:
                total += len(backend)
        return total

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard hit/miss/store counters (for the obs gauges)."""
        return [
            {
                "shard": index,
                "hits": self.shard_hits[index],
                "misses": self.shard_misses[index],
                "stores": self.shard_stores[index],
            }
            for index in range(self.shards)
        ]

    def close(self) -> None:
        if not self._closed:
            self.flush()
        self._closed = True
        for index, backend in enumerate(self._backends):
            if backend is not None:
                backend.close()
                self._backends[index] = None

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        open_shards = sum(1 for b in self._backends if b is not None)
        return (
            f"ShardedBackend({str(self.path)!r}, shards={self.shards}, "
            f"open={open_shards})"
        )
