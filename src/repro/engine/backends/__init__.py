"""Pluggable storage backends for the reliability cache.

:class:`repro.engine.ReliabilityCache` used to be a fixed pair of layers
(an unbounded process dict over one single-writer SQLite file). This
package splits the storage out behind a small protocol so the cache is a
composable read-through/write-back *chain*:

* :class:`MemoryBackend` — bounded in-process LRU, the always-present
  front tier (and the degraded tier when a persistent backend breaks);
* :class:`SQLiteBackend` — the original single-file SQLite store (WAL +
  busy timeout), still the default persistent tier;
* :class:`ShardedBackend` — a filesystem-sharded tier that splits
  entries by content-hash prefix across 16–256 per-shard SQLite files,
  each behind its own lock, so concurrent pool workers and service runs
  stop serializing on one writer.

Every backend speaks digest-level ``get``/``put`` (plus ``__len__``,
``close`` and a ``closed`` flag); the problem-level ``lookup``/``store``
API — and the hit/miss bookkeeping behind the obs gauges — stays on
:class:`~repro.engine.cache.ReliabilityCache` itself, so installing a
different backend can never change *what* is cached, only *where*.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol, runtime_checkable

from .memory import DEFAULT_MAX_ENTRIES, MemoryBackend
from .sharded import DEFAULT_SHARDS, MAX_SHARDS, MIN_SHARDS, ShardedBackend
from .sqlite import SQLiteBackend

__all__ = [
    "CacheBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "BACKEND_NAMES",
    "DEFAULT_MAX_ENTRIES",
    "DEFAULT_SHARDS",
    "MIN_SHARDS",
    "MAX_SHARDS",
    "make_backend",
]

#: Persistent backend names accepted by :func:`make_backend` (and the
#: CLI ``--cache-backend`` flag). ``auto`` resolves to ``sqlite`` for
#: backward compatibility unless a shard count is requested.
BACKEND_NAMES = ("auto", "memory", "sqlite", "sharded")


@runtime_checkable
class CacheBackend(Protocol):
    """Digest-level storage contract shared by every cache tier.

    Implementations must be safe to call from multiple threads of one
    process, must treat their own storage failures as misses (``get``
    returns ``None``, ``put`` degrades to a no-op) rather than raising,
    and must keep ``put`` idempotent: the first write for a digest wins
    and later writes of the same digest are ignored, so replaying a
    computation can never flip a cached value.
    """

    def get(self, digest: str) -> Optional[float]:
        """Cached value for ``digest``, or ``None`` on miss/breakage."""
        ...

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store ``value`` (first write wins); best-effort on breakage."""
        ...

    def __len__(self) -> int:
        ...

    def close(self) -> None:
        ...

    @property
    def closed(self) -> bool:
        ...


def make_backend(
    name: str,
    cache_dir: Optional[str],
    busy_timeout_ms: int = 30_000,
    shards: Optional[int] = None,
) -> Optional[CacheBackend]:
    """Build the persistent tier ``name`` describes (``None`` for none).

    ``auto`` picks ``sharded`` when a shard count was explicitly
    requested and ``sqlite`` otherwise; ``memory`` (or a missing
    ``cache_dir``) yields no persistent tier at all — the cache then
    runs on its bounded in-memory front alone.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown cache backend {name!r} (use one of {BACKEND_NAMES})"
        )
    if cache_dir is None or name == "memory":
        return None
    if name == "auto":
        name = "sharded" if shards else "sqlite"
    if name == "sqlite":
        return SQLiteBackend.in_directory(
            cache_dir, busy_timeout_ms=busy_timeout_ms
        )
    return ShardedBackend(
        cache_dir, shards=shards or DEFAULT_SHARDS,
        busy_timeout_ms=busy_timeout_ms,
    )
