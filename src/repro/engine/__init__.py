"""Parallel design-space exploration engine.

The paper's evaluation — Table II scaling sweeps, the Fig. 3
cost/reliability trade-off, contingency studies — is a pile of
*independent* synthesis and reliability-analysis runs. This subsystem
turns those piles into first-class batches:

* :mod:`repro.engine.jobs` — a declarative :class:`Job` /
  :class:`BatchSpec` layer with builders for requirement sweeps, template
  scaling sweeps, contingency sets, per-sink reliability maps and budget
  bisections;
* :mod:`repro.engine.executor` — :func:`run_batch` /
  :func:`iter_batch`, a ``concurrent.futures`` process-pool executor
  with per-job retry and timeout that degrades to a serial loop at
  ``jobs=1``;
* :mod:`repro.engine.queue_exec` — the ``executor="queue"`` mode: a
  file-backed work queue with atomic-rename leases, heartbeats and
  digest-level job dedup, drained by local or standalone
  (``repro worker``) worker processes;
* :mod:`repro.engine.cache` — a persistent content-addressed
  :class:`ReliabilityCache` plugged beneath
  :func:`repro.reliability.failure_probability`, so ILP-MR's RELANALYSIS
  loop and sweep re-evaluations never re-analyze a graph twice — stored
  through pluggable backends (:mod:`repro.engine.backends`): a bounded
  in-memory LRU front tier over a single-file SQLite store or a
  filesystem-sharded tier built for concurrent writers;
* :mod:`repro.engine.telemetry` — JSONL run telemetry per batch plus
  roll-up summaries rendered by :func:`repro.report.render_batch_summary`.

``repro.synthesis.explore_tradeoff``, the CLI ``scaling`` / ``tradeoff`` /
``sweep`` commands and the benchmark harness all route through here.
"""

from .backends import BACKEND_NAMES, CacheBackend
from .cache import CacheStats, ReliabilityCache, problem_digest
from .executor import (
    EXECUTOR_MODES,
    BatchResult,
    execute_job,
    iter_batch,
    register_runner,
    run_batch,
)
from .queue_exec import FileWorkQueue, job_digest, run_worker
from .jobs import (
    BatchSpec,
    Job,
    JobResult,
    budget_bisection,
    contingency_sweep,
    reliability_map,
    requirement_sweep,
    scaling_sweep,
    tradeoff_points,
)
from .telemetry import (
    TelemetryWriter,
    completed_jobs,
    read_events,
    summarize_telemetry,
)

__all__ = [
    "BACKEND_NAMES",
    "BatchResult",
    "BatchSpec",
    "CacheBackend",
    "CacheStats",
    "EXECUTOR_MODES",
    "FileWorkQueue",
    "Job",
    "JobResult",
    "ReliabilityCache",
    "TelemetryWriter",
    "budget_bisection",
    "completed_jobs",
    "contingency_sweep",
    "execute_job",
    "iter_batch",
    "job_digest",
    "problem_digest",
    "read_events",
    "register_runner",
    "reliability_map",
    "requirement_sweep",
    "run_batch",
    "run_worker",
    "scaling_sweep",
    "summarize_telemetry",
    "tradeoff_points",
]
