"""Structured run telemetry — one JSONL event stream per batch.

Every batch the engine executes can append its life cycle to a JSONL file:
``batch_start``, per-job ``job_start`` / ``job_end`` / ``job_retry`` /
``job_timeout``, and a closing ``batch_end`` carrying wall time and cache
hit/miss totals. Events from successive runs append to the same file (each
run under a fresh ``batch`` id), so a warm-cache re-run can be compared
against its cold predecessor with nothing but the telemetry file:

    >>> summaries = summarize_telemetry(".relcache/telemetry.jsonl")
    >>> [s["wall_time"] for s in summaries]       # doctest: +SKIP
    [12.4, 1.7]
    >>> [s["cache_hits"] for s in summaries]      # doctest: +SKIP
    [0, 34]

:func:`repro.report.render_batch_summary` renders these summaries as the
same ASCII tables the benchmark harness prints.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "TelemetryWriter",
    "completed_jobs",
    "read_events",
    "summarize_telemetry",
]

_BATCH_COUNTER = itertools.count(1)


class TelemetryWriter:
    """Append-mode JSONL event writer for one batch run.

    ``path=None`` makes every method a no-op so call sites never need to
    branch on whether telemetry was requested.
    """

    def __init__(self, path: Optional[Union[str, Path]], batch: str = "batch") -> None:
        self.path = Path(path) if path is not None else None
        self.batch_id = f"{batch}-{os.getpid()}-{next(_BATCH_COUNTER)}"
        self._fh = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    @property
    def enabled(self) -> bool:
        return self._fh is not None

    def emit(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            return
        record = {"ts": time.time(), "batch": self.batch_id, "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        try:
            self._fh.write(line)
            self._fh.flush()
        except (ValueError, OSError):
            # The handle was closed (or broke) underneath us — e.g. emit
            # after close(), or an interpreter-shutdown race. Telemetry
            # must never take the run down, so degrade to the same no-op
            # contract as ``path=None`` from here on.
            self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file (skipping any truncated trailing line)."""
    events: List[Dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


def completed_jobs(
    source: Union[str, Path, Iterable[Dict[str, Any]]],
) -> Dict[str, bool]:
    """``job_id -> ok`` for every ``job_end`` event in a telemetry stream.

    The journal a crash-resumed batch consults: a job with a recorded
    ``job_end`` finished (successfully or not) before the interruption,
    so replaying the batch can skip it. A job retried across batches
    keeps its *latest* outcome.
    """
    if isinstance(source, (str, Path)):
        events: Iterable[Dict[str, Any]] = read_events(source)
    else:
        events = source
    finished: Dict[str, bool] = {}
    for event in events:
        if event.get("event") == "job_end" and event.get("job") is not None:
            finished[str(event["job"])] = bool(event.get("ok"))
    return finished


def summarize_telemetry(
    source: Union[str, Path, Iterable[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Per-batch roll-up of a telemetry stream, in batch start order.

    Accepts a JSONL path or an iterable of already-parsed events. Each
    summary reports job counts, failures, wall time, and cache totals —
    the numbers the acceptance comparison between a cold and a warm run
    needs.

    A batch that crashed (or was killed) before its ``batch_end`` event
    still gets a wall time — the gap between its first and last recorded
    event timestamps, a lower bound on the truth — and is flagged with
    ``"incomplete": True`` so consumers can tell the estimate apart from
    a measured value.
    """
    if isinstance(source, (str, Path)):
        events: Iterable[Dict[str, Any]] = read_events(source)
    else:
        events = source

    summaries: Dict[str, Dict[str, Any]] = {}
    span_events = {"span_start", "span_end"}
    for event in events:
        if event.get("event") in span_events:
            continue  # tracer spans share the stream; not batch life cycle
        batch = event.get("batch", "?")
        summary = summaries.setdefault(
            batch,
            {
                "batch": batch,
                "name": None,
                "jobs": 0,
                "ok": 0,
                "failed": 0,
                "retries": 0,
                "wall_time": None,
                "cache_hits": 0,
                "cache_misses": 0,
                "incomplete": True,
                "_first_ts": None,
                "_last_ts": None,
            },
        )
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if summary["_first_ts"] is None:
                summary["_first_ts"] = ts
            summary["_last_ts"] = ts
        kind = event.get("event")
        if kind == "batch_start":
            summary["name"] = event.get("name")
            summary["jobs"] = event.get("jobs", 0)
        elif kind == "job_end":
            if event.get("ok"):
                summary["ok"] += 1
            else:
                summary["failed"] += 1
        elif kind == "job_retry":
            summary["retries"] += 1
        elif kind == "batch_end":
            summary["wall_time"] = event.get("wall_time")
            summary["cache_hits"] = event.get("cache_hits", 0)
            summary["cache_misses"] = event.get("cache_misses", 0)
            summary["incomplete"] = False

    for summary in summaries.values():
        first, last = summary.pop("_first_ts"), summary.pop("_last_ts")
        if summary["incomplete"] and summary["wall_time"] is None:
            if first is not None and last is not None:
                summary["wall_time"] = max(0.0, last - first)
    return list(summaries.values())
