"""Persistent content-addressed reliability cache.

Exact reliability analysis (BDD compilation, factoring, SDP) dominates the
cost of every sweep, yet sweeps keep re-analyzing the same instantiated
graphs: neighbouring requirement levels synthesize identical candidate
architectures, ILP-MR re-visits candidates across runs, and a re-run of a
whole benchmark recomputes everything from scratch.

The cache keys each analysis by a canonical SHA-256 digest of the
*restricted* reliability problem — the relevant subgraph's nodes with their
exact failure probabilities (hex-encoded, so the key is bit-precise), its
edges, the source set, the sink, and the analysis method. Two
architectures that induce the same relevant graph share an entry, and a
cached value is the very float the engine produced, so warm results are
bit-identical to cold ones.

Alongside the digest, each entry stores the canonical problem payload
itself, so a cached value can later be *audited*: :mod:`repro.verify`
reconstructs the problem from the payload and recomputes the value with a
different engine than the one that produced it
(:func:`repro.verify.audit_cache`).

Entries persist in a single SQLite file under ``cache_dir`` (WAL mode, so
concurrent worker processes can read and write safely); a per-process
in-memory layer keeps repeated lookups off the disk. ``cache_dir=None``
gives a memory-only cache, useful for a single serial sweep or tests.
A closed (or otherwise failing) SQLite connection never propagates out of
the cache: every operation degrades to the in-memory layer, so a stale
handle left installed beneath ``failure_probability`` cannot crash an
analysis.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

import networkx as nx

from .. import obs

__all__ = [
    "CacheStats",
    "ReliabilityCache",
    "problem_digest",
    "problem_payload",
    "payload_digest",
    "problem_from_payload",
]

#: Name of the SQLite file created inside ``cache_dir``.
CACHE_FILENAME = "relcache.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS reliability (
    digest TEXT PRIMARY KEY,
    method TEXT NOT NULL,
    value REAL NOT NULL,
    created_at REAL NOT NULL
)
"""


def problem_payload(problem, method: str) -> Dict[str, Any]:
    """Canonical JSON-able description of a reliability query.

    Captures the restricted problem (irrelevant nodes cannot change the
    answer) plus the engine name. Failure probabilities are hex-encoded so
    the payload distinguishes values that differ in the last bit — and
    round-trips them exactly through :func:`problem_from_payload`.
    """
    restricted = problem.restricted()
    graph = restricted.graph
    return {
        "nodes": sorted(
            (str(n), float(graph.nodes[n]["p"]).hex()) for n in graph.nodes
        ),
        "edges": sorted((str(u), str(v)) for u, v in graph.edges),
        "sources": sorted(str(s) for s in restricted.sources),
        "sink": str(restricted.sink),
        "method": method,
    }


def payload_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def problem_digest(problem, method: str) -> str:
    """Canonical content address of a reliability query."""
    return payload_digest(problem_payload(problem, method))


def problem_from_payload(payload: Dict[str, Any]):
    """Reconstruct the :class:`ReliabilityProblem` a payload describes.

    The payload's hex-encoded probabilities restore bit-identically, so
    re-analyzing the reconstructed problem reproduces the cached
    computation exactly — the basis of cache auditing.
    """
    from ..reliability.events import ReliabilityProblem

    graph = nx.DiGraph()
    for name, hex_p in payload["nodes"]:
        graph.add_node(str(name), p=float.fromhex(hex_p))
    graph.add_edges_from((str(u), str(v)) for u, v in payload["edges"])
    return ReliabilityProblem(
        graph, tuple(str(s) for s in payload["sources"]), str(payload["sink"])
    )


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance (i.e. one process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


class ReliabilityCache:
    """Content-addressed failure-probability cache.

    Implements the protocol :func:`repro.reliability.failure_probability`
    consults when installed via
    :func:`repro.reliability.set_reliability_cache`: ``lookup(problem,
    method)`` returning ``None`` on miss, and ``store(problem, method,
    value)``.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 busy_timeout_ms: int = 30_000) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.stats = CacheStats()
        self._memory: Dict[str, float] = {}
        self._conn: Optional[sqlite3.Connection] = None
        # One connection may be shared by several service worker threads
        # (the global cache hook is process-wide); sqlite3 connections are
        # not thread-safe on their own, so every statement runs under this
        # lock, and ``check_same_thread=False`` permits the sharing.
        self._db_lock = threading.RLock()
        if self.cache_dir is not None:
            directory = Path(self.cache_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self.path = directory / CACHE_FILENAME
            self._conn = sqlite3.connect(
                str(self.path), timeout=self.busy_timeout_ms / 1000.0,
                check_same_thread=False,
            )
            # WAL lets concurrent reader/writer processes coexist; the
            # explicit busy timeout makes writers queue (up to the
            # timeout) instead of failing fast with "database is locked"
            # when several service workers share one cache file.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute(f"PRAGMA busy_timeout={self.busy_timeout_ms}")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._migrate()
            self._conn.commit()
        else:
            self.path = None

    def _migrate(self) -> None:
        """Bring a pre-existing cache file up to the current schema.

        Older caches stored only ``digest -> value``; the ``problem``
        column (the canonical payload audited by :mod:`repro.verify`) is
        added in place. Entries written before the migration keep a NULL
        payload and are simply not auditable.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(reliability)")
        }
        if "problem" not in columns:
            self._conn.execute("ALTER TABLE reliability ADD COLUMN problem TEXT")

    @property
    def closed(self) -> bool:
        """True when the SQLite layer is gone (never opened, or closed)."""
        return self.cache_dir is not None and self._conn is None

    # -- digest-level API -------------------------------------------------

    def get(self, digest: str) -> Optional[float]:
        if digest in self._memory:
            return self._memory[digest]
        if self._conn is not None:
            try:
                with self._db_lock:
                    row = self._conn.execute(
                        "SELECT value FROM reliability WHERE digest = ?",
                        (digest,),
                    ).fetchone()
            except sqlite3.Error:
                # Closed or broken connection: degrade to the in-memory
                # layer rather than crashing the analysis that asked.
                row = None
            if row is not None:
                value = float(row[0])
                self._memory[digest] = value
                return value
        return None

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._memory[digest] = value
        if self._conn is not None:
            blob = (
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                if payload is not None
                else None
            )
            try:
                with self._db_lock:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO reliability "
                        "(digest, method, value, created_at, problem) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (digest, method, float(value), time.time(), blob),
                    )
                    self._conn.commit()
            except sqlite3.Error:
                pass  # keep the in-memory entry; persistence degrades

    # -- problem-level API (the failure_probability hook) -----------------

    def lookup(self, problem, method: str) -> Optional[float]:
        value = self.get(problem_digest(problem, method))
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        if obs.enabled():
            self._publish_metrics()
        return value

    def store(self, problem, method: str, value: float) -> None:
        payload = problem_payload(problem, method)
        self.put(payload_digest(payload), method, value, payload=payload)
        self.stats.stores += 1
        if obs.enabled():
            self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Mirror the hit/miss/store counters into the obs gauges.

        Gauges (not counters) because several cache instances can come
        and go within one traced run; the gauge always shows the live
        instance's totals.
        """
        obs.gauge("reliability.cache.hits").set(self.stats.hits)
        obs.gauge("reliability.cache.misses").set(self.stats.misses)
        obs.gauge("reliability.cache.stores").set(self.stats.stores)
        obs.gauge("reliability.cache.hit_rate").set(round(self.stats.hit_rate, 4))

    # -- housekeeping -----------------------------------------------------

    def __len__(self) -> int:
        if self._conn is not None:
            try:
                with self._db_lock:
                    row = self._conn.execute(
                        "SELECT COUNT(*) FROM reliability"
                    ).fetchone()
                return int(row[0])
            except sqlite3.Error:
                pass
        return len(self._memory)

    def close(self) -> None:
        if self._conn is not None:
            try:
                with self._db_lock:
                    self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
            self._conn = None

    def __enter__(self) -> "ReliabilityCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache_dir or "memory"
        return (
            f"ReliabilityCache({where!r}, entries={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
