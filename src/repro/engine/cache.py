"""Persistent content-addressed reliability cache.

Exact reliability analysis (BDD compilation, factoring, SDP) dominates the
cost of every sweep, yet sweeps keep re-analyzing the same instantiated
graphs: neighbouring requirement levels synthesize identical candidate
architectures, ILP-MR re-visits candidates across runs, and a re-run of a
whole benchmark recomputes everything from scratch.

The cache keys each analysis by a canonical SHA-256 digest of the
*restricted* reliability problem — the relevant subgraph's nodes with their
exact failure probabilities (hex-encoded, so the key is bit-precise), its
edges, the source set, the sink, and the analysis method. Two
architectures that induce the same relevant graph share an entry, and a
cached value is the very float the engine produced, so warm results are
bit-identical to cold ones.

Alongside the digest, each entry stores the canonical problem payload
itself, so a cached value can later be *audited*: :mod:`repro.verify`
reconstructs the problem from the payload and recomputes the value with a
different engine than the one that produced it
(:func:`repro.verify.audit_cache`).

Storage is a read-through/write-back *chain* of pluggable backends
(:mod:`repro.engine.backends`): a bounded in-memory LRU front tier keeps
repeated lookups off the disk, backed (when ``cache_dir`` is given) by
either the classic single-file SQLite store (``backend="sqlite"``, the
default) or a filesystem-sharded tier (``backend="sharded"``) that splits
entries by content-hash prefix across per-shard SQLite files so
concurrent workers stop serializing on one writer. ``cache_dir=None``
gives a memory-only cache, useful for a single serial sweep or tests.
A closed (or otherwise failing) persistent tier never propagates out of
the cache: every operation degrades to the bounded in-memory layer, so a
stale handle left installed beneath ``failure_probability`` cannot crash
an analysis.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

import networkx as nx

from .. import obs
from .backends import (
    DEFAULT_MAX_ENTRIES,
    MemoryBackend,
    make_backend,
)
from .backends.sqlite import CACHE_FILENAME

__all__ = [
    "CACHE_FILENAME",
    "CacheStats",
    "ReliabilityCache",
    "problem_digest",
    "problem_payload",
    "payload_digest",
    "problem_from_payload",
]


def problem_payload(problem, method: str) -> Dict[str, Any]:
    """Canonical JSON-able description of a reliability query.

    Captures the restricted problem (irrelevant nodes cannot change the
    answer) plus the engine name. Failure probabilities are hex-encoded so
    the payload distinguishes values that differ in the last bit — and
    round-trips them exactly through :func:`problem_from_payload`.
    """
    restricted = problem.restricted()
    graph = restricted.graph
    return {
        "nodes": sorted(
            (str(n), float(graph.nodes[n]["p"]).hex()) for n in graph.nodes
        ),
        "edges": sorted((str(u), str(v)) for u, v in graph.edges),
        "sources": sorted(str(s) for s in restricted.sources),
        "sink": str(restricted.sink),
        "method": method,
    }


def payload_digest(payload: Dict[str, Any]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def problem_digest(problem, method: str) -> str:
    """Canonical content address of a reliability query."""
    return payload_digest(problem_payload(problem, method))


def problem_from_payload(payload: Dict[str, Any]):
    """Reconstruct the :class:`ReliabilityProblem` a payload describes.

    The payload's hex-encoded probabilities restore bit-identically, so
    re-analyzing the reconstructed problem reproduces the cached
    computation exactly — the basis of cache auditing.
    """
    from ..reliability.events import ReliabilityProblem

    graph = nx.DiGraph()
    for name, hex_p in payload["nodes"]:
        graph.add_node(str(name), p=float.fromhex(hex_p))
    graph.add_edges_from((str(u), str(v)) for u, v in payload["edges"])
    return ReliabilityProblem(
        graph, tuple(str(s) for s in payload["sources"]), str(payload["sink"])
    )


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance (i.e. one process)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": round(self.hit_rate, 4),
        }


class ReliabilityCache:
    """Content-addressed failure-probability cache.

    Implements the protocol :func:`repro.reliability.failure_probability`
    consults when installed via
    :func:`repro.reliability.set_reliability_cache`: ``lookup(problem,
    method)`` returning ``None`` on miss, and ``store(problem, method,
    value)``.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent tier; ``None`` keeps the cache
        memory-only.
    busy_timeout_ms:
        SQLite busy timeout applied to every persistent connection.
    backend:
        Persistent tier to use under ``cache_dir``: ``"sqlite"`` (one
        WAL file, the default via ``"auto"``), ``"sharded"`` (per-shard
        SQLite files keyed by digest prefix — the concurrent-writer
        tier), or ``"memory"`` to force a memory-only cache even with a
        ``cache_dir``.
    shards:
        Shard count for the sharded tier (16–256). Setting it with
        ``backend="auto"`` selects the sharded tier. A directory that
        already holds a sharded cache keeps its original count.
    max_memory_entries:
        LRU bound of the in-memory front tier (``None`` = unbounded).
        Eviction only forgets in-process copies; persisted entries are
        re-read on the next lookup.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 busy_timeout_ms: int = 30_000,
                 backend: str = "auto",
                 shards: Optional[int] = None,
                 max_memory_entries: Optional[int] = DEFAULT_MAX_ENTRIES,
                 ) -> None:
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.busy_timeout_ms = int(busy_timeout_ms)
        self.stats = CacheStats()
        self._memory = MemoryBackend(max_entries=max_memory_entries)
        self._persistent = make_backend(
            backend, self.cache_dir, busy_timeout_ms=self.busy_timeout_ms,
            shards=shards,
        )
        self.backend_name = (
            self._persistent.name if self._persistent is not None else "memory"
        )
        self.path = (
            self._persistent.path if self._persistent is not None else None
        )

    @property
    def _conn(self):
        """The single-file tier's raw SQLite connection (compat shim).

        Tests and diagnostics reach through this to poke the connection
        (e.g. closing it behind the cache's back to exercise the
        degraded path); the sharded tier has no single connection and
        reports ``None``.
        """
        return getattr(self._persistent, "_conn", None)

    @property
    def closed(self) -> bool:
        """True when the persistent layer is gone (never opened/closed)."""
        return self.cache_dir is not None and (
            self._persistent is None or self._persistent.closed
        )

    @property
    def memory_evictions(self) -> int:
        """LRU evictions performed by the bounded front tier."""
        return self._memory.evictions

    # -- digest-level API -------------------------------------------------

    def get(self, digest: str) -> Optional[float]:
        value = self._memory.get(digest)
        if value is not None:
            return value
        if self._persistent is not None:
            value = self._persistent.get(digest)
            if value is not None:
                # Read-through: promote the persisted entry to the front
                # tier so the next lookup skips the disk.
                self._memory.put(digest, "", value)
                return value
        return None

    def put(
        self,
        digest: str,
        method: str,
        value: float,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._memory.put(digest, method, value)
        if self._persistent is not None:
            self._persistent.put(digest, method, value, payload=payload)

    # -- problem-level API (the failure_probability hook) -----------------

    def lookup(self, problem, method: str) -> Optional[float]:
        value = self.get(problem_digest(problem, method))
        if value is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        if obs.enabled():
            self._publish_metrics()
        return value

    def store(self, problem, method: str, value: float) -> None:
        payload = problem_payload(problem, method)
        self.put(payload_digest(payload), method, value, payload=payload)
        self.stats.stores += 1
        if obs.enabled():
            self._publish_metrics()

    def _publish_metrics(self) -> None:
        """Mirror the hit/miss/store counters into the obs gauges.

        Gauges (not counters) because several cache instances can come
        and go within one traced run; the gauge always shows the live
        instance's totals. The sharded tier additionally publishes
        per-shard gauges so a hot shard (skewed digest prefix, or a
        contended writer) is visible from ``/metrics``.
        """
        obs.gauge("reliability.cache.hits").set(self.stats.hits)
        obs.gauge("reliability.cache.misses").set(self.stats.misses)
        obs.gauge("reliability.cache.stores").set(self.stats.stores)
        obs.gauge("reliability.cache.hit_rate").set(round(self.stats.hit_rate, 4))
        obs.gauge("reliability.cache.memory_evictions").set(
            self._memory.evictions
        )
        shard_stats = getattr(self._persistent, "shard_stats", None)
        if shard_stats is not None:
            for row in shard_stats():
                if not (row["hits"] or row["misses"] or row["stores"]):
                    continue  # keep /metrics free of never-touched shards
                prefix = f"reliability.cache.shard.{row['shard']:03d}"
                obs.gauge(f"{prefix}.hits").set(row["hits"])
                obs.gauge(f"{prefix}.misses").set(row["misses"])
                obs.gauge(f"{prefix}.stores").set(row["stores"])

    # -- housekeeping -----------------------------------------------------

    def __len__(self) -> int:
        if self._persistent is not None and not self._persistent.closed:
            count = len(self._persistent)
            # A broken-but-not-closed tier answers 0; fall back to the
            # memory tier so the degraded cache still reports something.
            if count or not len(self._memory):
                return count
        return len(self._memory)

    def close(self) -> None:
        if self._persistent is not None:
            self._persistent.close()

    def __enter__(self) -> "ReliabilityCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.cache_dir or "memory"
        return (
            f"ReliabilityCache({where!r}, backend={self.backend_name!r}, "
            f"entries={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )
