"""Batch execution: serial loop or process pool, streaming results back.

``run_batch(batch, jobs=4, cache_dir=..., telemetry=...)`` is the single
entry point every sweep routes through:

* ``jobs=1`` (the default) degrades gracefully to an in-process loop —
  no pool, no pickling, identical results;
* ``jobs>1`` fans the batch out over a ``concurrent.futures``
  process pool. Each worker installs its own handle onto the shared
  persistent :class:`repro.engine.ReliabilityCache` in the pool
  initializer, so exact reliability values computed by one worker are
  reused by every other worker (and by every later run).

Failures are contained per job: a crashed or failed job yields a
``JobResult(ok=False, ...)`` instead of poisoning the batch. Transient
failures (``OSError``, timeouts, a broken pool) are retried up to
``retries`` times; a broken pool is rebuilt and its in-flight jobs
resubmitted. Per-job ``timeout`` is enforced in pool mode (a serial loop
cannot preempt a running engine); note a timed-out worker process keeps
running to completion in the background — its result is discarded.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .. import obs
from ..reliability.exact import get_reliability_cache, reliability_cache
from .cache import ReliabilityCache
from .jobs import BatchSpec, Job, JobResult
from .telemetry import TelemetryWriter

__all__ = [
    "BatchResult",
    "EXECUTOR_MODES",
    "run_batch",
    "iter_batch",
    "execute_job",
    "register_runner",
]

#: Exception types worth retrying: environmental, not semantic.
TRANSIENT_EXCEPTIONS = (OSError, TimeoutError, BrokenProcessPool)

#: How many times a pool may be rebuilt before the batch gives up.
MAX_POOL_RESTARTS = 3


# ---------------------------------------------------------------------------
# Job runners


def _run_synthesize(job: Job) -> Any:
    from ..synthesis.ilp_ar import synthesize_ilp_ar
    from ..synthesis.ilp_mr import synthesize_ilp_mr
    from ..synthesis.ilp_tse import synthesize_ilp_tse

    spec = job.payload["spec"]
    algorithm = job.payload["algorithm"]
    options = dict(job.payload.get("options", {}))
    if algorithm == "ar":
        return synthesize_ilp_ar(spec, **options)
    if algorithm == "mr":
        return synthesize_ilp_mr(spec, **options)
    if algorithm == "mr-lazy":
        return synthesize_ilp_mr(spec, strategy="lazy", **options)
    if algorithm == "tse":
        return synthesize_ilp_tse(spec, **options)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _run_reliability(job: Job) -> Any:
    from ..reliability import failure_probability, problem_from_architecture
    from ..reliability.montecarlo import failure_probability_mc

    payload = job.payload
    if "problem" in payload:
        # A bare ReliabilityProblem (verify corpora, cache benchmarks)
        # analyzed directly — no architecture expansion involved.
        return failure_probability(payload["problem"], method=payload["method"])
    if payload["method"] == "mc":
        problem = problem_from_architecture(payload["architecture"], payload["sink"])
        return failure_probability_mc(
            problem, samples=payload["samples"], seed=payload["seed"]
        )
    return failure_probability(
        payload["architecture"], sink=payload["sink"], method=payload["method"]
    )


def _run_noop(job: Job) -> Any:
    """Plumbing test kind: optionally nap, then echo the payload value.

    Exists so executor/queue mechanics (leases, dedup, throughput
    benchmarks) can be exercised without paying for real synthesis.
    """
    nap = job.payload.get("sleep_s", 0.0)
    if nap:
        time.sleep(nap)
    return job.payload.get("value")


def _run_budget(job: Job) -> Any:
    from ..synthesis.pareto import most_reliable_under_budget

    return most_reliable_under_budget(
        job.payload["spec"],
        job.payload["budget"],
        algorithm=job.payload["algorithm"],
        **dict(job.payload.get("options", {})),
    )


_RUNNERS: Dict[str, Callable[[Job], Any]] = {
    "synthesize": _run_synthesize,
    "reliability": _run_reliability,
    "budget": _run_budget,
    "noop": _run_noop,
}

#: Modules whose import registers a runner for the keyed job kind. Pool
#: workers execute jobs in a fresh interpreter that has not imported the
#: registering module, so ``execute_job`` resolves these lazily.
_KIND_PLUGINS: Dict[str, str] = {
    "verify": "repro.verify",
}


def register_runner(kind: str, fn: Callable[[Job], Any]) -> Callable[[Job], Any]:
    """Register a runner for a custom job ``kind`` (extension point)."""
    _RUNNERS[kind] = fn
    return fn


def execute_job(job: Job) -> Any:
    """Run one job in the current process and return its raw value."""
    runner = _RUNNERS.get(job.kind)
    if runner is None and job.kind in _KIND_PLUGINS:
        import importlib

        importlib.import_module(_KIND_PLUGINS[job.kind])
        runner = _RUNNERS.get(job.kind)
    if runner is None:
        raise ValueError(f"unknown job kind {job.kind!r}")
    return runner(job)


# ---------------------------------------------------------------------------
# Worker-side wrapper


def _worker_init(cache_dir: Optional[str], cache_backend: str = "auto",
                 cache_shards: Optional[int] = None) -> None:
    """Pool initializer: shared cache handle + metrics observation.

    The observer makes the worker's :mod:`repro.obs` counters tick
    without installing a tracer (worker spans could not be streamed back
    through a pickled result anyway); ``_worker_run`` ships the per-job
    metrics delta home for the parent to merge.
    """
    import atexit

    from ..reliability.exact import set_reliability_cache

    cache = ReliabilityCache(
        cache_dir, backend=cache_backend, shards=cache_shards
    )
    set_reliability_cache(cache)
    # A pool worker exits without unwinding the batch's context managers;
    # close() on the way out lands the sharded tier's write-back buffers.
    atexit.register(cache.close)
    obs.add_observer()


def _worker_run(
    job: Job, trace: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Execute ``job`` and wrap timing + cache/metrics deltas around it.

    The ``engine.job`` span materializes when a tracer is active in this
    process (serial mode, queue workers running under the queue's trace
    context) — or when the coordinator threads a serialized
    :class:`repro.obs.TraceContext` through the pool envelope as
    ``trace``: the worker then runs the job under a throwaway local
    tracer adopting that context and ships the finished span records
    back in the envelope (``"spans"``), parented to the coordinator's
    batch span. Metrics tick in every mode (the batch and the pool
    initializer both register observers) and the per-job delta travels
    back with the result so ``jobs>1`` sweeps report true totals.
    """
    cache = get_reliability_cache()
    before = (cache.stats.hits, cache.stats.misses) if cache is not None else (0, 0)
    metrics_before = obs.snapshot()
    start = time.perf_counter()
    span_records: Optional[List[Dict[str, Any]]] = None
    if trace is not None and obs.get_tracer() is None:
        ctx = obs.TraceContext.from_dict(trace)
        obs.reset_span_stack()  # a forked worker may carry phantom spans
        with obs.trace_context(ctx):
            with obs.tracing() as tracer:
                with obs.span("engine.job", job=job.job_id, kind=job.kind):
                    value = execute_job(job)
        span_records = [obs.span_record(s) for s in tracer.spans]
    else:
        with obs.span("engine.job", job=job.job_id, kind=job.kind):
            value = execute_job(job)
    wall = time.perf_counter() - start
    if obs.enabled():
        obs.counter("engine.jobs.completed").inc()
        obs.histogram("engine.job.seconds").observe(wall)
    after = (cache.stats.hits, cache.stats.misses) if cache is not None else (0, 0)
    wrapped = {
        "value": value,
        "wall_time": wall,
        "worker_pid": os.getpid(),
        "cache_hits": after[0] - before[0],
        "cache_misses": after[1] - before[1],
        "metrics": obs.snapshot_delta(metrics_before, obs.snapshot()),
    }
    if span_records:
        wrapped["spans"] = span_records
    return wrapped


def _ok_result(job: Job, wrapped: Dict[str, Any], attempts: int) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        ok=True,
        value=wrapped["value"],
        attempts=attempts,
        wall_time=wrapped["wall_time"],
        worker_pid=wrapped["worker_pid"],
        cache_hits=wrapped["cache_hits"],
        cache_misses=wrapped["cache_misses"],
        metrics=wrapped.get("metrics"),
        meta=dict(job.meta),
    )


def _absorb_worker_metrics(writer: TelemetryWriter, result: JobResult) -> None:
    """Ship a pool worker's metrics delta over telemetry and merge it.

    Only called in pool mode: a serial job already ticked the parent's
    own registry, so merging its delta would double-count.
    """
    if not result.metrics:
        return
    writer.emit(
        "metrics_snapshot",
        job=result.job_id,
        worker_pid=result.worker_pid,
        metrics=result.metrics,
    )
    obs.merge_snapshot(result.metrics)


def _absorb_worker_spans(
    writer: TelemetryWriter, wrapped: Dict[str, Any]
) -> None:
    """Fold span records a pool worker shipped in its envelope.

    Each record is journaled as a ``worker_span`` event and merged into
    the active tracer, so stitched Chrome traces and ``--trace`` exports
    carry the worker lanes without any shared filesystem.
    """
    for record in wrapped.get("spans") or ():
        writer.emit("worker_span", **record)
        obs.absorb_record(record)


def _failed_result(
    job: Job, exc: BaseException, attempts: int, wall: float
) -> JobResult:
    return JobResult(
        job_id=job.job_id,
        ok=False,
        error=str(exc) or exc.__class__.__name__,
        error_type=exc.__class__.__name__,
        attempts=attempts,
        wall_time=wall,
        meta=dict(job.meta),
    )


# ---------------------------------------------------------------------------
# Batch API


@dataclass
class BatchResult:
    """All job results of one batch, in the batch's submission order."""

    name: str
    results: List[JobResult] = field(default_factory=list)
    wall_time: float = 0.0
    jobs_used: int = 1
    telemetry_path: Optional[str] = None
    #: True when a ``should_stop`` hook aborted the batch early: the
    #: results list then covers only the jobs that completed first.
    stopped: bool = False

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.results)

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def by_id(self) -> Dict[str, JobResult]:
        return {r.job_id: r for r in self.results}

    def values(self) -> List[Any]:
        """Raw job values in submission order; raises on any failed job."""
        return [r.unwrap() for r in self.results]

    def summary(self) -> str:
        parts = [
            f"batch {self.name!r}: {len(self.results)} jobs"
            f" ({self.num_failed} failed) in {self.wall_time:.2f}s"
            f" with jobs={self.jobs_used}"
        ]
        lookups = self.cache_hits + self.cache_misses
        if lookups:
            parts.append(
                f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
                f" ({100.0 * self.cache_hits / lookups:.0f}% hit rate)"
            )
        return "; ".join(parts)


def _iter_serial(
    batch: BatchSpec,
    cache_dir: Optional[str],
    retries: int,
    writer: TelemetryWriter,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
) -> Iterator[JobResult]:
    from ..ilp.search_events import capture_search_events

    # Reuse an already-installed cache (e.g. inside a pool worker running a
    # nested batch); otherwise install one scoped to this batch.
    own_cache = get_reliability_cache() is None
    cache = (
        ReliabilityCache(cache_dir, backend=cache_backend, shards=cache_shards)
        if own_cache else None
    )
    # With durable telemetry, stream the B&B search tree of every solve
    # into the journal — that is what ``repro tree`` and the service's
    # /events tail render. A no-op writer keeps the solver silent.
    search_ctx = (
        capture_search_events(
            lambda ev: writer.emit("bnb_event", **ev)
        )
        if writer.path else _null_context()
    )
    try:
        ctx = reliability_cache(cache) if own_cache else _null_context()
        with ctx, search_ctx:
            for job in batch.jobs:
                writer.emit("job_start", job=job.job_id, kind=job.kind, mode="serial")
                attempts = 0
                while True:
                    attempts += 1
                    start = time.perf_counter()
                    try:
                        wrapped = _worker_run(job)
                    except TRANSIENT_EXCEPTIONS as exc:
                        wall = time.perf_counter() - start
                        if attempts <= retries:
                            writer.emit(
                                "job_retry", job=job.job_id, attempt=attempts,
                                error=type(exc).__name__,
                            )
                            continue
                        result = _failed_result(job, exc, attempts, wall)
                    except Exception as exc:
                        wall = time.perf_counter() - start
                        result = _failed_result(job, exc, attempts, wall)
                        result.error = f"{exc}\n{traceback.format_exc(limit=3)}"
                    else:
                        result = _ok_result(job, wrapped, attempts)
                    break
                _emit_job_end(writer, result)
                yield result
    finally:
        if cache is not None:
            cache.close()


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


def _emit_job_end(writer: TelemetryWriter, result: JobResult) -> None:
    writer.emit(
        "job_end",
        job=result.job_id,
        ok=result.ok,
        attempts=result.attempts,
        wall_time=round(result.wall_time, 6),
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        error=result.error_type,
    )


def _iter_pool(
    batch: BatchSpec,
    jobs: int,
    cache_dir: Optional[str],
    retries: int,
    timeout: Optional[float],
    writer: TelemetryWriter,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
) -> Iterator[JobResult]:
    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init,
            initargs=(cache_dir, cache_backend, cache_shards),
        )

    pool = make_pool()
    restarts = 0
    # Thread the trace context through the job envelopes whenever the
    # batch itself is being traced (or a service run's context is
    # active): workers then ship their span records home for stitching.
    # With no tracer and no context, workers skip span collection.
    ctx = obs.current_trace_context()
    cur = obs.current_span()
    if cur is not None:
        ctx = (ctx.reparent(cur) if ctx is not None
               else obs.TraceContext.from_span(cur, batch=batch.name))
    trace_doc = ctx.to_dict() if ctx is not None else None
    pending: Dict[Any, tuple] = {}  # future -> (job, attempts, submitted_at)
    # Every job_id is in exactly one of these at any time: ``inflight``
    # (job_id -> its one live future) or ``finished`` (already yielded).
    # Resubmission paths — timeout, transient retry, pool rebuild — can
    # race each other when a rebuild happens while a per-job timeout is
    # in flight; keying on job_id guarantees a job is never submitted
    # twice concurrently nor yielded twice (which double-counted it in
    # telemetry and metrics).
    inflight: Dict[str, Any] = {}
    finished: set = set()

    def submit(job: Job, attempts: int) -> None:
        if job.job_id in finished or job.job_id in inflight:
            writer.emit("job_dedup", job=job.job_id, attempt=attempts)
            return
        fut = pool.submit(_worker_run, job, trace_doc)
        pending[fut] = (job, attempts, time.monotonic())
        inflight[job.job_id] = fut

    def drop(fut) -> tuple:
        job, attempts, submitted = pending.pop(fut)
        if inflight.get(job.job_id) is fut:
            del inflight[job.job_id]
        return job, attempts, submitted

    def finish(result: JobResult) -> Optional[JobResult]:
        if result.job_id in finished:
            return None  # a duplicate execution already reported this job
        finished.add(result.job_id)
        return result

    try:
        for job in batch.jobs:
            writer.emit("job_start", job=job.job_id, kind=job.kind, mode="pool")
            submit(job, 1)

        while pending:
            poll = 0.25 if timeout is not None else None
            try:
                done, _ = wait(
                    list(pending), timeout=poll, return_when=FIRST_COMPLETED
                )
            except BrokenProcessPool:
                done = set()

            for fut in done:
                if fut not in pending:
                    continue
                job, attempts, _submitted = drop(fut)
                exc = fut.exception()
                if exc is None:
                    wrapped = fut.result()
                    result = finish(_ok_result(job, wrapped, attempts))
                    if result is not None:
                        _absorb_worker_metrics(writer, result)
                        _absorb_worker_spans(writer, wrapped)
                        yield result
                    continue
                if isinstance(exc, BrokenProcessPool):
                    # Handled wholesale below by rebuilding the pool.
                    pending[fut] = (job, attempts, _submitted)
                    inflight[job.job_id] = fut
                    continue
                if isinstance(exc, TRANSIENT_EXCEPTIONS) and attempts <= retries:
                    writer.emit(
                        "job_retry", job=job.job_id, attempt=attempts,
                        error=type(exc).__name__,
                    )
                    submit(job, attempts + 1)
                else:
                    result = finish(_failed_result(job, exc, attempts, 0.0))
                    if result is not None:
                        yield result

            broken = [f for f in pending if f.done() and isinstance(
                f.exception(), BrokenProcessPool)]
            if broken:
                restarts += 1
                pool.shutdown(wait=False, cancel_futures=True)
                if restarts > MAX_POOL_RESTARTS:
                    for fut in list(pending):
                        job, attempts, _ = drop(fut)
                        result = finish(_failed_result(
                            job, BrokenProcessPool("pool restarts exhausted"),
                            attempts, 0.0,
                        ))
                        if result is not None:
                            yield result
                    return
                writer.emit("pool_restart", count=restarts)
                pool = make_pool()
                for fut in list(pending):
                    job, attempts, _ = drop(fut)
                    if fut.done() and fut.exception() is None:
                        # The pool broke *around* a completed job: report
                        # its finished result instead of running it again.
                        wrapped = fut.result()
                        result = finish(_ok_result(job, wrapped, attempts))
                        if result is not None:
                            _absorb_worker_metrics(writer, result)
                            _absorb_worker_spans(writer, wrapped)
                            yield result
                        continue
                    submit(job, attempts + 1)
                continue

            if timeout is not None:
                now = time.monotonic()
                for fut in [f for f in pending if not f.done()]:
                    job, attempts, submitted = pending[fut]
                    if now - submitted <= timeout:
                        continue
                    fut.cancel()
                    drop(fut)
                    if attempts <= retries:
                        writer.emit(
                            "job_retry", job=job.job_id, attempt=attempts,
                            error="TimeoutError",
                        )
                        submit(job, attempts + 1)
                    else:
                        writer.emit("job_timeout", job=job.job_id, timeout=timeout)
                        result = finish(_failed_result(
                            job, TimeoutError(f"job exceeded {timeout}s"),
                            attempts, timeout,
                        ))
                        if result is not None:
                            yield result
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


#: Executor modes accepted by :func:`iter_batch` / :func:`run_batch`.
EXECUTOR_MODES = ("serial", "pool", "queue")


def iter_batch(
    batch: BatchSpec,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    writer: Optional[TelemetryWriter] = None,
    executor: Optional[str] = None,
    queue_dir: Optional[str] = None,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
) -> Iterator[JobResult]:
    """Execute ``batch`` and yield :class:`JobResult` as each completes.

    ``executor=None`` picks ``"serial"`` for ``jobs<=1`` and ``"pool"``
    otherwise (the historical behaviour); ``"queue"`` routes the batch
    through the file-backed work queue (:mod:`repro.engine.queue_exec`),
    spawning ``jobs`` local worker processes against ``queue_dir``.
    Pool and queue modes yield in completion order; serial mode in
    submission order.
    """
    mode = executor if executor is not None else ("serial" if jobs <= 1 else "pool")
    if mode not in EXECUTOR_MODES:
        raise ValueError(
            f"unknown executor {mode!r}; expected one of {EXECUTOR_MODES}"
        )
    writer = writer if writer is not None else TelemetryWriter(None)
    # Observe metrics for the batch's duration: serial jobs tick the
    # parent registry directly; pool workers register their own observer
    # in the initializer and ship deltas home.
    obs.add_observer()
    try:
        if mode == "serial":
            yield from _iter_serial(batch, cache_dir, retries, writer,
                                    cache_backend=cache_backend,
                                    cache_shards=cache_shards)
        elif mode == "pool":
            yield from _iter_pool(batch, max(jobs, 1), cache_dir, retries,
                                  timeout, writer,
                                  cache_backend=cache_backend,
                                  cache_shards=cache_shards)
        else:
            from .queue_exec import iter_queue

            yield from iter_queue(batch, jobs=max(jobs, 1),
                                  queue_dir=queue_dir, cache_dir=cache_dir,
                                  retries=retries, lease_ttl=timeout,
                                  writer=writer,
                                  cache_backend=cache_backend,
                                  cache_shards=cache_shards)
    finally:
        obs.remove_observer()


def run_batch(
    batch: BatchSpec,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    telemetry: Optional[str] = None,
    retries: int = 1,
    timeout: Optional[float] = None,
    on_result: Optional[Callable[[JobResult], None]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
    executor: Optional[str] = None,
    queue_dir: Optional[str] = None,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
) -> BatchResult:
    """Execute a whole batch and collect results in submission order.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs serially in-process.
    cache_dir:
        Directory for the persistent reliability cache shared by all
        workers and all future runs; ``None`` keeps caching in-memory and
        per-process.
    telemetry:
        Path of a JSONL event stream to append this batch's life cycle to.
    retries:
        Extra attempts granted to jobs failing with a transient error.
    timeout:
        Per-job wall-clock limit in seconds (pool mode); in queue mode
        it becomes the lease TTL after which an unheartbeated job is
        re-queued.
    executor:
        ``"serial"``, ``"pool"``, or ``"queue"``; ``None`` keeps the
        historical jobs-based choice (serial for ``jobs<=1``, else pool).
    queue_dir:
        Queue-mode only: directory holding the shared work queue; a
        temporary queue is created (and discarded) when omitted.
    cache_backend / cache_shards:
        Persistent cache tier selection, forwarded to
        :class:`repro.engine.ReliabilityCache` in every worker.
    on_result:
        Called with each :class:`JobResult` the moment it completes (in
        completion order) — the service journals results through this so
        a crash loses at most the in-flight job.
    should_stop:
        Polled before the first job and after each completion; returning
        True aborts the remainder of the batch (pool futures are
        cancelled) and marks the outcome ``stopped=True`` — cooperative
        cancellation and deadline enforcement for the service queue.
    """
    writer = TelemetryWriter(telemetry, batch=batch.name)
    order = {job.job_id: i for i, job in enumerate(batch.jobs)}
    start = time.perf_counter()
    writer.emit(
        "batch_start", name=batch.name, jobs=len(batch.jobs),
        workers=jobs, cache_dir=cache_dir,
    )
    batch_span = obs.span("engine.batch", name=batch.name,
                          jobs=len(batch.jobs), workers=jobs)
    run = obs.run_registry().start(
        "batch", name=batch.name, total=len(batch.jobs), workers=jobs,
        done=0, failed=0,
    )
    outcome: Optional[BatchResult] = None
    try:
        with obs.log_context(run=run.run_id, batch=batch.name):
            obs.log("engine.batch_start", jobs=len(batch.jobs), workers=jobs)
            results: List[JobResult] = []
            done = failed = 0
            stopped = should_stop is not None and should_stop()
            if not stopped:
                mode = executor if executor is not None else (
                    "serial" if jobs <= 1 else "pool"
                )
                for result in iter_batch(
                    batch, jobs=jobs, cache_dir=cache_dir, retries=retries,
                    timeout=timeout, writer=writer, executor=executor,
                    queue_dir=queue_dir, cache_backend=cache_backend,
                    cache_shards=cache_shards,
                ):
                    if mode != "serial":
                        _emit_job_end(writer, result)
                    results.append(result)
                    done += 1
                    failed += 0 if result.ok else 1
                    run.update(done=done, failed=failed)
                    obs.log(
                        "engine.job_end",
                        level="info" if result.ok else "warning",
                        job=result.job_id, ok=result.ok,
                        wall_time=round(result.wall_time, 6),
                        error=result.error_type,
                    )
                    if on_result is not None:
                        on_result(result)
                    if should_stop is not None and should_stop():
                        stopped = True
                        break  # iter_batch's finally tears the pool down
            results.sort(key=lambda r: order.get(r.job_id, len(order)))
            wall = time.perf_counter() - start
            outcome = BatchResult(
                name=batch.name,
                results=results,
                wall_time=wall,
                jobs_used=jobs,
                telemetry_path=str(writer.path) if writer.path else None,
                stopped=stopped,
            )
            writer.emit(
                "batch_end",
                name=batch.name,
                wall_time=round(wall, 6),
                ok=len(results) - outcome.num_failed,
                failed=outcome.num_failed,
                cache_hits=outcome.cache_hits,
                cache_misses=outcome.cache_misses,
                stopped=stopped,
            )
            batch_span.set_attr("failed", outcome.num_failed)
            batch_span.set_attr("cache_hits", outcome.cache_hits)
            batch_span.set_attr("cache_misses", outcome.cache_misses)
            obs.log(
                "engine.batch_end", wall_time=round(wall, 6),
                failed=outcome.num_failed,
            )
            return outcome
    finally:
        if outcome is None:
            run.finish(status="error")
        else:
            status = "failed" if outcome.num_failed else "done"
            run.finish(
                status="stopped" if outcome.stopped else status,
                wall_time=round(outcome.wall_time, 6),
            )
        batch_span.__exit__(None, None, None)
        writer.close()
        if writer.path is not None:
            from ..obs import warehouse as _warehouse

            _warehouse.maybe_auto_ingest(writer.path)
