"""Walk indicator matrices (Lemma 1) — concrete and symbolic.

Lemma 1 of the paper defines ``eta_n = OR_{k=1..n} e^k`` (logical matrix
powers of the adjacency matrix): ``eta_n[i, j] = 1`` iff a directed walk of
length at most ``n`` runs from ``v_i`` to ``v_j``.

Two implementations live here:

* :func:`walk_indicator` — concrete boolean-matrix computation on a fixed
  architecture, used by LEARNCONS to count existing connections (the
  ``eta*`` of eq. 6);
* :class:`ReachabilityEncoder` — symbolic version over ILP edge variables,
  used to state eq. 6 (learned path constraints) and eq. 11 (ILP-AR
  redundancy counting). Rather than materializing the full O(|V|^2 n)
  matrix of auxiliary variables, the encoder builds only the columns that
  constraints actually reference: "reaches sink v within L steps" and
  "reachable from some source within L steps", which exploits the sparsity
  the paper notes reduced its constraint counts in practice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ilp import LinExpr, Model, Var, and_, lin_sum, or_
from .template import ArchitectureTemplate

__all__ = ["logical_power", "walk_indicator", "ReachabilityEncoder"]


def logical_power(adjacency: np.ndarray, k: int) -> np.ndarray:
    """k-th logical power ``e^k`` of a boolean adjacency matrix."""
    if k < 1:
        raise ValueError("logical power requires k >= 1")
    result = adjacency.astype(bool)
    for _ in range(k - 1):
        result = (result.astype(np.uint8) @ adjacency.astype(np.uint8)) > 0
    return result


def walk_indicator(adjacency: np.ndarray, max_len: int) -> np.ndarray:
    """``eta_n`` per Lemma 1: walks of length <= ``max_len`` exist.

    Computed incrementally as ``reach[k] = reach[k-1] OR reach[k-1] . e``
    so the cost is ``max_len`` boolean matrix products.
    """
    if max_len < 1:
        raise ValueError("walk indicator requires max_len >= 1")
    e = adjacency.astype(bool)
    reach = e.copy()
    for _ in range(max_len - 1):
        reach = reach | ((reach.astype(np.uint8) @ e.astype(np.uint8)) > 0)
    return reach


class ReachabilityEncoder:
    """Symbolic walk-indicator columns over a model's edge variables.

    Parameters
    ----------
    model:
        The ILP model to add auxiliary variables/constraints to.
    template:
        The architecture template providing the allowed-edge sparsity.
    edge_vars:
        Map from allowed edge ``(i, j)`` to its binary decision variable.

    The encoder memoizes: asking twice for the same column reuses the same
    auxiliary variables, so ILP-MR iterations can keep extending one model.
    """

    def __init__(
        self,
        model: Model,
        template: ArchitectureTemplate,
        edge_vars: Dict[Tuple[int, int], Var],
        cross_type_only: bool = True,
    ) -> None:
        self.model = model
        self.template = template
        self.edge_vars = edge_vars
        #: When True (default), walks may only use edges between *different*
        #: component types. Same-type sibling edges are the paper's shorthand
        #: for predecessor sharing — they do not create a new physical path
        #: to the sink, so counting them as walk hops would overstate
        #: redundancy (and stall LEARNCONS / unsound ILP-AR counts).
        self.cross_type_only = cross_type_only
        # Adjacency is derived from the edge-var dict (not the template) so
        # callers may pass a *filtered* dict — e.g. the truncated-state
        # encoder removes edges incident to a failure scenario.
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}
        for (i, j) in sorted(edge_vars):
            if cross_type_only and template.type_of(i) == template.type_of(j):
                continue
            self._succ.setdefault(i, []).append(j)
            self._pred.setdefault(j, []).append(i)
        # (target, L) -> {node index -> Var or None}; None means "cannot reach".
        self._to_cache: Dict[Tuple[int, int], Dict[int, Optional[Var]]] = {}
        # L -> {node index -> Var or None} for "reachable from any source".
        self._from_src_cache: Dict[int, Dict[int, Optional[Var]]] = {}
        self._gen = 0

    def _successors(self, w: int) -> List[int]:
        return self._succ.get(w, [])

    def _predecessors(self, w: int) -> List[int]:
        return self._pred.get(w, [])

    # -- reach-to columns ----------------------------------------------------

    def reach_to(self, target: int, max_len: int) -> Dict[int, Optional[Var]]:
        """Variables ``eta_L[w, target]`` for every node ``w != target``.

        Recurrence over path-length budget L:
        ``R^1[w] = e[w, target]`` and
        ``R^L[w] = R^{L-1}[w] OR ( OR_m e[w, m] AND R^{L-1}[m] )``.
        Entries are ``None`` where no walk within the budget can exist in
        the template at all (sparsity pruning).
        """
        key = (target, max_len)
        if key in self._to_cache:
            return self._to_cache[key]
        self._gen += 1
        gen = self._gen
        layer: Dict[int, Optional[Var]] = {}
        for w in range(self.template.num_nodes):
            if w == target:
                continue
            if target not in self._successors(w):
                layer[w] = None
                continue
            layer[w] = self.edge_vars.get((w, target))
        for length in range(2, max_len + 1):
            new_layer: Dict[int, Optional[Var]] = {}
            for w in range(self.template.num_nodes):
                if w == target:
                    continue
                args: List[Var] = []
                prev = layer.get(w)
                if prev is not None:
                    args.append(prev)
                for m in self._successors(w):
                    if m == target:
                        continue  # already covered by the direct-edge term
                    via = layer.get(m)
                    if via is None:
                        continue
                    step = and_(
                        self.model,
                        [self.edge_vars[(w, m)], via],
                        name=f"rt{gen}_{target}_{length}_{w}_via_{m}",
                    )
                    args.append(step)
                if not args:
                    new_layer[w] = None
                elif len(args) == 1 and args[0] is prev:
                    new_layer[w] = prev
                else:
                    new_layer[w] = or_(
                        self.model, args, name=f"rt{gen}_{target}_{length}_{w}"
                    )
            layer = new_layer
        self._to_cache[key] = layer
        return layer

    # -- reach-from-source columns ----------------------------------------------

    def reach_from_sources(self, max_len: int) -> Dict[int, Optional[Var]]:
        """Variables ``OR_s eta_L[s, w]`` for every non-source node ``w``.

        Source nodes themselves map to ``None`` here but are trivially
        reachable; callers treat sources as constant-true.
        """
        if max_len in self._from_src_cache:
            return self._from_src_cache[max_len]
        self._gen += 1
        gen = self._gen
        sources = set(self.template.source_indices())
        layer: Dict[int, Optional[Var]] = {}
        for w in range(self.template.num_nodes):
            if w in sources:
                continue
            direct = [
                self.edge_vars[(s, w)]
                for s in self._predecessors(w)
                if s in sources
            ]
            if not direct:
                layer[w] = None
            elif len(direct) == 1:
                layer[w] = direct[0]
            else:
                layer[w] = or_(self.model, direct, name=f"rf{gen}_1_{w}")
        for length in range(2, max_len + 1):
            new_layer: Dict[int, Optional[Var]] = {}
            for w in range(self.template.num_nodes):
                if w in sources:
                    continue
                args: List[Var] = []
                prev = layer.get(w)
                if prev is not None:
                    args.append(prev)
                for m in self._predecessors(w):
                    if m in sources:
                        continue  # covered by the direct term at length 1
                    via = layer.get(m)
                    if via is None:
                        continue
                    step = and_(
                        self.model,
                        [self.edge_vars[(m, w)], via],
                        name=f"rf{gen}_{length}_{w}_via_{m}",
                    )
                    args.append(step)
                if not args:
                    new_layer[w] = None
                elif len(args) == 1 and args[0] is prev:
                    new_layer[w] = prev
                else:
                    new_layer[w] = or_(self.model, args, name=f"rf{gen}_{length}_{w}")
            layer = new_layer
        self._from_src_cache[max_len] = layer
        return layer

    def _next_on(self) -> int:
        self._gen += 1
        return self._gen

    # -- combined ------------------------------------------------------------

    def on_source_sink_walk(self, node: int, sink: int, max_len: int) -> Optional[LinExpr]:
        """Binary expression: ``node`` reaches ``sink`` AND a source reaches ``node``.

        This is the inner conjunct of eq. 11. Returns None when impossible,
        a constant-1 expression for trivial cases (the sink itself when it
        is source-reachable, a source that reaches the sink).
        """
        from ..ilp import as_expr

        sources = set(self.template.source_indices())
        to_sink = self.reach_to(sink, max_len)
        from_src = self.reach_from_sources(max_len)

        if node == sink:
            reach = from_src.get(node)
            return None if reach is None else as_expr(reach)
        reaches_sink = to_sink.get(node)
        if reaches_sink is None:
            return None
        if node in sources:
            return as_expr(reaches_sink)
        sourced = from_src.get(node)
        if sourced is None:
            return None
        z = and_(self.model, [reaches_sink, sourced], name=f"on_{node}_{sink}_{max_len}_{self._next_on()}")
        return as_expr(z)
