"""Template sanity validation.

Synthesis failures on malformed templates surface as cryptic ILP
infeasibility; validating up front turns them into actionable messages.
Checks performed:

* every sink is reachable from at least one source in the fully
  configured template;
* partition consistency: sources sit in the first partition class, sinks
  in the last (Definition II.2 orders ``Pi_1`` = sources, ``Pi_n`` = sinks);
* no allowed edge points *into* a source or *out of* a sink across layers
  in the wrong direction (cycles through the source/sink layers);
* cost/probability attribute sanity (non-negative, p in [0, 1] — also
  enforced at construction, re-checked here for library mutations);
* supply can cover demand when every supplier is instantiated.

``validate_template`` returns a list of human-readable findings (empty =
clean); ``assert_valid`` raises on the first problem.
"""

from __future__ import annotations

from typing import List

import networkx as nx

from .library import Role
from .template import ArchitectureTemplate

__all__ = ["validate_template", "assert_valid", "TemplateValidationError"]


class TemplateValidationError(ValueError):
    """Raised by :func:`assert_valid` when a template is malformed."""


def validate_template(template: ArchitectureTemplate) -> List[str]:
    """Run all checks; return a list of findings (empty when clean)."""
    findings: List[str] = []
    t = template

    graph = nx.DiGraph()
    graph.add_nodes_from(range(t.num_nodes))
    graph.add_edges_from(t.allowed_edges)
    sources = t.source_indices()
    sinks = t.sink_indices()

    if not sources:
        findings.append("template has no source components")
    if not sinks:
        findings.append("template has no sink components")

    for sink in sinks:
        if not any(
            s == sink or nx.has_path(graph, s, sink) for s in sources
        ):
            findings.append(
                f"sink {t.name_of(sink)!r} is unreachable from every source "
                "even with all edges active"
            )

    order = t.type_order
    if order:
        first, last = order[0], order[-1]
        for i in sources:
            if t.type_of(i) != first:
                findings.append(
                    f"source {t.name_of(i)!r} has type {t.type_of(i)!r}, but the "
                    f"partition order starts with {first!r} (Definition II.2 "
                    "expects sources in Pi_1)"
                )
        for i in sinks:
            if t.type_of(i) != last:
                findings.append(
                    f"sink {t.name_of(i)!r} has type {t.type_of(i)!r}, but the "
                    f"partition order ends with {last!r} (Pi_n)"
                )

    for (i, j) in t.allowed_edges:
        if j in sources and t.type_of(i) != t.type_of(j):
            findings.append(
                f"allowed edge {t.name_of(i)} -> {t.name_of(j)} points into a "
                "source from another layer"
            )
        if i in sinks and t.type_of(i) != t.type_of(j):
            findings.append(
                f"allowed edge {t.name_of(i)} -> {t.name_of(j)} leaves a sink "
                "toward another layer"
            )

    for i in range(t.num_nodes):
        spec = t.spec(i)
        if spec.cost < 0:
            findings.append(f"{spec.name!r}: negative cost {spec.cost}")
        if not 0.0 <= spec.failure_prob <= 1.0:
            findings.append(
                f"{spec.name!r}: failure probability {spec.failure_prob} "
                "outside [0, 1]"
            )

    total_supply = sum(
        t.spec(i).capacity for i in range(t.num_nodes) if t.spec(i).capacity > 0
    )
    total_demand = sum(t.spec(i).demand for i in range(t.num_nodes))
    if total_demand > total_supply:
        findings.append(
            f"total demand {total_demand:g} exceeds the template's maximum "
            f"supply {total_supply:g}: every power-adequacy constraint will "
            "be infeasible"
        )

    for group in t.interchangeable_groups:
        kinds = {t.spec(t.index_of(n)).ctype for n in group}
        if len(kinds) > 1:
            findings.append(
                f"interchangeable group {group} mixes component types {sorted(kinds)}"
            )

    return findings


def assert_valid(template: ArchitectureTemplate) -> None:
    """Raise :class:`TemplateValidationError` on the first finding."""
    findings = validate_template(template)
    if findings:
        raise TemplateValidationError("; ".join(findings))
