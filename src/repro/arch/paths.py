"""Path enumeration and functional links (§II of the paper).

A *functional link* ``F_i`` is the set of simple paths from any source to a
sink ``v_i`` used to perform an essential function. The approximate
reliability algebra (§IV-A) works on *reduced* paths, where runs of adjacent
same-type nodes collapse to a single node of that type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["FunctionalLink", "enumerate_paths", "reduce_path", "functional_link"]


def enumerate_paths(
    graph: nx.DiGraph,
    sources: Sequence[str],
    sink: str,
    cutoff: Optional[int] = None,
) -> List[Tuple[str, ...]]:
    """All simple paths from any source to the sink, deterministically ordered.

    ``cutoff`` bounds the path length (number of nodes) when enumeration on
    dense graphs must be truncated; None enumerates everything.
    """
    if sink not in graph:
        return []
    paths: List[Tuple[str, ...]] = []
    for source in sorted(sources):
        if source not in graph:
            continue
        if source == sink:
            paths.append((source,))
            continue
        for path in nx.all_simple_paths(graph, source, sink, cutoff=cutoff):
            paths.append(tuple(path))
    paths.sort(key=lambda p: (len(p), p))
    return paths


def reduce_path(path: Sequence[str], type_of: Dict[str, str]) -> Tuple[str, ...]:
    """Collapse adjacent same-type nodes, keeping the first of each run.

    This implements the paper's reduced path ``mu^`` — multiple instances of
    the same type are allowed in a path only when adjacent, and count as a
    single node of that type for redundancy purposes.
    """
    reduced: List[str] = []
    for node in path:
        if reduced and type_of[reduced[-1]] == type_of[node]:
            continue
        reduced.append(node)
    return tuple(reduced)


@dataclass
class FunctionalLink:
    """The set of source->sink paths implementing one essential function.

    Attributes
    ----------
    sink:
        The sink node name ``v_i``.
    paths:
        All simple paths (tuples of node names), sorted.
    reduced_paths:
        The corresponding reduced paths, de-duplicated and sorted.
    type_of:
        Node name -> type label, for every node appearing in a path.
    """

    sink: str
    paths: List[Tuple[str, ...]]
    reduced_paths: List[Tuple[str, ...]]
    type_of: Dict[str, str]

    @property
    def num_paths(self) -> int:
        """``f = |F|`` of Theorem 2 (count of simple paths)."""
        return len(self.paths)

    def is_connected(self) -> bool:
        return bool(self.paths)

    def nodes(self) -> Set[str]:
        return {node for path in self.paths for node in path}

    def types_on_paths(self) -> Set[str]:
        return {self.type_of[n] for n in self.nodes()}

    def jointly_implementing_types(self) -> List[str]:
        """Types ``j`` with ``Pi_j |- F``: every path includes a node of type j.

        These are the type-level cut sets whose simultaneous failure
        disconnects the sink; the approximate algebra (eq. 7) sums over
        exactly this set ``I_i``.
        """
        if not self.paths:
            return []
        common: Optional[Set[str]] = None
        for path in self.paths:
            types = {self.type_of[n] for n in path}
            common = types if common is None else common & types
        return sorted(common or set())

    def degree_of_redundancy(self, ctype: str) -> int:
        """``h_ij``: distinct type-``ctype`` components used on reduced paths."""
        members = {
            node
            for path in self.reduced_paths
            for node in path
            if self.type_of[node] == ctype
        }
        return len(members)

    def redundancy_profile(self) -> Dict[str, int]:
        """``h_ij`` for every jointly implementing type ``j`` in ``I_i``."""
        return {
            ctype: self.degree_of_redundancy(ctype)
            for ctype in self.jointly_implementing_types()
        }


def functional_link(
    graph: nx.DiGraph,
    sources: Sequence[str],
    sink: str,
    cutoff: Optional[int] = None,
) -> FunctionalLink:
    """Build the functional link of ``sink`` on an (expanded) digraph.

    The graph is expected to carry a ``ctype`` attribute per node (as
    produced by :meth:`repro.arch.Architecture.expanded_graph`).
    """
    paths = enumerate_paths(graph, sources, sink, cutoff=cutoff)
    type_of = {n: graph.nodes[n].get("ctype", n) for n in graph.nodes}
    reduced = sorted({reduce_path(p, type_of) for p in paths}, key=lambda p: (len(p), p))
    involved = {n for p in paths for n in p}
    return FunctionalLink(
        sink=sink,
        paths=paths,
        reduced_paths=reduced,
        type_of={n: type_of[n] for n in involved | {sink}},
    )
