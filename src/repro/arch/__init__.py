"""Architecture graph substrate: libraries, templates, configurations, paths.

Implements §II of the paper: components with attributes (w, c, p), templates
with reconfigurable edge sets, graph partitions / component types, functional
links, and the walk indicator matrices of Lemma 1.
"""

from .architecture import Architecture
from .library import ComponentSpec, Library, Role
from .metrics import ArchitectureMetrics, architecture_metrics
from .paths import FunctionalLink, enumerate_paths, functional_link, reduce_path
from .serialization import (
    architecture_from_dict,
    architecture_to_dict,
    library_from_dict,
    library_to_dict,
    load_json,
    save_json,
    template_from_dict,
    template_to_dict,
)
from .template import ArchitectureTemplate, Edge
from .transform import (
    add_redundant_instance,
    merge_serial_instances,
    refine_architecture,
)
from .validate import TemplateValidationError, assert_valid, validate_template
from .walks import ReachabilityEncoder, logical_power, walk_indicator

__all__ = [
    "Architecture",
    "ArchitectureMetrics",
    "ArchitectureTemplate",
    "ComponentSpec",
    "Edge",
    "FunctionalLink",
    "Library",
    "ReachabilityEncoder",
    "Role",
    "TemplateValidationError",
    "assert_valid",
    "architecture_from_dict",
    "architecture_to_dict",
    "add_redundant_instance",
    "architecture_metrics",
    "enumerate_paths",
    "library_from_dict",
    "library_to_dict",
    "load_json",
    "merge_serial_instances",
    "refine_architecture",
    "functional_link",
    "logical_power",
    "reduce_path",
    "save_json",
    "template_from_dict",
    "template_to_dict",
    "walk_indicator",
    "validate_template",
]
