"""Template transformations — the paper's second selection step (§IV-B).

ILP-AR assumes "the reference template only includes reduced paths. This
is not a restrictive assumption, since multiple instances of adjacent
nodes of the same type can be added by refining T in a second step of the
selection process." This module implements that refinement:

* :func:`add_redundant_instance` — clone a component into a same-type
  sibling (tied with the shorthand edge, inheriting the original's allowed
  neighborhood);
* :func:`refine_architecture` — apply the same cloning to a *synthesized*
  architecture, duplicating a selected node and its active edges;
* :func:`merge_serial_instances` — the inverse direction: collapse a chain
  of adjacent same-type nodes back into a reduced-path template.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .architecture import Architecture
from .library import ComponentSpec, Library
from .template import ArchitectureTemplate

__all__ = [
    "add_redundant_instance",
    "refine_architecture",
    "merge_serial_instances",
]


def _clone_library(library: Library) -> Library:
    clone = Library(switch_cost=library.switch_cost)
    for spec in library:
        clone.add(spec)
    clone.set_type_order(library.type_order)
    return clone


def add_redundant_instance(
    template: ArchitectureTemplate,
    node: str,
    clone_name: Optional[str] = None,
    tie: bool = True,
) -> ArchitectureTemplate:
    """Return a new template with a same-type clone of ``node``.

    The clone receives the original's component attributes and allowed
    neighborhood (same predecessors and successors, same switch costs and
    contactor failure probabilities). With ``tie=True`` a bidirectional
    same-type shorthand edge between original and clone is allowed, making
    the pair "two redundant components" in the paper's sense.
    """
    t = template
    original_idx = t.index_of(node)
    original_spec = t.spec(original_idx)
    name = clone_name or f"{node}'"
    if name in [t.name_of(i) for i in range(t.num_nodes)]:
        raise ValueError(f"clone name {name!r} already exists in the template")

    library = _clone_library(t.library)
    library.add(original_spec.with_updates(name=name))

    nodes = [t.name_of(i) for i in range(t.num_nodes)] + [name]
    refined = ArchitectureTemplate(library, nodes, name=f"{t.name}+{name}")
    for (i, j) in t.allowed_edges:
        refined.allow_edge(
            t.name_of(i),
            t.name_of(j),
            switch_cost=t.switch_cost(i, j),
            failure_prob=t.edge_failure_prob(i, j),
        )
    for i in t.predecessors_allowed(original_idx):
        refined.allow_edge(
            t.name_of(i), name,
            switch_cost=t.switch_cost(i, original_idx),
            failure_prob=t.edge_failure_prob(i, original_idx),
        )
    for j in t.successors_allowed(original_idx):
        refined.allow_edge(
            name, t.name_of(j),
            switch_cost=t.switch_cost(original_idx, j),
            failure_prob=t.edge_failure_prob(original_idx, j),
        )
    if tie and not t.has_failing_edges:
        refined.allow_bidirectional(node, name)

    for group in t.interchangeable_groups:
        extended = list(group) + ([name] if node in group else [])
        refined.declare_interchangeable(extended)
    if not any(node in g for g in t.interchangeable_groups):
        refined.declare_interchangeable([node, name])
    return refined


def refine_architecture(
    arch: Architecture, node: str, clone_name: Optional[str] = None
) -> Architecture:
    """Duplicate ``node`` inside a synthesized architecture.

    The refined architecture lives on the refined template; the clone
    mirrors every active edge of the original (and the tie edge when the
    template allows it), so the result has strictly more redundancy.
    """
    t = arch.template
    refined_template = add_redundant_instance(t, node, clone_name)
    name = clone_name or f"{node}'"
    original_idx = t.index_of(node)

    edges: List[Tuple[int, int]] = []
    for (i, j) in arch.edges:
        edges.append(
            (refined_template.index_of(t.name_of(i)),
             refined_template.index_of(t.name_of(j)))
        )
    clone_idx = refined_template.index_of(name)
    for (i, j) in arch.edges:
        if i == original_idx:
            edges.append((clone_idx, refined_template.index_of(t.name_of(j))))
        if j == original_idx:
            edges.append((refined_template.index_of(t.name_of(i)), clone_idx))
    return Architecture(refined_template, set(edges))


def merge_serial_instances(
    template: ArchitectureTemplate,
) -> ArchitectureTemplate:
    """Collapse adjacent same-type node pairs into reduced-path form.

    For every allowed edge between two same-type nodes ``a -> b`` where the
    pair's exterior neighborhoods coincide, ``b`` is removed and the pair's
    edges merge onto ``a``. Applied iteratively until no such pair remains.
    Useful for importing legacy templates that model redundancy with
    explicit serial instances instead of the shorthand.
    """
    t = template
    while True:
        merge_pair: Optional[Tuple[int, int]] = None
        for (i, j) in t.allowed_edges:
            if t.type_of(i) != t.type_of(j) or i == j:
                continue
            preds_i = {p for p in t.predecessors_allowed(i) if p != j}
            preds_j = {p for p in t.predecessors_allowed(j) if p != i}
            succs_i = {s for s in t.successors_allowed(i) if s != j}
            succs_j = {s for s in t.successors_allowed(j) if s != i}
            if preds_i >= preds_j and succs_i >= succs_j:
                merge_pair = (i, j)
                break
        if merge_pair is None:
            return t
        keep, drop = merge_pair
        keep_name = t.name_of(keep)
        drop_name = t.name_of(drop)

        library = _clone_library(t.library)
        nodes = [t.name_of(k) for k in range(t.num_nodes) if k != drop]
        merged = ArchitectureTemplate(library, nodes, name=t.name)
        for (i, j) in t.allowed_edges:
            a, b = t.name_of(i), t.name_of(j)
            if drop_name in (a, b):
                continue
            merged.allow_edge(
                a, b,
                switch_cost=t.switch_cost(i, j),
                failure_prob=t.edge_failure_prob(i, j),
            )
        for group in t.interchangeable_groups:
            remaining = [n for n in group if n != drop_name]
            if len(remaining) >= 2:
                merged.declare_interchangeable(remaining)
        t = merged
