"""Component libraries (§II of the paper).

A design is assembled out of a *library* of components parameterized by
terminal variables ``w`` (power ratings / demands), costs ``c`` and failure
probabilities ``p``, with each component labelled with a *type* defining its
role (Definition II.2 links types to the graph partition).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional

__all__ = ["ComponentSpec", "Library", "Role"]


class Role:
    """Functional role of a component within a functional link."""

    SOURCE = "source"
    SINK = "sink"
    INTERMEDIATE = "intermediate"


@dataclass(frozen=True)
class ComponentSpec:
    """One component instance available to the synthesis problem.

    Attributes
    ----------
    name:
        Unique instance name (e.g. ``"LG1"``).
    ctype:
        Type label; components of the same type are interchangeable and
        introduce redundancy (Definition II.2).
    cost:
        Instantiation cost ``c_i`` used in the objective (eq. 1).
    failure_prob:
        Self-induced failure probability ``p_i`` (§II, event ``P_i``).
    capacity:
        Terminal variable ``w`` for power *suppliers* (e.g. generator
        rating in kW). Zero for non-suppliers.
    demand:
        Terminal variable ``w`` for power *consumers* (e.g. load demand in
        kW). Zero for non-consumers.
    role:
        ``Role.SOURCE`` / ``Role.SINK`` / ``Role.INTERMEDIATE`` — the
        position of the component's type relative to functional links.
    """

    name: str
    ctype: str
    cost: float = 0.0
    failure_prob: float = 0.0
    capacity: float = 0.0
    demand: float = 0.0
    role: str = Role.INTERMEDIATE

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ValueError(
                f"{self.name}: failure probability {self.failure_prob} not in [0, 1]"
            )
        if self.cost < 0:
            raise ValueError(f"{self.name}: negative cost {self.cost}")

    def with_updates(self, **changes) -> "ComponentSpec":
        """Return a copy with some attributes replaced."""
        return replace(self, **changes)


class Library:
    """An ordered collection of component specs plus default switch cost.

    The library also records the *type order*: the sequence of type labels
    from the source partition ``Pi_1`` to the sink partition ``Pi_n``. The
    order is what turns a bag of components into a layered template and is
    used by the walk-length bookkeeping of eq. (6) and the ILP-AR encoding.
    """

    def __init__(self, switch_cost: float = 0.0) -> None:
        self._specs: Dict[str, ComponentSpec] = {}
        self._type_order: List[str] = []
        self.switch_cost = switch_cost

    # -- population ----------------------------------------------------------

    def add(self, spec: ComponentSpec) -> ComponentSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate component name {spec.name!r}")
        self._specs[spec.name] = spec
        if spec.ctype not in self._type_order:
            self._type_order.append(spec.ctype)
        return spec

    def add_all(self, specs: Iterator[ComponentSpec]) -> None:
        for spec in specs:
            self.add(spec)

    # -- lookup ----------------------------------------------------------

    def __getitem__(self, name: str) -> ComponentSpec:
        return self._specs[name]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[ComponentSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def type_order(self) -> List[str]:
        """Type labels in partition order ``Pi_1 .. Pi_n``."""
        return list(self._type_order)

    def set_type_order(self, order: List[str]) -> None:
        """Fix the partition order explicitly (sources first, sinks last)."""
        present = {s.ctype for s in self._specs.values()}
        missing = present - set(order)
        if missing:
            raise ValueError(f"type order is missing types: {sorted(missing)}")
        self._type_order = list(order)

    def of_type(self, ctype: str) -> List[ComponentSpec]:
        return [s for s in self._specs.values() if s.ctype == ctype]

    def type_failure_prob(self, ctype: str) -> float:
        """Failure probability ``p_j`` of a type (max over its instances).

        The paper assumes instances of a type share one failure probability;
        taking the max keeps the approximate algebra conservative when they
        do not.
        """
        members = self.of_type(ctype)
        if not members:
            raise KeyError(f"no components of type {ctype!r}")
        return max(s.failure_prob for s in members)

    def sources(self) -> List[ComponentSpec]:
        return [s for s in self._specs.values() if s.role == Role.SOURCE]

    def sinks(self) -> List[ComponentSpec]:
        return [s for s in self._specs.values() if s.role == Role.SINK]

    def total_demand(self) -> float:
        return sum(s.demand for s in self._specs.values())

    def __repr__(self) -> str:
        return f"Library({len(self)} components, types={self._type_order})"
