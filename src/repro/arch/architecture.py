"""Concrete architectures: a template plus a chosen edge configuration.

An :class:`Architecture` is what the ILP solver returns (the adjacency
matrix ``e*`` of Algorithms 1 and 3): a subset of the template's allowed
edges. Nodes with no incident edge are considered pruned away
(``delta_i = 0`` in eq. 1) and do not contribute cost.

Same-type edges are the paper's shorthand for redundant siblings (§V):
"if v_i and v_j, with v_i ~ v_j, are connected by an edge, then any direct
predecessor of v_i is also a direct predecessor of v_j and vice versa".
:meth:`Architecture.expanded_graph` resolves that shorthand into a plain
digraph suitable for reliability analysis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from .library import Role
from .template import ArchitectureTemplate, Edge

__all__ = ["Architecture"]


class Architecture:
    """A configuration of a template (an assignment over the edge set)."""

    def __init__(self, template: ArchitectureTemplate, edges: Iterable[Edge]) -> None:
        self.template = template
        self.edges: FrozenSet[Edge] = frozenset(edges)
        for (i, j) in self.edges:
            if not template.is_allowed(i, j):
                raise ValueError(
                    f"edge {template.name_of(i)}->{template.name_of(j)} "
                    "is not an allowed edge of the template"
                )
        self._expanded: Optional[nx.DiGraph] = None

    # -- node usage (delta of eq. 1) -------------------------------------------

    def used_nodes(self) -> List[int]:
        """Indices with at least one incident edge (``delta_i = 1``)."""
        used: Set[int] = set()
        for (i, j) in self.edges:
            used.add(i)
            used.add(j)
        return sorted(used)

    def is_used(self, i: int) -> bool:
        return any(i in edge for edge in self.edges)

    # -- cost (eq. 1) ----------------------------------------------------------

    def cost(self) -> float:
        """Objective value per eq. 1: component costs + one switch per pair."""
        t = self.template
        component_cost = sum(t.spec(i).cost for i in self.used_nodes())
        pairs = {(min(i, j), max(i, j)) for (i, j) in self.edges}
        switch_cost = sum(t.switch_cost(i, j) for (i, j) in pairs)
        return component_cost + switch_cost

    def num_switches(self) -> int:
        return len({(min(i, j), max(i, j)) for (i, j) in self.edges})

    # -- graph views ----------------------------------------------------------

    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix ``e*`` over template node indices."""
        n = self.template.num_nodes
        m = np.zeros((n, n), dtype=bool)
        for (i, j) in self.edges:
            m[i, j] = True
        return m

    def graph(self) -> nx.DiGraph:
        """Raw digraph over node names (same-type shorthand NOT expanded)."""
        g = nx.DiGraph()
        t = self.template
        for i in self.used_nodes():
            spec = t.spec(i)
            g.add_node(spec.name, ctype=spec.ctype, p=spec.failure_prob, role=spec.role)
        for (i, j) in self.edges:
            g.add_edge(t.name_of(i), t.name_of(j))
        return g

    def expanded_graph(self) -> nx.DiGraph:
        """Digraph with the same-type sibling shorthand resolved.

        Same-type edges are removed; every undirected same-type connected
        group shares the union of its members' exterior predecessors. The
        result is the graph on which failure events (eq. 5) are evaluated.
        """
        if self._expanded is not None:
            return self._expanded
        t = self.template
        g = self.graph()

        if t.has_failing_edges:
            # Unreliable contactors compose ambiguously with the sibling
            # predecessor-sharing shorthand (which physical contactor does a
            # shared predecessor edge traverse?). Restrict the combination.
            if any(
                t.type_of(i) == t.type_of(j) for (i, j) in self.edges
            ):
                raise ValueError(
                    "templates with failing edges must not use same-type "
                    "sibling shorthand edges"
                )

        # Undirected groups of same-type siblings.
        sibling = nx.Graph()
        sibling.add_nodes_from(g.nodes)
        same_type_edges = [
            (u, v)
            for (u, v) in g.edges
            if g.nodes[u]["ctype"] == g.nodes[v]["ctype"]
        ]
        sibling.add_edges_from(same_type_edges)

        expanded = nx.DiGraph()
        expanded.add_nodes_from(g.nodes(data=True))
        for group in nx.connected_components(sibling):
            group = set(group)
            exterior_preds: Set[str] = set()
            for member in group:
                for pred in g.predecessors(member):
                    if pred not in group:
                        exterior_preds.add(pred)
            for member in group:
                for pred in exterior_preds:
                    expanded.add_edge(pred, member)
        # Non-sibling successor edges are kept as-is (they are already
        # covered above from the successor's point of view). Contactor
        # failure probabilities transfer onto the direct physical edges
        # (sibling shorthand is excluded above when edges can fail).
        for (i, j) in self.edges:
            q = t.edge_failure_prob(i, j)
            a, b = t.name_of(i), t.name_of(j)
            if q > 0.0 and expanded.has_edge(a, b):
                expanded[a][b]["p"] = q
        self._expanded = expanded
        return expanded

    # -- structure queries ------------------------------------------------------

    def source_names(self) -> List[str]:
        t = self.template
        return [t.name_of(i) for i in t.source_indices() if self.is_used(i)]

    def sink_names(self) -> List[str]:
        t = self.template
        return [t.name_of(i) for i in t.sink_indices() if self.is_used(i)]

    def with_edges(self, extra: Iterable[Edge]) -> "Architecture":
        """A new architecture with additional edges activated."""
        return Architecture(self.template, set(self.edges) | set(extra))

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        t = self.template
        lines = [f"Architecture of {t.name!r}: cost={self.cost():.6g}"]
        by_type: Dict[str, List[str]] = {}
        for i in self.used_nodes():
            by_type.setdefault(t.type_of(i), []).append(t.name_of(i))
        for ctype in t.type_order:
            if ctype in by_type:
                lines.append(f"  {ctype}: {', '.join(sorted(by_type[ctype]))}")
        lines.append(f"  edges ({len(self.edges)}):")
        for (i, j) in sorted(self.edges):
            lines.append(f"    {t.name_of(i)} -> {t.name_of(j)}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Architecture)
            and other.template is self.template
            and other.edges == self.edges
        )

    def __hash__(self) -> int:
        return hash((id(self.template), self.edges))

    def __repr__(self) -> str:
        return (
            f"Architecture(|used V|={len(self.used_nodes())}, |E|={len(self.edges)}, "
            f"cost={self.cost():.6g})"
        )
