"""Architecture templates (Definition II.1 and Fig. 1a of the paper).

A template fixes the node set (component instances drawn from a library)
while the interconnection structure remains variable: every *allowed* edge
is a Boolean decision ``e_ij``; an assignment over the edge set is a
*configuration*. The synthesis encoders create one 0-1 variable per allowed
edge and prune unused nodes away via the ``delta_i`` linking of eq. (1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .library import ComponentSpec, Library, Role

__all__ = ["ArchitectureTemplate", "Edge"]

Edge = Tuple[int, int]


class ArchitectureTemplate:
    """A reconfigurable architecture: fixed nodes, Boolean edge set.

    Parameters
    ----------
    library:
        Component library the nodes are drawn from (provides the partition
        order and the default switch cost).
    nodes:
        Component instance names from the library, in a fixed order; node
        ``i`` of the template is ``library[nodes[i]]``.
    """

    def __init__(self, library: Library, nodes: Sequence[str], name: str = "template") -> None:
        self.name = name
        self.library = library
        self.nodes: List[ComponentSpec] = [library[n] for n in nodes]
        self._index: Dict[str, int] = {spec.name: i for i, spec in enumerate(self.nodes)}
        if len(self._index) != len(self.nodes):
            raise ValueError("template nodes must be distinct")
        self._allowed: Dict[Edge, float] = {}  # edge -> switch cost
        self._edge_fail: Dict[Edge, float] = {}  # edge -> contactor failure prob
        #: Groups of node names that are fully interchangeable (identical
        #: attributes AND identical allowed-edge neighborhoods up to
        #: renaming). Declared by template builders; synthesis may add
        #: symmetry-breaking constraints over them.
        self.interchangeable_groups: List[List[str]] = []

    # -- basic shape ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def spec(self, i: int) -> ComponentSpec:
        return self.nodes[i]

    def name_of(self, i: int) -> str:
        return self.nodes[i].name

    def type_of(self, i: int) -> str:
        return self.nodes[i].ctype

    # -- partition (Definition II.2) -------------------------------------------

    @property
    def type_order(self) -> List[str]:
        """Partition order ``Pi_1 .. Pi_n`` restricted to types present."""
        present = {spec.ctype for spec in self.nodes}
        return [t for t in self.library.type_order if t in present]

    @property
    def num_types(self) -> int:
        return len(self.type_order)

    def partition(self) -> Dict[str, List[int]]:
        """Map each type label to the sorted node indices of that type."""
        groups: Dict[str, List[int]] = {t: [] for t in self.type_order}
        for i, spec in enumerate(self.nodes):
            groups[spec.ctype].append(i)
        return groups

    def nodes_of_type(self, ctype: str) -> List[int]:
        return [i for i, spec in enumerate(self.nodes) if spec.ctype == ctype]

    def type_layer(self, ctype: str) -> int:
        """1-based position of a type in the partition order (``i`` of eq. 6)."""
        return self.type_order.index(ctype) + 1

    def source_indices(self) -> List[int]:
        return [i for i, spec in enumerate(self.nodes) if spec.role == Role.SOURCE]

    def sink_indices(self) -> List[int]:
        return [i for i, spec in enumerate(self.nodes) if spec.role == Role.SINK]

    # -- allowed edges ----------------------------------------------------------

    def allow_edge(
        self,
        src: str,
        dst: str,
        switch_cost: Optional[float] = None,
        failure_prob: float = 0.0,
    ) -> Edge:
        """Mark the directed edge ``src -> dst`` as reconfigurable.

        ``switch_cost`` defaults to the library's contactor cost; the cost is
        charged once per *undirected* pair (eq. 1 uses ``e_ij OR e_ji``).
        ``failure_prob`` models an unreliable contactor (§II allows edges to
        carry failure probabilities; the EPS case study keeps them perfect).
        """
        i, j = self._index[src], self._index[dst]
        if i == j:
            raise ValueError(f"self-loop on {src!r} is not allowed (e_ii = 0)")
        if not 0.0 <= failure_prob <= 1.0:
            raise ValueError(f"edge {src}->{dst}: failure_prob {failure_prob}")
        cost = self.library.switch_cost if switch_cost is None else switch_cost
        self._allowed[(i, j)] = cost
        if failure_prob > 0.0:
            self._edge_fail[(i, j)] = failure_prob
        return (i, j)

    def edge_failure_prob(self, i: int, j: int) -> float:
        """Failure probability of the contactor on edge ``(i, j)``."""
        return self._edge_fail.get((i, j), 0.0)

    @property
    def has_failing_edges(self) -> bool:
        return bool(self._edge_fail)

    def allow_bidirectional(self, a: str, b: str, switch_cost: Optional[float] = None) -> None:
        self.allow_edge(a, b, switch_cost)
        self.allow_edge(b, a, switch_cost)

    def allow_many(self, sources: Iterable[str], dests: Iterable[str]) -> None:
        dests = list(dests)
        for s in sources:
            for d in dests:
                if s != d:
                    self.allow_edge(s, d)

    @property
    def allowed_edges(self) -> List[Edge]:
        return sorted(self._allowed)

    def is_allowed(self, i: int, j: int) -> bool:
        return (i, j) in self._allowed

    def switch_cost(self, i: int, j: int) -> float:
        """Cost of the switch on the undirected pair {i, j}."""
        if (i, j) in self._allowed:
            return self._allowed[(i, j)]
        return self._allowed[(j, i)]

    def undirected_pairs(self) -> List[Tuple[int, int]]:
        """Distinct unordered allowed pairs, each charged one switch cost."""
        pairs = {(min(i, j), max(i, j)) for (i, j) in self._allowed}
        return sorted(pairs)

    def predecessors_allowed(self, j: int) -> List[int]:
        return sorted(i for (i, jj) in self._allowed if jj == j)

    def successors_allowed(self, i: int) -> List[int]:
        return sorted(j for (ii, j) in self._allowed if ii == i)

    def declare_interchangeable(self, names: Sequence[str]) -> None:
        """Declare a set of nodes as mutually interchangeable.

        Callers are responsible for the claim being true: every member must
        have the same component attributes and the template's allowed-edge
        relation must be invariant under permuting the members. Synthesis
        uses the declaration for symmetry breaking only — a wrong
        declaration can cut off all optimal configurations.
        """
        for name in names:
            if name not in self._index:
                raise KeyError(f"unknown node {name!r}")
        if len(names) >= 2:
            self.interchangeable_groups.append(list(names))

    # -- misc ----------------------------------------------------------

    def adjacency_allowed(self) -> np.ndarray:
        """Boolean matrix of allowed edges (the template's maximal config)."""
        m = np.zeros((self.num_nodes, self.num_nodes), dtype=bool)
        for (i, j) in self._allowed:
            m[i, j] = True
        return m

    def full_configuration(self) -> FrozenSet[Edge]:
        """The configuration that activates every allowed edge."""
        return frozenset(self._allowed)

    def __repr__(self) -> str:
        return (
            f"ArchitectureTemplate({self.name!r}, |V|={self.num_nodes}, "
            f"|allowed E|={len(self._allowed)}, types={self.type_order})"
        )
