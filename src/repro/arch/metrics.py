"""Architecture metrics: the numbers a design review asks for.

Aggregates the structural quantities scattered across the analysis modules
into one report per architecture: per-sink redundancy profiles (the
``h_ij`` of §IV-A), path statistics, component utilization against the
template, cost breakdown by component type, and switch counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .architecture import Architecture
from .paths import functional_link

__all__ = ["ArchitectureMetrics", "architecture_metrics"]


@dataclass
class SinkMetrics:
    """Structural view of one functional link."""

    sink: str
    num_paths: int
    shortest_path_nodes: int
    longest_path_nodes: int
    redundancy: Dict[str, int]


@dataclass
class ArchitectureMetrics:
    """Full structural report of an architecture."""

    num_components: int
    num_available: int
    num_switches: int
    total_cost: float
    component_cost: float
    switch_cost: float
    cost_by_type: Dict[str, float]
    components_by_type: Dict[str, int]
    available_by_type: Dict[str, int]
    sinks: List[SinkMetrics] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Fraction of the template's components instantiated."""
        return self.num_components / self.num_available if self.num_available else 0.0

    def min_redundancy(self) -> Optional[int]:
        """The weakest h_ij across all sinks and types (None when no sink
        is connected)."""
        values = [
            h for sink in self.sinks for h in sink.redundancy.values()
        ]
        return min(values) if values else None

    def summary(self) -> str:
        lines = [
            f"components: {self.num_components}/{self.num_available} "
            f"({self.utilization:.0%} of template), switches: {self.num_switches}",
            f"cost: {self.total_cost:.6g} "
            f"(components {self.component_cost:.6g} + switches {self.switch_cost:.6g})",
        ]
        for ctype in sorted(self.cost_by_type):
            lines.append(
                f"  {ctype}: {self.components_by_type.get(ctype, 0)}"
                f"/{self.available_by_type.get(ctype, 0)} used, "
                f"cost {self.cost_by_type[ctype]:.6g}"
            )
        for sink in self.sinks:
            lines.append(
                f"  {sink.sink}: {sink.num_paths} paths "
                f"(len {sink.shortest_path_nodes}-{sink.longest_path_nodes}), "
                f"h = {dict(sorted(sink.redundancy.items()))}"
            )
        return "\n".join(lines)


def architecture_metrics(arch: Architecture) -> ArchitectureMetrics:
    """Compute the full metrics report for an architecture."""
    t = arch.template
    used = arch.used_nodes()
    component_cost = sum(t.spec(i).cost for i in used)
    switch_cost = arch.cost() - component_cost

    cost_by_type: Dict[str, float] = {}
    components_by_type: Dict[str, int] = {}
    for i in used:
        spec = t.spec(i)
        cost_by_type[spec.ctype] = cost_by_type.get(spec.ctype, 0.0) + spec.cost
        components_by_type[spec.ctype] = components_by_type.get(spec.ctype, 0) + 1
    available_by_type = {
        ctype: len(t.nodes_of_type(ctype)) for ctype in t.type_order
    }

    graph = arch.expanded_graph()
    sources = [s for s in arch.source_names() if s in graph]
    sinks: List[SinkMetrics] = []
    # Report every template sink — an unconnected essential load (0 paths)
    # is exactly what a review must see.
    for name in (t.name_of(i) for i in t.sink_indices()):
        if name not in graph:
            sinks.append(SinkMetrics(name, 0, 0, 0, {}))
            continue
        link = functional_link(graph, sources, name)
        if link.paths:
            lengths = [len(p) for p in link.paths]
            sinks.append(
                SinkMetrics(
                    sink=name,
                    num_paths=link.num_paths,
                    shortest_path_nodes=min(lengths),
                    longest_path_nodes=max(lengths),
                    redundancy=link.redundancy_profile(),
                )
            )
        else:
            sinks.append(
                SinkMetrics(name, 0, 0, 0, {})
            )

    return ArchitectureMetrics(
        num_components=len(used),
        num_available=t.num_nodes,
        num_switches=arch.num_switches(),
        total_cost=arch.cost(),
        component_cost=component_cost,
        switch_cost=switch_cost,
        cost_by_type=cost_by_type,
        components_by_type=components_by_type,
        available_by_type=available_by_type,
        sinks=sinks,
    )
