"""JSON serialization of libraries, templates and architectures.

A synthesis tool needs durable artifacts: libraries come from supplier
data, templates are design inputs under version control, and synthesized
architectures must be savable for review. The format is plain JSON with a
``kind``/``version`` header; round-trips are exact (including allowed-edge
switch costs, contactor failure probabilities, partition order and
declared interchangeability orbits).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .architecture import Architecture
from .library import ComponentSpec, Library
from .template import ArchitectureTemplate

__all__ = [
    "library_to_dict",
    "library_from_dict",
    "template_to_dict",
    "template_from_dict",
    "architecture_to_dict",
    "architecture_from_dict",
    "save_json",
    "load_json",
]

_VERSION = 1


def library_to_dict(library: Library) -> Dict[str, Any]:
    return {
        "kind": "library",
        "version": _VERSION,
        "switch_cost": library.switch_cost,
        "type_order": library.type_order,
        "components": [
            {
                "name": s.name,
                "ctype": s.ctype,
                "cost": s.cost,
                "failure_prob": s.failure_prob,
                "capacity": s.capacity,
                "demand": s.demand,
                "role": s.role,
            }
            for s in library
        ],
    }


def library_from_dict(data: Dict[str, Any]) -> Library:
    _check_kind(data, "library")
    library = Library(switch_cost=float(data.get("switch_cost", 0.0)))
    for item in data["components"]:
        library.add(ComponentSpec(**item))
    if data.get("type_order"):
        library.set_type_order(list(data["type_order"]))
    return library


def template_to_dict(template: ArchitectureTemplate) -> Dict[str, Any]:
    t = template
    return {
        "kind": "template",
        "version": _VERSION,
        "name": t.name,
        "library": library_to_dict(t.library),
        "nodes": [t.name_of(i) for i in range(t.num_nodes)],
        "edges": [
            {
                "src": t.name_of(i),
                "dst": t.name_of(j),
                "switch_cost": t.switch_cost(i, j),
                "failure_prob": t.edge_failure_prob(i, j),
            }
            for (i, j) in t.allowed_edges
        ],
        "interchangeable_groups": [list(g) for g in t.interchangeable_groups],
    }


def template_from_dict(data: Dict[str, Any]) -> ArchitectureTemplate:
    _check_kind(data, "template")
    library = library_from_dict(data["library"])
    template = ArchitectureTemplate(
        library, list(data["nodes"]), name=data.get("name", "template")
    )
    for edge in data["edges"]:
        template.allow_edge(
            edge["src"],
            edge["dst"],
            switch_cost=edge.get("switch_cost"),
            failure_prob=float(edge.get("failure_prob", 0.0)),
        )
    for group in data.get("interchangeable_groups", []):
        template.declare_interchangeable(list(group))
    return template


def architecture_to_dict(arch: Architecture) -> Dict[str, Any]:
    t = arch.template
    return {
        "kind": "architecture",
        "version": _VERSION,
        "template": template_to_dict(t),
        "edges": sorted(
            [t.name_of(i), t.name_of(j)] for (i, j) in arch.edges
        ),
        "cost": arch.cost(),
    }


def architecture_from_dict(data: Dict[str, Any]) -> Architecture:
    _check_kind(data, "architecture")
    template = template_from_dict(data["template"])
    edges = [
        (template.index_of(src), template.index_of(dst))
        for src, dst in data["edges"]
    ]
    return Architecture(template, edges)


_SERIALIZERS = {
    Library: library_to_dict,
    ArchitectureTemplate: template_to_dict,
    Architecture: architecture_to_dict,
}

_DESERIALIZERS = {
    "library": library_from_dict,
    "template": template_from_dict,
    "architecture": architecture_from_dict,
}


def save_json(obj: Union[Library, ArchitectureTemplate, Architecture], path) -> None:
    """Write a library/template/architecture to a JSON file."""
    for klass, serializer in _SERIALIZERS.items():
        if isinstance(obj, klass):
            Path(path).write_text(json.dumps(serializer(obj), indent=2))
            return
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def load_json(path) -> Union[Library, ArchitectureTemplate, Architecture]:
    """Read back any object written by :func:`save_json`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind not in _DESERIALIZERS:
        raise ValueError(f"unknown or missing kind {kind!r} in {path}")
    return _DESERIALIZERS[kind](data)


def _check_kind(data: Dict[str, Any], expected: str) -> None:
    kind = data.get("kind")
    if kind != expected:
        raise ValueError(f"expected kind {expected!r}, got {kind!r}")
    version = int(data.get("version", 0))
    if version > _VERSION:
        raise ValueError(
            f"{expected} was written by a newer format version ({version})"
        )
