"""Run execution: a durable, resumable wrapper around the engine.

:func:`execute_run` drives one stored run through its state machine:

1. ``PENDING -> RUNNING`` (manifest records start time + attempt count);
2. the spec's :class:`repro.engine.BatchSpec` is built, jobs already
   journaled by a previous attempt are *skipped* (the crash-resume path:
   their canonical results replay from ``results.jsonl``, cross-checked
   against the telemetry journal's ``job_end`` events), and the remainder
   executes through :func:`repro.engine.run_batch` — telemetry appends to
   the run directory, every finished job is journaled immediately, and
   progress lands in the manifest so ``GET /api/jobs/<id>`` shows it;
3. the deterministic result document (``result.json``) and rendered
   report (``report.txt``) are written, the terminal state recorded, and
   the directory sealed as an evidence pack
   (:func:`repro.service.evidence.pack_evidence`).

Cancellation and timeouts are cooperative: the executor's ``should_stop``
hook is polled between job completions, so a cancelled or overdue run
stops at the next job boundary, journals what it has, and seals as
``CANCELLED`` / ``FAILED`` respectively.

The result document's ``results`` array is *deterministic*: job values
are canonicalized (:func:`canonical_value`) with no wall times, pids, or
timestamps, so a service run of a spec is byte-comparable against a
direct ``run_batch`` of the same spec.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from .. import obs
from ..engine import BatchSpec, run_batch
from ..engine.telemetry import completed_jobs, read_events, summarize_telemetry
from ..report import render_batch_summary
from .evidence import pack_evidence
from .specs import build_batch
from .store import (
    CANCELLED,
    DONE,
    FAILED,
    JOURNAL_NAME,
    REPORT_NAME,
    RESULT_NAME,
    RUNNING,
    SPEC_NAME,
    TELEMETRY_NAME,
    TRACE_NAME,
    WORKER_METRICS_NAME,
    MANIFEST_NAME,
    RunRecord,
    RunStore,
)

#: How often the executing run refreshes its liveness marker. Comfortably
#: inside :data:`repro.service.store.DEFAULT_LEASE_TTL` so a healthy run
#: can never look abandoned to ``repro runs gc``.
HEARTBEAT_INTERVAL = 5.0

__all__ = [
    "execute_run",
    "canonical_value",
    "canonical_results",
    "result_document",
]


# ---------------------------------------------------------------------------
# Canonical (deterministic) value encoding


def canonical_value(value: Any) -> Any:
    """JSON-able, deterministic encoding of a job's raw value.

    Floats keep full precision (Python's JSON round-trips them exactly),
    and nothing environment-dependent — wall times, pids, timestamps —
    survives, so equal computations encode to equal documents.
    """
    from ..arch import Architecture
    from ..arch.serialization import architecture_to_dict
    from ..synthesis.pareto import TradeoffPoint
    from ..synthesis.result import SynthesisResult

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, SynthesisResult):
        return {
            "type": "synthesis_result",
            "status": value.status,
            "algorithm": value.algorithm,
            "cost": value.cost,
            "reliability": value.reliability,
            "approx_reliability": value.approx_reliability,
            "num_iterations": value.num_iterations,
            "architecture": (
                architecture_to_dict(value.architecture)
                if value.architecture is not None else None
            ),
        }
    if isinstance(value, TradeoffPoint):
        return {
            "type": "tradeoff_point",
            "r_star": value.r_star,
            "result": canonical_value(value.result),
        }
    if isinstance(value, Architecture):
        return {"type": "architecture",
                **architecture_to_dict(value)}
    if isinstance(value, dict):
        return {str(k): canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    return repr(value)


def _journal_entry(result) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "job_id": result.job_id,
        "ok": result.ok,
        "meta": canonical_value(result.meta),
    }
    if result.ok:
        entry["value"] = canonical_value(result.value)
    else:
        entry["error"] = result.error
        entry["error_type"] = result.error_type
    return entry


def canonical_results(results) -> List[Dict[str, Any]]:
    """Deterministic per-job entries for a sequence of ``JobResult``.

    This is the byte-comparable core of ``result.json``: the acceptance
    check builds the same list from a direct :func:`repro.engine.run_batch`
    of the spec and compares JSON dumps.
    """
    return [_journal_entry(r) for r in results]


def result_document(record: RunRecord, batch: BatchSpec,
                    entries: List[Dict[str, Any]],
                    stats: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble ``result.json``: deterministic results + run statistics."""
    return {
        "run_id": record.run_id,
        "kind": record.kind,
        "spec_digest": record.manifest.get("spec_digest"),
        "batch": batch.name,
        "results": entries,
        "stats": stats,
    }


# ---------------------------------------------------------------------------
# Execution


def _load_replayable(store: RunStore, record: RunRecord) -> Dict[str, Dict]:
    """Journal entries safe to replay on resume (double-entry checked).

    A journal line counts only if the telemetry journal also recorded a
    matching successful ``job_end`` — the two files are written
    back-to-back, so an entry present in one but not the other marks the
    exact job a crash interrupted.
    """
    telemetry = record.path / TELEMETRY_NAME
    finished = completed_jobs(telemetry) if telemetry.is_file() else {}
    replayable: Dict[str, Dict] = {}
    for entry in store.read_journal(record):
        job_id = entry.get("job_id")
        if job_id is None or not entry.get("ok"):
            continue
        if finished.get(job_id):
            replayable[job_id] = entry
    return replayable


def _write_result(store: RunStore, record: RunRecord, batch: BatchSpec,
                  entries: List[Dict[str, Any]],
                  stats: Dict[str, Any]) -> None:
    import json

    doc = result_document(record, batch, entries, stats)
    (record.path / RESULT_NAME).write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _write_report(record: RunRecord, lines: List[str]) -> None:
    telemetry = record.path / TELEMETRY_NAME
    if telemetry.is_file():
        lines.append("")
        lines.append(render_batch_summary(summarize_telemetry(telemetry)))
    (record.path / REPORT_NAME).write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )


# The tracer slot is process-global, so concurrent execute_run threads
# must share one tracer and only the last of them may clear it — and
# only if the runner (not an outer caller such as a test's
# ``obs.tracing()``) installed it in the first place.
_TRACER_LOCK = threading.Lock()
_TRACER_USERS = 0
_TRACER_OWNED = False


def _acquire_tracer() -> None:
    global _TRACER_USERS, _TRACER_OWNED
    with _TRACER_LOCK:
        if obs.get_tracer() is None:
            obs.set_tracer(obs.Tracer())
            _TRACER_OWNED = True
        _TRACER_USERS += 1


def _release_tracer() -> None:
    global _TRACER_USERS, _TRACER_OWNED
    with _TRACER_LOCK:
        _TRACER_USERS -= 1
        if _TRACER_USERS <= 0 and _TRACER_OWNED:
            obs.set_tracer(None)
            _TRACER_OWNED = False


def _write_observability(record: RunRecord,
                         trace_ctx: "obs.TraceContext") -> None:
    """Write the run's stitched trace and per-worker metrics artifacts.

    Both are observability sidecars next to the deterministic
    ``result.json``: ``trace.json`` is a Chrome trace-event document
    stitching the coordinator's spans with every worker's spooled span
    records (filtered to this run's trace id, so concurrent runs sharing
    a tracer stay separate), and ``worker_metrics.json`` reconstructs
    each worker's metric totals from the telemetry journal's
    ``metrics_snapshot`` deltas — the "which worker was slow and why"
    answer. Written before the seal so ``pack_evidence`` manifests them.
    """
    import json

    tracer = obs.get_tracer()
    spans = [
        s for s in (tracer.spans if tracer is not None else [])
        if s.trace_id == trace_ctx.trace_id and s.finished
    ]
    records = [
        r for r in (tracer.records if tracer is not None else [])
        if r.get("trace") == trace_ctx.trace_id
    ]
    if spans or records:
        doc = obs.stitch_chrome_trace(records, spans=spans)
        (record.path / TRACE_NAME).write_text(
            json.dumps(doc, sort_keys=True, default=str) + "\n",
            encoding="utf-8",
        )
    telemetry = record.path / TELEMETRY_NAME
    workers: Dict[str, obs.MetricsRegistry] = {}
    if telemetry.is_file():
        for event in read_events(telemetry):
            if event.get("event") != "metrics_snapshot":
                continue
            metrics = event.get("metrics")
            if not isinstance(metrics, dict):
                continue
            pid = str(event.get("worker_pid") or "coordinator")
            reg = workers.setdefault(pid, obs.MetricsRegistry())
            obs.merge_snapshot(metrics, registry=reg)
    (record.path / WORKER_METRICS_NAME).write_text(
        json.dumps(
            {
                "run_id": record.run_id,
                "trace_id": trace_ctx.trace_id,
                "workers": {
                    pid: reg.snapshot()
                    for pid, reg in sorted(workers.items())
                },
            },
            indent=2, sort_keys=True, default=str,
        ) + "\n",
        encoding="utf-8",
    )


def _seal(store: RunStore, record: RunRecord, state: str,
          error: Optional[str] = None) -> RunRecord:
    """Record the terminal state, then freeze the directory as evidence."""
    store.clear_heartbeat(record)  # the lease ends with the run
    artifacts = sorted(
        p.name for p in record.path.iterdir()
        if p.is_file() and not p.name.endswith(".tmp")
    )
    store.transition(record, state, error=error, artifacts=artifacts)
    pack_evidence(record.path, run_id=record.run_id)
    return record


def _execute_bench(store: RunStore, record: RunRecord,
                   params: Dict[str, Any]) -> str:
    from ..bench import run_bench

    doc = run_bench(
        profile=params["profile"],
        out=str(record.path / "BENCH_ilp.json"),
        backends=params["backends"],
        log=lambda *a, **k: None,
    )
    entries = [{
        "job_id": f"{row['kind']}/{row['instance']}/{row['backend']}",
        "ok": True,
        "meta": {"kind": row["kind"], "backend": row["backend"]},
        "value": {
            "speedup": row.get("speedup"),
            "costs_identical": row.get("costs_identical"),
        },
    } for row in doc.get("rows", [])]
    batch = BatchSpec(name=f"bench-{params['profile']}")
    _write_result(store, record, batch, entries,
                  stats={"summary": doc.get("summary", {})})
    _write_report(record, [f"bench profile {params['profile']!r}: "
                           f"{len(entries)} rows"])
    store.set_progress(record, done=len(entries), failed=0,
                       total=len(entries))
    return DONE


def execute_run(
    store: RunStore,
    record: RunRecord,
    cancel: Optional[threading.Event] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    cache_backend: str = "auto",
    cache_shards: Optional[int] = None,
) -> RunRecord:
    """Execute one stored run to a terminal state and seal its evidence.

    Parameters
    ----------
    cancel:
        Cooperative cancellation flag, polled at job boundaries.
    jobs:
        Worker processes for the underlying batch (``1`` = in-thread).
    cache_dir:
        Shared persistent reliability cache directory.
    timeout:
        Wall-clock budget for the whole run; overrides the spec's own
        ``timeout`` when the spec gives none.
    cache_backend / cache_shards:
        Persistent cache tier selection, forwarded to the engine.
    """
    spec = record.spec()
    if record.state != RUNNING:
        # The queue claims PENDING -> RUNNING atomically under its own
        # lock before handing the record over; direct callers (CLI,
        # tests) still arrive with a PENDING record and claim here.
        store.transition(record, RUNNING)
    run_timeout = spec.get("timeout") or timeout
    deadline = (time.monotonic() + run_timeout) if run_timeout else None
    handle = obs.run_registry().start(
        "service", run=record.run_id, job_kind=record.kind,
        attempt=record.manifest.get("attempt"),
    )
    # Trace identity is *derived* from the run id, so a resumed run
    # (same id, new process) continues the same distributed trace. The
    # runner installs a tracer only when none is active — concurrent
    # runs inside one service process share it (refcounted, since the
    # tracer slot is process-global) and are separated by trace id when
    # artifacts are written.
    trace_ctx = obs.TraceContext.derive(
        record.run_id, run=record.run_id, kind=record.kind,
    )
    _acquire_tracer()
    prev_ctx = obs.set_trace_context(trace_ctx)
    # Lease heartbeat: proves to `repro runs gc` (possibly in another
    # process) that this run is being actively executed, even while a
    # long job keeps the manifest untouched.
    store.heartbeat(record)
    beat_stop = threading.Event()

    def _beat() -> None:
        while not beat_stop.wait(HEARTBEAT_INTERVAL):
            store.heartbeat(record)

    beat = threading.Thread(target=_beat, daemon=True,
                            name=f"repro-heartbeat-{record.run_id}")
    beat.start()
    status = FAILED
    error: Optional[str] = None
    try:
        if record.kind == "bench":
            status = _execute_bench(store, record, spec.get("params", {}))
            return record
        batch = build_batch(spec)
        replayable = _load_replayable(store, record)
        remaining = [j for j in batch.jobs if j.job_id not in replayable]
        skipped = len(batch.jobs) - len(remaining)
        store.set_progress(
            record, done=skipped, failed=0, total=len(batch.jobs),
            skipped=skipped,
        )
        handle.update(total=len(batch.jobs), skipped=skipped)

        progress = {"done": skipped, "failed": 0}

        def on_result(result) -> None:
            store.append_journal(record, _journal_entry(result))
            progress["done"] += 1
            progress["failed"] += 0 if result.ok else 1
            store.set_progress(record, done=progress["done"],
                               failed=progress["failed"])
            handle.update(done=progress["done"], failed=progress["failed"])

        def should_stop() -> bool:
            if cancel is not None and cancel.is_set():
                return True
            return deadline is not None and time.monotonic() > deadline

        batch_jobs = jobs if jobs != 1 else spec.get("jobs", 1)
        outcome = run_batch(
            BatchSpec(name=batch.name, jobs=remaining, meta=dict(batch.meta)),
            jobs=batch_jobs,
            cache_dir=cache_dir,
            telemetry=str(record.path / TELEMETRY_NAME),
            on_result=on_result,
            should_stop=should_stop,
            cache_backend=cache_backend,
            cache_shards=cache_shards,
        )

        # Merge replayed + fresh results back into submission order.
        fresh = {r.job_id: _journal_entry(r) for r in outcome.results}
        entries = []
        for job in batch.jobs:
            entry = replayable.get(job.job_id) or fresh.get(job.job_id)
            if entry is not None:
                entries.append(entry)
        failed = sum(1 for e in entries if not e.get("ok"))
        stats = {
            "wall_time": round(outcome.wall_time, 6),
            "jobs_used": outcome.jobs_used,
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
            "replayed": skipped,
            "executed": len(outcome.results),
            "failed": failed,
            "stopped": outcome.stopped,
        }
        _write_result(store, record, batch, entries, stats)
        _write_report(record, [
            f"run {record.run_id} ({record.kind})",
            f"jobs: {len(entries)}/{len(batch.jobs)} recorded, "
            f"{skipped} replayed from journal, {failed} failed",
            outcome.summary(),
        ])

        if outcome.stopped:
            if cancel is not None and cancel.is_set():
                status, error = CANCELLED, "cancelled by request"
            else:
                status, error = FAILED, (
                    f"timed out after {run_timeout}s "
                    f"({progress['done']}/{len(batch.jobs)} jobs done)"
                )
        elif len(entries) < len(batch.jobs) or failed:
            status, error = FAILED, f"{failed} job(s) failed"
        else:
            status = DONE
        return record
    except Exception as exc:  # noqa: BLE001 - a run must always seal
        status = FAILED
        error = f"{type(exc).__name__}: {exc}\n" + traceback.format_exc(limit=5)
        return record
    finally:
        obs.set_trace_context(prev_ctx)
        if record.kind != "bench":
            try:
                _write_observability(record, trace_ctx)
            except Exception:  # noqa: BLE001 - sidecars must never block sealing
                pass
        _release_tracer()
        beat_stop.set()
        beat.join(timeout=1.0)
        handle.finish(status=status.lower())
        _seal(store, record, status, error=error)


# Re-exported store filenames, so API/CLI callers need one import only.
ARTIFACT_NAMES = (SPEC_NAME, MANIFEST_NAME, JOURNAL_NAME, TELEMETRY_NAME,
                  RESULT_NAME, REPORT_NAME, TRACE_NAME, WORKER_METRICS_NAME)
