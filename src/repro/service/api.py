"""HTTP job API: ``ObsServer`` promoted to a service plane.

:class:`ServiceServer` extends :class:`repro.obs.ObsServer` — the
read-only ``/metrics`` / ``/runs`` / ``/healthz`` endpoints keep working
unchanged — with a JSON job API over the run store and queue:

``POST /api/jobs``
    Submit a job spec (see :mod:`repro.service.specs`); responds ``202``
    with the run id and its ``/api/jobs/<id>`` location. Bodies are
    bounded (:data:`MAX_BODY_BYTES`); invalid specs get ``400`` with
    every validation error listed.
``GET /api/jobs/<id>``
    Manifest + progress + artifact listing (poll this until terminal).
``GET /api/jobs/<id>/result``
    The deterministic result document; ``409`` while not terminal.
``GET /api/jobs/<id>/artifacts/<name>``
    Raw artifact bytes (telemetry, report, spec, hash manifest, ...).
``DELETE /api/jobs/<id>``
    Cancel: immediate for PENDING runs, cooperative for RUNNING ones.
``GET /api/runs``
    The whole store, newest first, plus live queue depth.
``GET /api/runs/<id>/events``
    SSE-style tail of the run's telemetry journal: replays what is
    journaled, then follows a live run (``?timeout=`` seconds, clamped)
    until it goes terminal — job life-cycle, span, worker, and B&B
    search-tree events as ``event:``/``data:`` frames.

Everything is stdlib-only and bound to ``127.0.0.1`` by default — the
service plane is a local (or reverse-proxied) API, not an internet-facing
one.
"""

from __future__ import annotations

import json
import re
import time
import urllib.parse
from typing import Any, Dict, Optional, Tuple

from ..obs.server import ObsServer, _ObsHandler
from .queue import JobQueue
from .specs import SpecError
from .store import TELEMETRY_NAME, TERMINAL_STATES, RESULT_NAME, RunRecord

__all__ = ["ServiceServer", "MAX_BODY_BYTES", "MAX_TAIL_SECONDS"]

#: Largest request body ``POST /api/jobs`` accepts.
MAX_BODY_BYTES = 1 << 20

#: Longest a ``/events`` tail may follow a live run (``?timeout=`` clamp).
MAX_TAIL_SECONDS = 300.0

#: How often the tail re-polls the telemetry journal of a live run.
_TAIL_POLL_SECONDS = 0.2

_JOB_PATH = re.compile(
    r"^/api/jobs/(?P<run_id>[A-Za-z0-9._\-]+)"
    r"(?:/(?P<sub>result|artifacts/(?P<artifact>[A-Za-z0-9._\-]+)))?$"
)

_EVENTS_PATH = re.compile(
    r"^/api/runs/(?P<run_id>[A-Za-z0-9._\-]+)/events$"
)

_CONTENT_TYPES = {
    ".json": "application/json",
    ".jsonl": "application/x-ndjson",
    ".txt": "text/plain; charset=utf-8",
    ".sha256": "text/plain; charset=utf-8",
}


def status_document(record: RunRecord, queue: JobQueue) -> Dict[str, Any]:
    doc = record.as_dict()
    doc["terminal"] = record.terminal
    doc["artifacts"] = sorted(
        p.name for p in record.path.iterdir()
        if p.is_file() and not p.name.endswith(".tmp")
    )
    doc["queue"] = {
        "active": record.run_id in queue.active(),
        "workers": queue.workers,
    }
    return doc


class _ServiceHandler(_ObsHandler):
    server_version = "repro-service/1.0"

    # -- helpers ----------------------------------------------------------

    @property
    def _service(self) -> JobQueue:
        return self.obs_server.service  # type: ignore[attr-defined]

    def _send_json(self, code: int, document: Dict[str, Any]) -> None:
        self._send(code, "application/json",
                   json.dumps(document, sort_keys=True, default=str) + "\n")

    def _send_error_json(self, code: int, message: str, **extra: Any) -> None:
        self._send_json(code, {"error": message, **extra})

    def _load_run(self, run_id: str) -> Optional[RunRecord]:
        try:
            return self._service.store.load(run_id)
        except KeyError:
            self._send_error_json(404, f"unknown run {run_id!r}")
            return None

    def _read_body(self) -> Optional[bytes]:
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "Content-Length required")
            return None
        try:
            length = int(length)
        except ValueError:
            self._send_error_json(400, "bad Content-Length")
            return None
        if length > MAX_BODY_BYTES:
            # Drain modest overshoots so the client can finish writing
            # before we answer (otherwise it may see a broken pipe instead
            # of the 413); absurd bodies just get the connection dropped.
            if length <= MAX_BODY_BYTES * 8:
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 65536))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            else:
                self.close_connection = True
            self._send_error_json(
                413, f"body exceeds {MAX_BODY_BYTES} bytes", limit=MAX_BODY_BYTES
            )
            return None
        return self.rfile.read(length)

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/":
            self._send(
                200, "text/plain; charset=utf-8",
                "repro.service endpoints: "
                + " ".join(self.obs_server.endpoints()) + "\n",
            )
            return
        if path == "/api/runs":
            store = self._service.store
            self._send_json(200, {
                "runs": [r.as_dict() for r in store.list()],
                "queue": {"pending": self._service.pending(),
                          "active": sorted(self._service.active())},
            })
            return
        events = _EVENTS_PATH.match(path)
        if events is not None:
            record = self._load_run(events.group("run_id"))
            if record is not None:
                self._stream_events(record, self._tail_timeout())
            return
        match = _JOB_PATH.match(path)
        if match is None:
            super().do_GET()
            return
        record = self._load_run(match.group("run_id"))
        if record is None:
            return
        sub = match.group("sub")
        if sub is None:
            self._send_json(200, status_document(record, self._service))
        elif sub == "result":
            self._send_result(record)
        else:
            self._send_artifact(record, match.group("artifact"))

    def _send_result(self, record: RunRecord) -> None:
        if record.state not in TERMINAL_STATES:
            self._send_error_json(
                409, f"run {record.run_id!r} is {record.state}; "
                "poll /api/jobs/<id> until terminal", state=record.state,
            )
            return
        path = record.artifact(RESULT_NAME)
        if not path.is_file():
            self._send_error_json(
                404, f"run {record.run_id!r} produced no result document",
                state=record.state, error=record.manifest.get("error"),
            )
            return
        self._send_bytes(200, "application/json", path.read_bytes())

    def _send_artifact(self, record: RunRecord, name: str) -> None:
        # The path regex already rejects separators; resolve() is a
        # belt-and-braces guard against traversal all the same.
        path = record.artifact(name)
        if not path.is_file() or path.resolve().parent != record.path.resolve():
            self._send_error_json(404, f"no artifact {name!r}")
            return
        content_type = _CONTENT_TYPES.get(path.suffix,
                                          "application/octet-stream")
        self._send_bytes(200, content_type, path.read_bytes())

    def _tail_timeout(self) -> float:
        """The ``?timeout=`` follow budget, clamped to the server limit."""
        query = urllib.parse.urlparse(self.path).query
        raw = urllib.parse.parse_qs(query).get("timeout", ["30"])[-1]
        try:
            timeout = float(raw)
        except ValueError:
            timeout = 30.0
        return max(0.0, min(timeout, MAX_TAIL_SECONDS))

    def _stream_events(self, record: RunRecord, timeout: float) -> None:
        """SSE-style tail of a run's telemetry journal.

        Replays every journaled event as an ``event:``/``data:`` frame,
        then — while the run is live and the ``timeout`` budget lasts —
        keeps polling the journal for fresh appends, so ``curl -N`` (or
        the tests) can watch queue workers, span boundaries, and B&B
        search events arrive in real time. A final ``end`` frame carries
        the run's state at disconnect. No ``Content-Length``: the
        stream's length is unknowable up front.
        """
        telemetry = record.artifact(TELEMETRY_NAME)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        deadline = time.monotonic() + timeout
        offset = 0
        try:
            while True:
                offset = self._emit_frames(telemetry, offset)
                try:
                    record = self._service.store.load(record.run_id)
                except KeyError:  # deleted mid-tail
                    break
                if record.terminal or time.monotonic() >= deadline:
                    break
                time.sleep(_TAIL_POLL_SECONDS)
            self.wfile.write(
                b"event: end\ndata: "
                + json.dumps({"run_id": record.run_id,
                              "state": record.state}).encode("utf-8")
                + b"\n\n"
            )
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def _emit_frames(self, telemetry, offset: int) -> int:
        """Write frames for journal lines past ``offset``; new offset.

        Only complete lines are consumed — the runner may be mid-append —
        so a partial trailing line is retried on the next poll.
        """
        if not telemetry.is_file():
            return offset
        try:
            with open(telemetry, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
        except OSError:
            return offset
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return offset
        for line in chunk[: cut + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            name = str(doc.get("event") or "event")
            self.wfile.write(
                f"event: {name}\n".encode("utf-8")
                + b"data: "
                + json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
                + b"\n\n"
            )
        self.wfile.flush()
        return offset + cut + 1

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path != "/api/jobs":
            self._send_error_json(404, "POST /api/jobs is the only POST route")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            spec = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return
        try:
            record = self._service.submit(spec)
        except SpecError as exc:
            self._send_error_json(400, "invalid job spec",
                                  problems=exc.errors)
            return
        except RuntimeError as exc:  # queue shutting down
            self._send_error_json(503, str(exc))
            return
        self._send_json(202, {
            "run_id": record.run_id,
            "state": record.state,
            "location": f"/api/jobs/{record.run_id}",
        })

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        match = _JOB_PATH.match(self.path.split("?", 1)[0])
        if match is None or match.group("sub") is not None:
            self._send_error_json(404, "DELETE /api/jobs/<id> cancels a run")
            return
        record = self._load_run(match.group("run_id"))
        if record is None:
            return
        try:
            record = self._service.cancel(record.run_id)
        except ValueError as exc:
            self._send_error_json(409, str(exc), state=record.state)
            return
        self._send_json(200, {"run_id": record.run_id,
                              "state": record.state})

    # -- low-level --------------------------------------------------------

    def _send_bytes(self, code: int, content_type: str,
                    payload: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


class ServiceServer(ObsServer):
    """The observability server plus the ``/api`` job routes.

    Usage (the CLI's ``repro serve`` does exactly this)::

        store = RunStore(".archex/runs")
        queue = JobQueue(store, cache_dir=".archex/cache").start()
        server = ServiceServer(queue, port=8181).start()
        ...
        server.stop(); queue.shutdown()
    """

    handler_class = _ServiceHandler

    def __init__(self, service: JobQueue, host: str = "127.0.0.1",
                 port: int = 0, **kwargs: Any) -> None:
        super().__init__(host=host, port=port, **kwargs)
        self.service = service

    def endpoints(self) -> Tuple[str, ...]:
        return ("/api/jobs", "/api/runs", "/api/runs/<id>/events",
                "/metrics", "/runs", "/healthz")
