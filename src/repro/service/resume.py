"""Crash resume: requeue runs a dead service left behind.

``repro serve --resume`` calls :func:`resume_interrupted` at startup: the
store is scanned for manifests stuck in ``RUNNING`` (the service died
mid-run — no live process ever leaves that state behind) and for
``PENDING`` runs that were queued but never started. RUNNING manifests
are transitioned back to PENDING (the legal resume edge of the state
machine) and everything is re-enqueued in original submission order.

Replaying is cheap by construction: the runner skips every job whose
canonical result survives in the run's ``results.jsonl`` journal
(cross-checked against the telemetry journal's ``job_end`` events), and
the jobs that do re-execute hit the persistent reliability cache for
their expensive exact analyses. A resumed batch therefore recomputes
only the single job the crash interrupted — plus whatever never started.
"""

from __future__ import annotations

from typing import List

from .. import obs
from .queue import JobQueue
from .store import PENDING, RUNNING, RunRecord, RunStore

__all__ = ["find_interrupted", "resume_interrupted"]


def find_interrupted(store: RunStore) -> List[RunRecord]:
    """Runs a previous service never finished, oldest first.

    ``RUNNING`` manifests are crash orphans (their process is gone);
    ``PENDING`` ones were accepted but never started.
    """
    records = store.list(states={RUNNING, PENDING})
    records.sort(key=lambda r: r.manifest.get("created_at", 0.0))
    return records


def resume_interrupted(store: RunStore, queue: JobQueue) -> List[RunRecord]:
    """Requeue every interrupted run; returns the requeued records."""
    resumed: List[RunRecord] = []
    for record in find_interrupted(store):
        if record.state == RUNNING:
            store.transition(record, PENDING)
        queue.enqueue_existing(record)
        obs.log("service.run_resumed", run=record.run_id,
                attempt=record.manifest.get("attempt"))
        resumed.append(record)
    return resumed
