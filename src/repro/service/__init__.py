"""``repro.service`` — synthesis as a service.

The service plane (ROADMAP item 1) that turns one-shot CLI invocations
into durable, queryable, resumable *runs*:

* :mod:`repro.service.specs` — JSON-schema-validated job specs
  (``synthesize`` / ``sweep`` / ``verify`` / ``bench``), normalized and
  content-addressed, with batch builders shared with the CLI;
* :mod:`repro.service.store` — the durable run store under
  ``.archex/runs/<run-id>/``: state-machine manifests
  (``PENDING -> RUNNING -> DONE/FAILED/CANCELLED``), environment and
  seed capture, atomic writes, a per-job results journal;
* :mod:`repro.service.evidence` — SHA-256 hash manifests sealing every
  terminal run into a verifiable *evidence pack* (``pack`` / ``verify``
  with tamper detection);
* :mod:`repro.service.queue` / :mod:`repro.service.runner` — a
  thread-backed FIFO queue with per-run cancel and timeout, executing
  batches through :func:`repro.engine.run_batch` and journaling each
  result for crash durability;
* :mod:`repro.service.api` — :class:`ServiceServer`, the
  :class:`repro.obs.ObsServer` extended with ``POST /api/jobs``,
  ``GET /api/jobs/<id>[/result|/artifacts/<name>]``,
  ``DELETE /api/jobs/<id>`` and ``GET /api/runs``;
* :mod:`repro.service.resume` — ``serve --resume`` crash recovery that
  requeues interrupted runs and replays journaled results instead of
  recomputing them.

Programmatic quick start (the CLI's ``repro serve``)::

    from repro.service import JobQueue, RunStore, ServiceServer

    store = RunStore(".archex/runs")
    queue = JobQueue(store, cache_dir=".archex/cache").start()
    with ServiceServer(queue, port=8181) as server:
        ...  # POST specs to server.url + "/api/jobs"
    queue.shutdown()
"""

from .api import MAX_BODY_BYTES, ServiceServer
from .evidence import (
    EvidenceReport,
    MANIFEST_FILENAME,
    file_digest,
    pack_evidence,
    read_manifest,
    verify_evidence,
)
from .queue import JobQueue
from .resume import find_interrupted, resume_interrupted
from .runner import (
    canonical_results,
    canonical_value,
    execute_run,
    result_document,
)
from .specs import (
    JOB_KINDS,
    PARAM_SCHEMAS,
    SPEC_SCHEMA,
    SpecError,
    build_batch,
    normalize_job_spec,
    register_batch_builder,
    spec_digest,
    validate_job_spec,
    validate_schema,
)
from .store import (
    CANCELLED,
    DEFAULT_RUNS_DIR,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    RunRecord,
    RunStore,
    StateError,
    capture_environment,
)

__all__ = [
    "CANCELLED",
    "DEFAULT_RUNS_DIR",
    "DONE",
    "EvidenceReport",
    "FAILED",
    "JOB_KINDS",
    "JobQueue",
    "MANIFEST_FILENAME",
    "MAX_BODY_BYTES",
    "PARAM_SCHEMAS",
    "PENDING",
    "RUNNING",
    "RunRecord",
    "RunStore",
    "SPEC_SCHEMA",
    "ServiceServer",
    "SpecError",
    "StateError",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "build_batch",
    "canonical_results",
    "canonical_value",
    "capture_environment",
    "execute_run",
    "file_digest",
    "find_interrupted",
    "normalize_job_spec",
    "pack_evidence",
    "read_manifest",
    "register_batch_builder",
    "result_document",
    "resume_interrupted",
    "spec_digest",
    "validate_job_spec",
    "validate_schema",
    "verify_evidence",
]
