"""Evidence packs: a SHA-256 hash manifest sealing a run directory.

When a run reaches a terminal state, the runner *packs* it: every file in
the run directory is hashed and the digests written to
``MANIFEST.sha256`` in the classic ``sha256sum`` format (two-space
separator, POSIX relative paths, sorted)::

    # archex evidence manifest v1
    # run: sweep-20260809T120000-1a2b3c4d
    3f5a...  manifest.json
    77e1...  result.json
    ...

``verify_evidence`` recomputes every digest and reports files that were
*modified*, *missing*, or *added* since packing — a tamper check that
makes the run directory a verifiable artifact: config, seeds, solver
stats, telemetry, and rendered reports, all under one content address
(:attr:`EvidenceReport.pack_digest`, the hash of the manifest itself).

The format is deliberately tool-compatible: ``cd <run-dir> &&
grep -v '^#' MANIFEST.sha256 | sha256sum -c -`` performs the same check
with coreutils alone.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "MANIFEST_FILENAME",
    "EvidenceReport",
    "file_digest",
    "pack_evidence",
    "verify_evidence",
    "read_manifest",
]

#: The hash manifest's own filename (never hashed into itself).
MANIFEST_FILENAME = "MANIFEST.sha256"

_HEADER = "# archex evidence manifest v1"
_CHUNK = 1 << 20


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 hex digest of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _walk_artifacts(run_dir: Path) -> List[Path]:
    files = [
        p for p in sorted(run_dir.rglob("*"))
        if p.is_file() and p.name != MANIFEST_FILENAME
        and not p.name.endswith(".tmp")
    ]
    return files


def pack_evidence(run_dir: Union[str, Path],
                  run_id: Optional[str] = None) -> Path:
    """Hash every artifact under ``run_dir`` into ``MANIFEST.sha256``.

    Returns the manifest path. Re-packing overwrites the previous
    manifest (the runner packs exactly once, at the terminal state).
    """
    run_dir = Path(run_dir)
    lines = [_HEADER]
    if run_id:
        lines.append(f"# run: {run_id}")
    for path in _walk_artifacts(run_dir):
        rel = path.relative_to(run_dir).as_posix()
        lines.append(f"{file_digest(path)}  {rel}")
    manifest = run_dir / MANIFEST_FILENAME
    manifest.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return manifest


def read_manifest(run_dir: Union[str, Path]) -> Dict[str, str]:
    """Parse ``MANIFEST.sha256`` into ``{relative-path: digest}``."""
    manifest = Path(run_dir) / MANIFEST_FILENAME
    entries: Dict[str, str] = {}
    for line in manifest.read_text(encoding="utf-8").splitlines():
        line = line.rstrip()
        if not line or line.startswith("#"):
            continue
        digest, _, rel = line.partition("  ")
        if len(digest) == 64 and rel:
            entries[rel] = digest
    return entries


@dataclass
class EvidenceReport:
    """Outcome of verifying a packed run directory."""

    run_dir: str
    ok: bool
    verified: List[str] = field(default_factory=list)
    modified: List[Tuple[str, str, str]] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    #: SHA-256 of the manifest file itself — the pack's content address.
    pack_digest: Optional[str] = None

    def summary(self) -> str:
        if self.ok:
            return (
                f"evidence OK: {len(self.verified)} artifact(s) verified "
                f"(pack {self.pack_digest[:12] if self.pack_digest else '?'})"
            )
        parts = []
        if self.modified:
            parts.append(f"{len(self.modified)} modified "
                         f"({', '.join(name for name, _, _ in self.modified)})")
        if self.missing:
            parts.append(f"{len(self.missing)} missing "
                         f"({', '.join(self.missing)})")
        if self.added:
            parts.append(f"{len(self.added)} added "
                         f"({', '.join(self.added)})")
        return "evidence TAMPERED: " + "; ".join(parts)


def verify_evidence(run_dir: Union[str, Path]) -> EvidenceReport:
    """Recompute every digest and diff against the packed manifest.

    ``ok`` is True only when every manifested file exists with its
    recorded digest and no unmanifested file has appeared. A missing
    manifest is itself a failed verification (everything counts as
    missing evidence).
    """
    run_dir = Path(run_dir)
    manifest_path = run_dir / MANIFEST_FILENAME
    if not manifest_path.is_file():
        return EvidenceReport(run_dir=str(run_dir), ok=False,
                              missing=[MANIFEST_FILENAME])
    expected = read_manifest(run_dir)
    on_disk = {
        p.relative_to(run_dir).as_posix(): p for p in _walk_artifacts(run_dir)
    }
    verified: List[str] = []
    modified: List[Tuple[str, str, str]] = []
    missing: List[str] = []
    for rel, digest in sorted(expected.items()):
        path = on_disk.get(rel)
        if path is None:
            missing.append(rel)
            continue
        actual = file_digest(path)
        if actual != digest:
            modified.append((rel, digest, actual))
        else:
            verified.append(rel)
    added = sorted(set(on_disk) - set(expected))
    ok = not (modified or missing or added)
    return EvidenceReport(
        run_dir=str(run_dir),
        ok=ok,
        verified=verified,
        modified=modified,
        missing=missing,
        added=added,
        pack_digest=file_digest(manifest_path),
    )
