"""Durable run store: one directory per run under ``.archex/runs/``.

Every run the service (or the CLI on its behalf) executes persists as::

    .archex/runs/<run-id>/
        manifest.json     state machine + environment + progress
        spec.json         the normalized job spec (content-addressed)
        results.jsonl     per-job canonical results journal (crash log)
        telemetry.jsonl   the engine's batch event stream
        result.json       the deterministic result document
        report.txt        rendered human-readable report
        MANIFEST.sha256   hash manifest over everything above (evidence)

The manifest is a small JSON state machine::

    PENDING -> RUNNING -> DONE | FAILED | CANCELLED
    PENDING -> CANCELLED                 (cancelled before starting)
    RUNNING -> PENDING                   (requeued by ``serve --resume``)

Transitions outside :data:`TRANSITIONS` raise :class:`StateError`; every
manifest write is atomic (temp file + ``os.replace``) so a crash never
leaves a half-written manifest. Alongside the spec, the manifest records
everything needed to reproduce the run: RNG seeds, git commit, package
versions, and the solver/batch statistics the runner fills in at the end.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from .specs import normalize_job_spec, spec_digest

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "StateError",
    "RunRecord",
    "RunStore",
    "capture_environment",
    "DEFAULT_RUNS_DIR",
]

PENDING = "PENDING"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: States a run never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The legal state machine. ``RUNNING -> PENDING`` is the resume edge: a
#: crashed service finds RUNNING manifests with no process behind them
#: and requeues the work.
TRANSITIONS: Dict[str, frozenset] = {
    PENDING: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED, PENDING}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

#: Default store location, relative to the working directory.
DEFAULT_RUNS_DIR = os.path.join(".archex", "runs")

MANIFEST_NAME = "manifest.json"
SPEC_NAME = "spec.json"
JOURNAL_NAME = "results.jsonl"
TELEMETRY_NAME = "telemetry.jsonl"
RESULT_NAME = "result.json"
REPORT_NAME = "report.txt"
HEARTBEAT_NAME = "heartbeat"
TRACE_NAME = "trace.json"
WORKER_METRICS_NAME = "worker_metrics.json"

#: How long a run's lease (heartbeat) counts as live without a refresh.
#: The runner heartbeats every few seconds; five minutes of silence means
#: the executing process is gone, not slow.
DEFAULT_LEASE_TTL = 300.0


class StateError(RuntimeError):
    """An illegal run-state transition was attempted."""


def _tracked_packages() -> Dict[str, str]:
    from importlib import metadata

    versions: Dict[str, str] = {}
    for pkg in ("numpy", "scipy", "networkx"):
        try:
            versions[pkg] = metadata.version(pkg)
        except metadata.PackageNotFoundError:  # pragma: no cover - env detail
            pass
    return versions


def _git_commit() -> Optional[Dict[str, Any]]:
    root = Path(__file__).resolve().parents[3]
    try:
        commit = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=True,
        ).stdout.strip()
        dirty = bool(subprocess.run(
            ["git", "-C", str(root), "status", "--porcelain"],
            capture_output=True, text=True, timeout=5.0, check=True,
        ).stdout.strip())
        return {"commit": commit, "dirty": dirty}
    except Exception:  # pragma: no cover - no git / not a checkout
        return None


def capture_environment() -> Dict[str, Any]:
    """Reproducibility snapshot: interpreter, platform, git, packages."""
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "git": _git_commit(),
        "packages": _tracked_packages(),
    }


def _write_json_atomic(path: Path, document: Dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)


@dataclass
class RunRecord:
    """One run: its directory plus the parsed manifest."""

    run_id: str
    path: Path
    manifest: Dict[str, Any] = field(default_factory=dict)

    @property
    def state(self) -> str:
        return self.manifest.get("state", "?")

    @property
    def kind(self) -> str:
        return self.manifest.get("kind", "?")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def artifact(self, name: str) -> Path:
        return self.path / name

    def spec(self) -> Dict[str, Any]:
        return json.loads((self.path / SPEC_NAME).read_text(encoding="utf-8"))

    def as_dict(self) -> Dict[str, Any]:
        doc = dict(self.manifest)
        doc["run_id"] = self.run_id
        return doc


class RunStore:
    """Filesystem-backed registry of durable runs."""

    def __init__(self, root: Union[str, Path] = DEFAULT_RUNS_DIR) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- creation ---------------------------------------------------------

    def _new_run_id(self, kind: str) -> str:
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        return f"{kind}-{stamp}-{uuid.uuid4().hex[:8]}"

    def create(self, spec: Dict[str, Any],
               run_id: Optional[str] = None) -> RunRecord:
        """Persist a new PENDING run for a (raw or normalized) job spec."""
        normalized = normalize_job_spec(spec)
        run_id = run_id or self._new_run_id(normalized["kind"])
        path = self.root / run_id
        if path.exists():
            raise FileExistsError(f"run {run_id!r} already exists")
        path.mkdir(parents=True)
        _write_json_atomic(path / SPEC_NAME, normalized)
        manifest = {
            "manifest_version": 1,
            "run_id": run_id,
            "kind": normalized["kind"],
            "state": PENDING,
            "created_at": time.time(),
            "started_at": None,
            "finished_at": None,
            "attempt": 0,
            "spec_digest": spec_digest(normalized),
            "seeds": {"spec": normalized.get("params", {}).get("seed")},
            "environment": capture_environment(),
            "progress": {"done": 0, "failed": 0, "skipped": 0, "total": None},
            "error": None,
            "artifacts": [SPEC_NAME, MANIFEST_NAME],
        }
        record = RunRecord(run_id=run_id, path=path, manifest=manifest)
        self._flush(record)
        return record

    # -- reading ----------------------------------------------------------

    def load(self, run_id: str) -> RunRecord:
        path = self.root / run_id
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise KeyError(f"unknown run {run_id!r}")
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        return RunRecord(run_id=run_id, path=path, manifest=manifest)

    def __contains__(self, run_id: str) -> bool:
        return (self.root / run_id / MANIFEST_NAME).is_file()

    def list(self, states: Optional[Iterable[str]] = None) -> List[RunRecord]:
        """All runs, newest first, optionally filtered by state.

        The sort is by start time (falling back to creation time for
        runs that never started) and is *stable*: ties break on run id,
        so two calls straddling an unrelated write return the same
        order — the contract ``repro runs ls --json`` consumers and the
        dashboard rely on.
        """
        wanted = frozenset(states) if states is not None else None
        records = []
        for entry in self.root.iterdir():
            if not (entry / MANIFEST_NAME).is_file():
                continue
            record = self.load(entry.name)
            if wanted is None or record.state in wanted:
                records.append(record)

        def _key(r: RunRecord):
            manifest = r.manifest
            started = manifest.get("started_at")
            if not isinstance(started, (int, float)):
                started = manifest.get("created_at", 0.0)
            if not isinstance(started, (int, float)):
                started = 0.0
            return (-started, r.run_id)

        records.sort(key=_key)
        return records

    # -- state machine ----------------------------------------------------

    def transition(self, record: RunRecord, state: str,
                   **fields: Any) -> RunRecord:
        """Move ``record`` to ``state``, enforcing :data:`TRANSITIONS`."""
        current = record.state
        if state not in TRANSITIONS:
            raise StateError(f"unknown state {state!r}")
        if state not in TRANSITIONS.get(current, frozenset()):
            raise StateError(
                f"illegal transition {current} -> {state} for run "
                f"{record.run_id!r}"
            )
        record.manifest["state"] = state
        now = time.time()
        if state == RUNNING:
            record.manifest["started_at"] = now
            record.manifest["attempt"] = record.manifest.get("attempt", 0) + 1
        elif state in TERMINAL_STATES:
            record.manifest["finished_at"] = now
        elif state == PENDING:  # resume requeue
            record.manifest["resumed_at"] = now
        record.manifest.update(fields)
        self._flush(record)
        return record

    def update(self, record: RunRecord, **fields: Any) -> RunRecord:
        """Merge manifest fields without a state change (atomic write)."""
        record.manifest.update(fields)
        self._flush(record)
        return record

    def set_progress(self, record: RunRecord, *, done: int, failed: int,
                     total: Optional[int] = None,
                     skipped: Optional[int] = None) -> None:
        progress = record.manifest.setdefault("progress", {})
        progress["done"] = done
        progress["failed"] = failed
        if total is not None:
            progress["total"] = total
        if skipped is not None:
            progress["skipped"] = skipped
        self._flush(record)

    def _flush(self, record: RunRecord) -> None:
        _write_json_atomic(record.path / MANIFEST_NAME, record.manifest)

    # -- results journal --------------------------------------------------

    def append_journal(self, record: RunRecord, entry: Dict[str, Any]) -> None:
        """Append one per-job result line (fsync-free, line-atomic enough:
        a torn trailing line is skipped on read)."""
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with (record.path / JOURNAL_NAME).open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()

    def read_journal(self, record: RunRecord) -> List[Dict[str, Any]]:
        path = record.path / JOURNAL_NAME
        if not path.is_file():
            return []
        entries: List[Dict[str, Any]] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line from a crash mid-write
        return entries

    # -- leases -----------------------------------------------------------

    def heartbeat(self, record: RunRecord) -> None:
        """Refresh the run's liveness marker (touched by the executor)."""
        path = record.path / HEARTBEAT_NAME
        try:
            os.utime(path)
        except OSError:
            try:
                path.touch()
            except OSError:  # pragma: no cover - directory vanished
                pass

    def clear_heartbeat(self, record: RunRecord) -> None:
        try:
            (record.path / HEARTBEAT_NAME).unlink()
        except OSError:
            pass

    def lease_age(self, record: RunRecord) -> Optional[float]:
        """Seconds since the run last proved an executor was alive.

        Liveness is the freshest of the heartbeat file and the manifest
        (every progress update rewrites the manifest), so runs executed
        by pre-heartbeat code still count as live while they progress.
        ``None`` means no evidence at all (directory unreadable).
        """
        newest: Optional[float] = None
        for name in (HEARTBEAT_NAME, MANIFEST_NAME):
            try:
                mtime = (record.path / name).stat().st_mtime
            except OSError:
                continue
            newest = mtime if newest is None else max(newest, mtime)
        return None if newest is None else max(0.0, time.time() - newest)

    def has_live_lease(self, record: RunRecord,
                       lease_ttl: float = DEFAULT_LEASE_TTL) -> bool:
        """True when some process recently heartbeat this run."""
        age = self.lease_age(record)
        return age is not None and age <= lease_ttl

    # -- housekeeping -----------------------------------------------------

    def delete(self, run_id: str) -> None:
        path = self.root / run_id
        if not (path / MANIFEST_NAME).is_file():
            raise KeyError(f"unknown run {run_id!r}")
        shutil.rmtree(path)

    def gc(self, keep: int = 20,
           states: Iterable[str] = TERMINAL_STATES,
           max_age: Optional[float] = None,
           lease_ttl: float = DEFAULT_LEASE_TTL) -> List[str]:
        """Delete terminal runs beyond the ``keep`` newest; return their ids.

        Non-terminal runs are normally never collected — a PENDING or
        RUNNING directory belongs to the queue. With ``max_age`` set,
        *stale* non-terminal runs older than that many seconds are also
        collected, but only when nothing holds a live lease on them
        (heartbeat or manifest touched within ``lease_ttl`` seconds):
        a run a worker is actively executing is never deleted out from
        under it, no matter how old the run is.
        """
        victims = self.list(states=states)[keep:]
        if max_age is not None:
            now = time.time()
            for record in self.list(states={PENDING, RUNNING}):
                created = record.manifest.get("created_at", now)
                if now - created <= max_age:
                    continue
                if self.has_live_lease(record, lease_ttl=lease_ttl):
                    continue  # an executor is still working this run
                victims.append(record)
        deleted = []
        for record in victims:
            self.delete(record.run_id)
            deleted.append(record.run_id)
        return deleted
