"""Job specifications for the synthesis service.

A *job spec* is the JSON document a client POSTs to ``/api/jobs`` (or the
CLI submits on its behalf): a ``kind`` — one of ``synthesize``, ``sweep``,
``verify``, ``bench`` — plus kind-specific ``params`` mirroring the CLI
flags of the same commands. Specs are validated against JSON-Schema
documents (:data:`SPEC_SCHEMA`, :data:`PARAM_SCHEMAS`) by a small
stdlib-only validator supporting the subset the schemas use, then
*normalized*: defaults filled in, keys ordered, and the result digested
(:func:`spec_digest`) so two submissions of the same work share a content
address.

:func:`build_batch` turns a normalized spec into the same
:class:`repro.engine.BatchSpec` the CLI's ``sweep`` / ``verify`` commands
build, so a service run and a direct ``run_batch`` of the same spec execute
bit-for-bit identical work.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "JOB_KINDS",
    "SPEC_SCHEMA",
    "PARAM_SCHEMAS",
    "SpecError",
    "validate_schema",
    "validate_job_spec",
    "normalize_job_spec",
    "spec_digest",
    "build_batch",
    "register_batch_builder",
]

#: Job kinds the service executes.
JOB_KINDS = ("synthesize", "sweep", "verify", "bench")

#: Hard cap on worker processes one job may request.
MAX_BATCH_JOBS = 64

_DOMAIN = {"type": "string", "enum": ["eps", "power-grid", "comm-net"],
           "default": "eps"}
_ALGORITHM = {"type": "string", "enum": ["ar", "mr", "mr-lazy", "tse"],
              "default": "mr"}
_BACKEND = {"type": "string", "enum": ["auto", "bnb", "scipy"],
            "default": "auto"}
_GAP = {"type": ["number", "null"], "default": None}
_SIZE = {"type": "integer", "minimum": 0, "maximum": 64, "default": 0}

#: Top-level spec envelope. ``params`` is validated per kind by
#: :data:`PARAM_SCHEMAS`.
SPEC_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["kind"],
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string", "enum": list(JOB_KINDS)},
        "params": {"type": "object", "default": {}},
        "jobs": {"type": "integer", "minimum": 1, "maximum": MAX_BATCH_JOBS,
                 "default": 1},
        "timeout": {"type": ["number", "null"], "exclusiveMinimum": 0,
                    "default": None},
        "tags": {"type": "object", "default": {}},
    },
}

#: Kind-specific parameter schemas (mirroring the CLI flags).
PARAM_SCHEMAS: Dict[str, Dict[str, Any]] = {
    "synthesize": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            "domain": _DOMAIN,
            "algorithm": _ALGORITHM,
            "backend": _BACKEND,
            "gap": _GAP,
            "size": _SIZE,
            "target": {"type": ["number", "null"], "exclusiveMinimum": 0,
                       "maximum": 1, "default": None},
        },
    },
    "sweep": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            "domain": _DOMAIN,
            "algorithm": _ALGORITHM,
            "backend": _BACKEND,
            "gap": _GAP,
            "size": _SIZE,
            "target": {"type": ["number", "null"], "exclusiveMinimum": 0,
                       "maximum": 1, "default": None},
            "levels": {"type": ["array", "null"], "minItems": 1,
                       "maxItems": 64, "default": None,
                       "items": {"type": "number", "exclusiveMinimum": 0,
                                 "maximum": 1}},
            "sizes": {"type": ["array", "null"], "minItems": 1,
                      "maxItems": 64, "default": None,
                      "items": {"type": "integer", "minimum": 5,
                                "maximum": 500}},
        },
    },
    "verify": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            "fuzz": {"type": "integer", "minimum": 0, "maximum": 10000,
                     "default": 25},
            "seed": {"type": "integer", "minimum": 0, "default": 0},
            "tol": {"type": "number", "exclusiveMinimum": 0, "default": 1e-9},
            "mc_samples": {"type": "integer", "minimum": 0, "default": 2000},
            "include_eps": {"type": "boolean", "default": True},
        },
    },
    "bench": {
        "type": "object",
        "additionalProperties": False,
        "properties": {
            "profile": {"type": "string", "enum": ["smoke", "full"],
                        "default": "smoke"},
            "backends": {"type": "array", "minItems": 1, "maxItems": 8,
                         "items": {"type": "string",
                                   "enum": ["bnb", "scipy"]},
                         "default": ["bnb", "scipy"]},
        },
    },
}


class SpecError(ValueError):
    """A job spec failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)


# ---------------------------------------------------------------------------
# Mini JSON-Schema validator (the subset the schemas above use)

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate_schema(value: Any, schema: Dict[str, Any],
                    path: str = "$") -> List[str]:
    """Validate ``value`` against a JSON-Schema subset; return error strings.

    Supported keywords: ``type`` (single or list), ``enum``, ``required``,
    ``properties``, ``additionalProperties: false``, ``items``,
    ``minItems`` / ``maxItems``, ``minimum`` / ``maximum`` /
    ``exclusiveMinimum``. Unknown keywords are ignored, like real
    JSON-Schema validators do.
    """
    errors: List[str] = []
    types = schema.get("type")
    if types is not None:
        allowed = types if isinstance(types, list) else [types]
        if not any(_TYPE_CHECKS[t](value) for t in allowed):
            errors.append(
                f"{path}: expected {' or '.join(allowed)}, "
                f"got {type(value).__name__}"
            )
            return errors  # further keyword checks would be nonsense
    if value is None:
        return errors  # a permitted null satisfies everything else
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} < minimum {schema['minimum']!r}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value!r} > maximum {schema['maximum']!r}")
        if "exclusiveMinimum" in schema and value <= schema["exclusiveMinimum"]:
            errors.append(
                f"{path}: {value!r} <= exclusiveMinimum "
                f"{schema['exclusiveMinimum']!r}"
            )
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: fewer than {schema['minItems']} items")
        if "maxItems" in schema and len(value) > schema["maxItems"]:
            errors.append(f"{path}: more than {schema['maxItems']} items")
        item_schema = schema.get("items")
        if item_schema is not None:
            for i, item in enumerate(value):
                errors.extend(
                    validate_schema(item, item_schema, f"{path}[{i}]")
                )
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                errors.extend(validate_schema(value[key], sub, f"{path}.{key}"))
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unknown key {key!r}")
    return errors


def validate_job_spec(spec: Any) -> List[str]:
    """All validation problems of a raw job spec (empty list = valid)."""
    errors = validate_schema(spec, SPEC_SCHEMA)
    if errors:
        return errors
    kind = spec["kind"]
    errors = validate_schema(spec.get("params", {}), PARAM_SCHEMAS[kind],
                             path="$.params")
    if errors:
        return errors
    if kind == "sweep":
        params = spec.get("params", {})
        if params.get("levels") and params.get("sizes"):
            errors.append("$.params: give either levels or sizes, not both")
    return errors


def _fill_defaults(value: Dict[str, Any],
                   schema: Dict[str, Any]) -> Dict[str, Any]:
    out = dict(value)
    for key, sub in schema.get("properties", {}).items():
        if key not in out and "default" in sub:
            out[key] = json.loads(json.dumps(sub["default"]))  # deep copy
    return out


def normalize_job_spec(spec: Any) -> Dict[str, Any]:
    """Validate and canonicalize a raw spec (defaults filled, keys stable).

    Raises :class:`SpecError` on any validation problem. The returned
    dict is what the run store persists as ``spec.json`` and what
    :func:`spec_digest` addresses, so equal submissions normalize to
    byte-equal documents.
    """
    errors = validate_job_spec(spec)
    if errors:
        raise SpecError(errors)
    out = _fill_defaults(spec, SPEC_SCHEMA)
    out["params"] = _fill_defaults(out.get("params", {}),
                                   PARAM_SCHEMAS[out["kind"]])
    if out["kind"] == "sweep" and not out["params"]["levels"] \
            and not out["params"]["sizes"]:
        out["params"]["levels"] = [2e-3, 2e-6, 2e-10]
    return out


def spec_digest(spec: Dict[str, Any]) -> str:
    """Content address of a normalized spec (SHA-256 of canonical JSON)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Batch construction (shared with the CLI code paths)


def _build_synthesize(params: Dict[str, Any]):
    from ..domains import domain_spec
    from ..engine import BatchSpec, Job

    spec = domain_spec(params["domain"], target=params["target"],
                       size=params["size"])
    job = Job(
        job_id="synthesize",
        kind="synthesize",
        payload={
            "spec": spec,
            "algorithm": params["algorithm"],
            "options": {"backend": params["backend"],
                        "mip_rel_gap": params["gap"]},
        },
        meta={"domain": params["domain"], "algorithm": params["algorithm"]},
    )
    return BatchSpec(name="service-synthesize", jobs=[job],
                     meta={"algorithm": params["algorithm"]})


def _build_sweep(params: Dict[str, Any]):
    from ..domains import domain_spec, eps_scaling_specs
    from ..engine import requirement_sweep, scaling_sweep

    options = {"backend": params["backend"], "mip_rel_gap": params["gap"]}
    if params.get("sizes"):
        return scaling_sweep(
            eps_scaling_specs(params["sizes"], params["target"]),
            algorithm=params["algorithm"],
            name="service-scaling-sweep",
            **options,
        )
    spec = domain_spec(params["domain"], target=None, size=params["size"])
    return requirement_sweep(
        spec, params["levels"], algorithm=params["algorithm"],
        name="service-requirement-sweep", **options,
    )


def _build_verify(params: Dict[str, Any]):
    from ..verify import corpus_cases, fuzz_cases, verification_batch

    cases = corpus_cases(include_eps=params["include_eps"])
    if params["fuzz"] > 0:
        cases.extend(fuzz_cases(params["fuzz"], seed=params["seed"]))
    return verification_batch(
        cases, tol=params["tol"], mc_samples=params["mc_samples"],
        seed=params["seed"],
    )


_BATCH_BUILDERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "synthesize": _build_synthesize,
    "sweep": _build_sweep,
    "verify": _build_verify,
}


def register_batch_builder(
    kind: str, fn: Callable[[Dict[str, Any]], Any]
) -> Callable[[Dict[str, Any]], Any]:
    """Register a batch builder for a custom job kind (extension point).

    Mirrors :func:`repro.engine.register_runner`: new scenario layers
    (attack sweeps, new domains) plug a builder in here and a runner in
    the engine, and the whole service plane — queue, store, evidence,
    resume — works for the new kind unchanged.
    """
    _BATCH_BUILDERS[kind] = fn
    return fn


def build_batch(spec: Dict[str, Any], builders: Optional[Dict] = None):
    """Normalized spec -> the :class:`repro.engine.BatchSpec` it describes.

    ``bench`` specs have no batch form (the bench harness drives its own
    measurement loop); the runner special-cases them before calling here.
    """
    kind = spec["kind"]
    builder = (builders or _BATCH_BUILDERS).get(kind)
    if builder is None:
        raise SpecError([f"no batch builder for job kind {kind!r}"])
    return builder(spec.get("params", {}))
