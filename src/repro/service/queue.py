"""Thread-backed FIFO job queue feeding the run store.

:class:`JobQueue` is the service's execution plane: ``submit`` validates
and persists a spec as a PENDING run, worker threads pop run ids in FIFO
order and drive them through :func:`repro.service.runner.execute_run`.
Each queued run gets a per-run :class:`threading.Event` for cooperative
cancellation (``cancel``), and a wall-clock timeout (the spec's own, or
the queue's default) enforced at job boundaries by the runner.

Runs execute one per worker thread; the parallelism *within* a run comes
from the engine's process pool (``spec.jobs`` / ``batch_jobs``), so a
single-worker queue with ``batch_jobs=4`` already saturates four cores.
The persistent reliability cache is shared by every run through
``cache_dir`` — the WAL + busy-timeout configuration on
:class:`repro.engine.ReliabilityCache` keeps concurrent workers off each
other's locks.
"""

from __future__ import annotations

import queue as _queue
import threading
from typing import Any, Dict, List, Optional

from .. import obs
from .runner import execute_run
from .store import CANCELLED, PENDING, RUNNING, RunRecord, RunStore

__all__ = ["JobQueue"]


class JobQueue:
    """FIFO queue of stored runs, executed by daemon worker threads."""

    def __init__(
        self,
        store: RunStore,
        workers: int = 1,
        batch_jobs: int = 1,
        cache_dir: Optional[str] = None,
        default_timeout: Optional[float] = None,
        cache_backend: str = "auto",
        cache_shards: Optional[int] = None,
    ) -> None:
        self.store = store
        self.workers = max(1, int(workers))
        self.batch_jobs = max(1, int(batch_jobs))
        self.cache_dir = cache_dir
        self.default_timeout = default_timeout
        self.cache_backend = cache_backend
        self.cache_shards = cache_shards
        self._queue: "_queue.Queue[Optional[str]]" = _queue.Queue()
        self._lock = threading.Lock()
        self._cancel_events: Dict[str, threading.Event] = {}
        self._active: Dict[str, str] = {}  # run_id -> worker name
        self._threads: List[threading.Thread] = []
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._stopping = False

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        return bool(self._threads)

    def start(self) -> "JobQueue":
        if self._threads:
            return self
        self._stopping = False
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-service-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, wait: bool = True, timeout: float = 30.0,
                 drain: Optional[bool] = None) -> None:
        """Stop accepting work and (optionally) wait for workers to exit.

        ``drain`` is an explicit alias for ``wait``: ``drain=True`` blocks
        until in-flight runs reach a worker boundary. Queued-but-unstarted
        runs stay PENDING in the store — a restart with ``--resume`` picks
        them back up. The stop flag and the workers' PENDING->RUNNING
        claim share one lock (see :meth:`_execute`), so after the flag is
        set here no further run can slip into RUNNING: every run is
        either claimed by a worker that will seal it, or still PENDING.
        """
        if drain is not None:
            wait = drain
        with self._lock:
            self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads = []

    # -- submission -------------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> RunRecord:
        """Validate + persist ``spec`` as a PENDING run and enqueue it."""
        record = self.store.create(spec)
        self._enqueue(record.run_id)
        obs.log("service.job_submitted", run=record.run_id,
                kind=record.kind)
        return record

    def enqueue_existing(self, record: RunRecord) -> None:
        """Queue an already-stored PENDING run (the resume path)."""
        if record.state != PENDING:
            raise ValueError(
                f"run {record.run_id!r} is {record.state}, not {PENDING}"
            )
        self._enqueue(record.run_id)

    def _enqueue(self, run_id: str) -> None:
        with self._lock:
            if self._stopping:
                raise RuntimeError("queue is shutting down")
            self._cancel_events.setdefault(run_id, threading.Event())
            self._inflight += 1
        self._queue.put(run_id)

    # -- cancellation -----------------------------------------------------

    def cancel(self, run_id: str) -> RunRecord:
        """Cancel a PENDING or RUNNING run; terminal runs raise.

        A PENDING run transitions to CANCELLED immediately (the worker
        skips it when dequeued); a RUNNING run stops cooperatively at its
        next job boundary and seals as CANCELLED there.
        """
        record = self.store.load(run_id)
        with self._lock:
            event = self._cancel_events.get(run_id)
        if event is not None:
            event.set()
        if record.state == PENDING:
            record = self.store.transition(record, CANCELLED,
                                           error="cancelled before start")
            from .evidence import pack_evidence

            pack_evidence(record.path, run_id=record.run_id)
        elif record.state != RUNNING:
            raise ValueError(
                f"run {run_id!r} is already {record.state}"
            )
        obs.log("service.job_cancelled", run=run_id, state=record.state)
        return record

    # -- introspection ----------------------------------------------------

    def active(self) -> Dict[str, str]:
        with self._lock:
            return dict(self._active)

    def pending(self) -> int:
        return self._queue.qsize()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every enqueued run reached a terminal state."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    # -- the worker loop --------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            run_id = self._queue.get()
            if run_id is None:
                return
            try:
                self._execute(run_id)
            finally:
                with self._idle:
                    self._inflight -= 1
                    self._active.pop(run_id, None)
                    self._cancel_events.pop(run_id, None)
                    self._idle.notify_all()
                self._queue.task_done()

    def _execute(self, run_id: str) -> None:
        # The whole claim — stop-flag check, PENDING check, and the
        # PENDING -> RUNNING transition — happens under one lock. Checking
        # the flag and transitioning separately left a race with a
        # draining shutdown: the worker could pass the check, shutdown
        # could decide everything was PENDING-or-finished and return, and
        # only then would the run flip to RUNNING — stranded, owned by a
        # daemon thread about to die with the process.
        with self._lock:
            if self._stopping:
                return  # drained on shutdown: the run stays PENDING on disk
            try:
                record = self.store.load(run_id)
            except KeyError:
                return  # deleted while queued
            if record.state != PENDING:
                return  # cancelled (or externally resolved) while queued
            record = self.store.transition(record, RUNNING)
            cancel = self._cancel_events.setdefault(run_id, threading.Event())
            self._active[run_id] = threading.current_thread().name
        try:
            execute_run(
                self.store,
                record,
                cancel=cancel,
                jobs=self.batch_jobs,
                cache_dir=self.cache_dir,
                timeout=self.default_timeout,
                cache_backend=self.cache_backend,
                cache_shards=self.cache_shards,
            )
        except Exception:  # noqa: BLE001 - the loop must survive anything
            # execute_run seals failures itself; this guards the guard.
            obs.log("service.worker_error", level="error", run=run_id)
