"""Differential verification and fuzzing for the reliability stack.

The synthesis loop's soundness rests on the exact engines being *right*,
and the persistent cache makes any wrong value long-lived. This package
cross-examines the stack from four directions:

* :mod:`repro.verify.differential` — all applicable exact engines on one
  problem must agree (plus brute-force and Monte-Carlo oracles, plus
  metamorphic properties: monotonicity, restriction-invariance, the
  Theorem 2 bound);
* :mod:`repro.verify.corpus` — seed cases with independently derived
  closed-form answers, and the EPS case-study sinks;
* :mod:`repro.verify.fuzz` — seeded random instances, counterexample
  shrinking, and repro files;
* :mod:`repro.verify.audit` — recompute cached values with a different
  engine than the one that wrote them.

``repro verify`` on the CLI drives all four; importing this package
registers the ``verify`` job kind with :mod:`repro.engine`.
"""

from .audit import AuditReport, audit_cache
from .corpus import VerifyCase, closed_form_cases, corpus_cases, eps_cases
from .differential import (
    Finding,
    VerificationResult,
    brute_force_failure,
    verify_problem,
)
from .fuzz import (
    fuzz_cases,
    load_repro,
    problem_from_dict,
    problem_to_dict,
    random_eps_subproblem,
    random_layered_problem,
    save_repro,
    shrink_problem,
)
from .jobs import batch_findings, result_to_dict, verification_batch

__all__ = [
    "AuditReport",
    "Finding",
    "VerificationResult",
    "VerifyCase",
    "audit_cache",
    "batch_findings",
    "brute_force_failure",
    "closed_form_cases",
    "corpus_cases",
    "eps_cases",
    "fuzz_cases",
    "load_repro",
    "problem_from_dict",
    "problem_to_dict",
    "random_eps_subproblem",
    "random_layered_problem",
    "result_to_dict",
    "save_repro",
    "shrink_problem",
    "verification_batch",
    "verify_problem",
]
