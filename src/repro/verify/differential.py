"""Differential and metamorphic verification of the reliability engines.

ILP-MR's soundness rests on RELANALYSIS returning the *exact* K-terminal
failure probability, and the persistent reliability cache makes any wrong
engine result long-lived: one bad value silently poisons every warm sweep
that follows. This module cross-examines the engines on a single
:class:`ReliabilityProblem`:

* **differential** — every applicable exact engine
  (:func:`repro.reliability.applicable_exact_engines`) computes the same
  number and must agree within a float tolerance; small instances are
  additionally checked against an exhaustive state-enumeration oracle
  (:func:`brute_force_failure`), and Monte-Carlo provides a statistical
  cross-check via the existing :class:`MonteCarloEstimate` interval;
* **metamorphic** — properties that must hold regardless of engine:
  adding an edge or lowering a component's ``p`` never increases the
  failure probability, restriction (``problem.restricted()``) never
  changes the answer, and the Theorem 2 bound
  (:meth:`ApproxReliability.guaranteed_upper_bound`) holds against each
  exact value.

Engines are invoked through :func:`repro.reliability.run_engine` — never
through the cache — so the verifier observes what the engines *compute*,
not what a (possibly poisoned) cache remembers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..reliability import (
    ReliabilityProblem,
    exact_engine_names,
    failure_probability_mc,
    inapplicable_reason,
    minimal_path_sets,
    run_engine,
)
from ..reliability.approx import approximate_failure_from_link
from ..arch.paths import functional_link

__all__ = [
    "Finding",
    "VerificationResult",
    "brute_force_failure",
    "verify_problem",
]

#: Node/edge mutation fan-out per metamorphic property (keeps one case's
#: verification cost bounded on dense graphs).
_MAX_MUTATIONS = 3

#: Imperfect-component ceiling for the exhaustive brute-force oracle.
MAX_BRUTE_FORCE_NODES = 14


@dataclass
class Finding:
    """One confirmed (or statistically flagged) verification failure."""

    case: str  # case identifier (corpus name, fuzz id, cache digest, ...)
    check: str  # which verification check tripped
    detail: str  # human-readable description
    value: Optional[float] = None  # the offending value
    reference: Optional[float] = None  # what it was compared against
    statistical: bool = False  # True for Monte-Carlo interval misses

    @property
    def delta(self) -> Optional[float]:
        if self.value is None or self.reference is None:
            return None
        return abs(self.value - self.reference)

    def as_dict(self) -> Dict:
        return {
            "case": self.case,
            "check": self.check,
            "detail": self.detail,
            "value": self.value,
            "reference": self.reference,
            "statistical": self.statistical,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Finding":
        return cls(
            case=str(data["case"]),
            check=str(data["check"]),
            detail=str(data.get("detail", "")),
            value=data.get("value"),
            reference=data.get("reference"),
            statistical=bool(data.get("statistical", False)),
        )


@dataclass
class VerificationResult:
    """Outcome of verifying one problem: engine values and findings."""

    case: str
    engines: Dict[str, float] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)  # engine -> reason
    findings: List[Finding] = field(default_factory=list)
    checks_run: int = 0
    mc_estimate: Optional[float] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def confirmed_findings(self) -> List[Finding]:
        """Findings backed by exact computation (MC misses excluded)."""
        return [f for f in self.findings if not f.statistical]


def _agree(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def brute_force_failure(
    problem: ReliabilityProblem, max_nodes: int = MAX_BRUTE_FORCE_NODES
) -> float:
    """Failure probability by exhaustive enumeration of component states.

    The simplest possible implementation of eq. 5 — sum the probability of
    every up/down assignment of the imperfect components under which no
    minimal path set survives intact. Exponential in the imperfect
    component count (``ValueError`` beyond ``max_nodes``), but its
    correctness is self-evident, which is exactly what a differential
    oracle needs.
    """
    restricted = problem.restricted()
    paths = minimal_path_sets(restricted)
    if not paths:
        return 1.0
    imperfect = sorted(
        n for n in restricted.graph.nodes if restricted.failure_prob(n) > 0.0
    )
    if len(imperfect) > max_nodes:
        raise ValueError(
            f"brute force limited to {max_nodes} imperfect components, "
            f"got {len(imperfect)}"
        )
    bit_of = {n: 1 << i for i, n in enumerate(imperfect)}
    # A path survives a failure set iff none of its imperfect nodes failed.
    path_masks = sorted(
        {sum(bit_of.get(n, 0) for n in path) for path in paths}
    )
    probs = [restricted.failure_prob(n) for n in imperfect]
    total = 0.0
    for failed in range(1 << len(imperfect)):
        if any(mask & failed == 0 for mask in path_masks):
            continue  # some path fully up: system works
        weight = 1.0
        for i, p in enumerate(probs):
            weight *= p if failed >> i & 1 else 1.0 - p
        total += weight
    return min(max(total, 0.0), 1.0)


def _added_edge_candidates(problem: ReliabilityProblem) -> List[tuple]:
    """Deterministic sample of absent edges to try adding."""
    graph = problem.graph
    nodes = sorted(graph.nodes)
    candidates = [
        (u, v)
        for u in nodes
        for v in nodes
        if u != v and not graph.has_edge(u, v)
    ]
    return candidates[:_MAX_MUTATIONS]


def _with_edge(problem: ReliabilityProblem, u: str, v: str) -> ReliabilityProblem:
    graph = problem.graph.copy()
    graph.add_edge(u, v)
    return ReliabilityProblem(graph, problem.sources, problem.sink)


def _with_prob(problem: ReliabilityProblem, node: str, p: float) -> ReliabilityProblem:
    graph = problem.graph.copy()
    graph.nodes[node]["p"] = p
    return ReliabilityProblem(graph, problem.sources, problem.sink)


def verify_problem(
    problem: ReliabilityProblem,
    case: str = "case",
    tol: float = 1e-9,
    mc_samples: int = 20_000,
    seed: int = 0,
    expected: Optional[float] = None,
    reference: str = "bdd",
    metamorphic: bool = True,
) -> VerificationResult:
    """Run the full differential + metamorphic battery on one problem.

    ``expected`` supplies an independently known closed-form answer (the
    seed corpus carries them); ``reference`` names the engine used for the
    metamorphic re-computations. Monte-Carlo misses are recorded with
    ``statistical=True`` — still findings, but distinguishable from
    exactly confirmed disagreements.
    """
    result = VerificationResult(case=case)
    findings = result.findings

    # -- differential: every applicable exact engine, same number ---------
    for name in exact_engine_names():
        reason = inapplicable_reason(name, problem)
        if reason is not None:
            result.skipped[name] = reason
            continue
        try:
            result.engines[name] = run_engine(name, problem)
        except Exception as exc:  # engine crash is a finding, not an abort
            findings.append(
                Finding(
                    case=case,
                    check="engine-error",
                    detail=f"{name} raised {type(exc).__name__}: {exc}",
                )
            )
    result.checks_run += 1
    if reference not in result.engines:
        # Without the reference engine nothing below is comparable.
        if reference not in result.skipped:
            return result
        reference = next(iter(result.engines), "")
        if not reference:
            return result
    r_ref = result.engines[reference]

    for name, value in sorted(result.engines.items()):
        if name == reference:
            continue
        if not _agree(value, r_ref, tol):
            findings.append(
                Finding(
                    case=case,
                    check="engine-disagreement",
                    detail=f"{name}={value!r} vs {reference}={r_ref!r}",
                    value=value,
                    reference=r_ref,
                )
            )

    if expected is not None:
        result.checks_run += 1
        for name, value in sorted(result.engines.items()):
            if not _agree(value, expected, tol):
                findings.append(
                    Finding(
                        case=case,
                        check="closed-form",
                        detail=f"{name}={value!r} vs closed form {expected!r}",
                        value=value,
                        reference=expected,
                    )
                )

    # -- brute-force oracle on small instances ----------------------------
    restricted = problem.restricted()
    n_imperfect = sum(
        1 for n in restricted.graph.nodes if restricted.failure_prob(n) > 0.0
    )
    if n_imperfect <= MAX_BRUTE_FORCE_NODES:
        result.checks_run += 1
        brute = brute_force_failure(problem)
        if not _agree(brute, r_ref, tol):
            findings.append(
                Finding(
                    case=case,
                    check="brute-force",
                    detail=f"{reference}={r_ref!r} vs exhaustive enumeration "
                    f"{brute!r}",
                    value=r_ref,
                    reference=brute,
                )
            )

    # -- Monte-Carlo statistical cross-check ------------------------------
    if mc_samples > 0:
        result.checks_run += 1
        mc = failure_probability_mc(problem, samples=mc_samples, seed=seed)
        result.mc_estimate = mc.estimate
        if not mc.contains(r_ref, z=6.0):
            findings.append(
                Finding(
                    case=case,
                    check="mc-interval",
                    detail=f"{reference}={r_ref!r} outside the 6-sigma "
                    f"Monte-Carlo interval around {mc.estimate!r} "
                    f"({mc.samples} samples)",
                    value=r_ref,
                    reference=mc.estimate,
                    statistical=True,
                )
            )

    if not metamorphic:
        return result

    # -- metamorphic: restriction never changes the answer -----------------
    result.checks_run += 1
    r_restricted = run_engine(reference, restricted)
    if not _agree(r_restricted, r_ref, tol):
        findings.append(
            Finding(
                case=case,
                check="restriction",
                detail=f"{reference} on restricted()={r_restricted!r} vs "
                f"original {r_ref!r}",
                value=r_restricted,
                reference=r_ref,
            )
        )

    # -- metamorphic: adding an edge never increases failure ---------------
    slack = tol * max(1.0, abs(r_ref))
    for (u, v) in _added_edge_candidates(problem):
        result.checks_run += 1
        r_more = run_engine(reference, _with_edge(problem, u, v))
        if r_more > r_ref + slack:
            findings.append(
                Finding(
                    case=case,
                    check="edge-monotonicity",
                    detail=f"adding edge {u}->{v} raised failure from "
                    f"{r_ref!r} to {r_more!r}",
                    value=r_more,
                    reference=r_ref,
                )
            )

    # -- metamorphic: lowering a p never increases failure -----------------
    imperfect = sorted(
        n for n in problem.graph.nodes if problem.failure_prob(n) > 0.0
    )
    for node in imperfect[:_MAX_MUTATIONS]:
        result.checks_run += 1
        lowered = _with_prob(problem, node, problem.failure_prob(node) / 2.0)
        r_less = run_engine(reference, lowered)
        if r_less > r_ref + slack:
            findings.append(
                Finding(
                    case=case,
                    check="prob-monotonicity",
                    detail=f"halving p({node}) raised failure from {r_ref!r} "
                    f"to {r_less!r}",
                    value=r_less,
                    reference=r_ref,
                )
            )

    # -- metamorphic: Theorem 2 bound vs every exact value -----------------
    # The theorem is stated for the paper's uniform-p setting; on links
    # with perfect nodes (p=0) the approximation can degenerate to
    # r~ = 0, so the bound is only checked when every node on the link
    # shares one nonzero failure probability.
    link = functional_link(
        problem.graph, list(problem.sources), problem.sink
    )
    link_probs = {problem.failure_prob(n) for n in link.nodes()}
    if link.paths and len(link_probs) == 1 and min(link_probs) > 0.0:
        result.checks_run += 1
        type_probs: Dict[str, float] = {
            link.type_of[n]: problem.failure_prob(n) for n in link.nodes()
        }
        approx = approximate_failure_from_link(link, type_probs)
        for name, value in sorted(result.engines.items()):
            if not approx.guaranteed_upper_bound(value):
                findings.append(
                    Finding(
                        case=case,
                        check="theorem2-bound",
                        detail=f"r~={approx.r_tilde!r} / r[{name}]={value!r} "
                        f"below the Theorem 2 ratio {approx.bound_ratio!r}",
                        value=approx.r_tilde,
                        reference=value,
                    )
                )

    return result
