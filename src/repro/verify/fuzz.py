"""Seeded fuzzing of the reliability engines.

Random small instances are where engine bugs hide: the seed corpus only
covers graph shapes someone thought of. The fuzzer generates two families
— random layered DAGs (the shape every architecture template induces) and
random sub-architectures of the EPS case study — runs the full
differential battery on each, and greedily *shrinks* any failing instance
to a minimal counterexample before serializing it to a repro file.

Everything is driven by :class:`random.Random` seeded from the caller —
no wall-clock randomness — so ``repro verify --fuzz N --seed S`` is
reproducible bit-for-bit, and a repro file plus its seed pins a bug
forever.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import networkx as nx

from ..arch import Architecture
from ..eps import paper_template
from ..reliability import (
    ReliabilityProblem,
    minimal_path_sets,
    problem_from_architecture,
)
from .corpus import VerifyCase

__all__ = [
    "fuzz_cases",
    "random_layered_problem",
    "random_eps_subproblem",
    "shrink_problem",
    "problem_to_dict",
    "problem_from_dict",
    "save_repro",
    "load_repro",
]

#: Failure probabilities the generators draw from. A mix of magnitudes —
#: paper-scale (2e-4), moderate, and large — plus 0.0 (perfect nodes).
_PROB_PALETTE = (0.0, 2e-4, 1e-3, 0.05, 0.1, 0.3)


def random_layered_problem(rng: random.Random) -> ReliabilityProblem:
    """A random layered DAG with one sink and 1-3 sources.

    Mirrors the source -> relay* -> sink shape of architecture templates:
    2-4 layers, 1-3 nodes wide, edges only between adjacent layers, with a
    guaranteed source-to-sink path so the instance is non-degenerate.
    Roughly a third of instances use a single uniform nonzero ``p`` so the
    polynomial engine participates.
    """
    n_layers = rng.randint(2, 4)
    widths = [rng.randint(1, 3) for _ in range(n_layers)]
    widths[-1] = 1  # single sink
    uniform = rng.random() < 1 / 3
    uniform_p = rng.choice([p for p in _PROB_PALETTE if p > 0.0])

    def prob() -> float:
        return uniform_p if uniform else rng.choice(_PROB_PALETTE)

    graph = nx.DiGraph()
    layers: List[List[str]] = []
    for li, width in enumerate(widths):
        layer = [f"n{li}_{i}" for i in range(width)]
        for name in layer:
            graph.add_node(name, p=prob())
        layers.append(layer)
    for below, above in zip(layers, layers[1:]):
        for u in below:
            for v in above:
                if rng.random() < 0.6:
                    graph.add_edge(u, v)
        # Every node needs an outgoing edge for a path to possibly exist.
        for u in below:
            if graph.out_degree(u) == 0:
                graph.add_edge(u, rng.choice(above))
        for v in above:
            if graph.in_degree(v) == 0:
                graph.add_edge(rng.choice(below), v)
    sources = tuple(layers[0])
    return ReliabilityProblem(graph, sources, layers[-1][0])


def random_eps_subproblem(rng: random.Random) -> ReliabilityProblem:
    """A random sub-architecture of the EPS template, analyzed at one sink.

    Keeps each allowed edge with probability 0.75 and retries until the
    chosen sink still has at least one functional path — degraded but
    live configurations, exactly what ILP-MR's inner loop analyzes.
    """
    template = paper_template()
    allowed = list(template.allowed_edges)
    sinks = Architecture(template, allowed).sink_names()
    while True:
        edges = [e for e in allowed if rng.random() < 0.75]
        arch = Architecture(template, edges)
        sink = rng.choice(sinks)
        problem = problem_from_architecture(arch, sink)
        if minimal_path_sets(problem.restricted()):
            return problem


def fuzz_cases(count: int, seed: int = 0) -> List[VerifyCase]:
    """``count`` seeded random cases, alternating both generator families."""
    rng = random.Random(seed)
    cases = []
    for i in range(count):
        if i % 3 == 2:
            problem = random_eps_subproblem(rng)
            family = "eps-sub"
        else:
            problem = random_layered_problem(rng)
            family = "layered"
        cases.append(
            VerifyCase(
                name=f"fuzz-{seed}/{i:04d}-{family}",
                problem=problem,
                origin="fuzz",
            )
        )
    return cases


# ---------------------------------------------------------------------------
# Shrinking


def _imperfect_nodes(problem: ReliabilityProblem) -> List[str]:
    return sorted(
        n for n in problem.graph.nodes if problem.failure_prob(n) > 0.0
    )


def _candidates(problem: ReliabilityProblem) -> List[ReliabilityProblem]:
    """Single-step reductions, most aggressive first: drop a node, drop an
    edge, or make an imperfect node perfect (p=0)."""
    out: List[ReliabilityProblem] = []
    protected = set(problem.sources) | {problem.sink}
    for node in sorted(problem.graph.nodes):
        if node in protected:
            continue
        graph = problem.graph.copy()
        graph.remove_node(node)
        out.append(ReliabilityProblem(graph, problem.sources, problem.sink))
    for u, v in sorted(problem.graph.edges):
        graph = problem.graph.copy()
        graph.remove_edge(u, v)
        out.append(ReliabilityProblem(graph, problem.sources, problem.sink))
    for node in _imperfect_nodes(problem):
        graph = problem.graph.copy()
        graph.nodes[node]["p"] = 0.0
        out.append(ReliabilityProblem(graph, problem.sources, problem.sink))
    return out


def shrink_problem(
    problem: ReliabilityProblem,
    still_fails: Callable[[ReliabilityProblem], bool],
    max_steps: int = 200,
) -> ReliabilityProblem:
    """Greedily minimize a failing instance.

    Repeatedly applies the first single-step reduction under which
    ``still_fails`` holds, until no reduction preserves the failure (a
    1-minimal counterexample) or ``max_steps`` reductions were taken.
    ``still_fails`` should re-run the *non-statistical* part of the
    verification — shrinking against a Monte-Carlo coin flip would walk
    to noise, not to a bug.
    """
    current = problem
    for _ in range(max_steps):
        for candidate in _candidates(current):
            try:
                failed = still_fails(candidate)
            except Exception:
                failed = False  # a reduction that crashes the checker is out
            if failed:
                current = candidate
                break
        else:
            return current
    return current


# ---------------------------------------------------------------------------
# Repro files


def problem_to_dict(problem: ReliabilityProblem) -> Dict[str, Any]:
    """JSON-able description of a problem (full graph, not restricted).

    Probabilities carry both a human-readable float and a hex encoding;
    :func:`problem_from_dict` restores from the hex form, so the
    round-trip is bit-exact.
    """
    graph = problem.graph
    return {
        "nodes": [
            {
                "name": str(n),
                "p": float(graph.nodes[n].get("p", 0.0)),
                "p_hex": float(graph.nodes[n].get("p", 0.0)).hex(),
            }
            for n in sorted(graph.nodes)
        ],
        "edges": sorted([str(u), str(v)] for u, v in graph.edges),
        "sources": sorted(str(s) for s in problem.sources),
        "sink": str(problem.sink),
    }


def problem_from_dict(data: Dict[str, Any]) -> ReliabilityProblem:
    graph = nx.DiGraph()
    for node in data["nodes"]:
        p = float.fromhex(node["p_hex"]) if "p_hex" in node else float(node["p"])
        graph.add_node(str(node["name"]), p=p)
    graph.add_edges_from((str(u), str(v)) for u, v in data["edges"])
    return ReliabilityProblem(
        graph, tuple(str(s) for s in data["sources"]), str(data["sink"])
    )


def save_repro(
    problem: ReliabilityProblem,
    path: Path,
    case: str,
    findings: Optional[List[Dict[str, Any]]] = None,
    seed: Optional[int] = None,
) -> Path:
    """Write a shrunk counterexample (with its findings) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": case,
        "seed": seed,
        "problem": problem_to_dict(problem),
        "findings": findings or [],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Path) -> Dict[str, Any]:
    """Read a repro file back; ``problem`` is reconstructed, rest verbatim."""
    data = json.loads(Path(path).read_text())
    data["problem"] = problem_from_dict(data["problem"])
    return data
