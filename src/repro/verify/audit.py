"""Audit a persistent reliability cache against fresh computation.

The cache (:class:`repro.engine.ReliabilityCache`) makes any wrong engine
result *persistent*: one bad value keeps resurfacing on every warm sweep.
Each cache entry stores the canonical problem payload alongside its
digest, so an auditor can (a) recompute the digest from the payload and
catch corrupted or tampered rows, and (b) reconstruct the problem and
recompute its value with a *different* exact engine than the one that
wrote the entry — a differential check across time as well as across
engines.

Entries written by caches that predate the payload column audit as
``skipped`` rather than failing: they carry no problem to reconstruct.
"""

from __future__ import annotations

import json
import random
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from ..engine.cache import CACHE_FILENAME, payload_digest, problem_from_payload
from ..reliability import exact_engine_names, inapplicable_reason, run_engine
from .differential import Finding, _agree

__all__ = ["AuditReport", "audit_cache"]


@dataclass
class AuditReport:
    """Outcome of auditing one cache file."""

    path: str
    entries: int = 0  # rows in the cache
    sampled: int = 0  # rows drawn for auditing
    audited: int = 0  # rows actually recomputed
    skipped: int = 0  # sampled rows without a payload / usable engine
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _cross_engine(method: str, problem) -> Optional[str]:
    """An applicable exact engine other than the one that wrote the entry."""
    for name in exact_engine_names():
        if name == method:
            continue
        if inapplicable_reason(name, problem) is None:
            return name
    # Fall back to re-running the original engine: still catches rows whose
    # stored value no longer matches what the engine computes.
    if method in exact_engine_names() and inapplicable_reason(method, problem) is None:
        return method
    return None


def audit_cache(
    cache_dir: str,
    sample: int = 25,
    seed: int = 0,
    tol: float = 1e-9,
) -> AuditReport:
    """Recompute a seeded sample of cache entries with a different engine.

    Raises ``FileNotFoundError`` when ``cache_dir`` holds no cache file —
    auditing nothing silently would defeat the point.
    """
    path = Path(cache_dir) / CACHE_FILENAME
    if not path.exists():
        raise FileNotFoundError(f"no reliability cache at {path}")
    report = AuditReport(path=str(path))
    conn = sqlite3.connect(str(path))
    try:
        report.entries = int(
            conn.execute("SELECT COUNT(*) FROM reliability").fetchone()[0]
        )
        rows = conn.execute(
            "SELECT digest, method, value, problem FROM reliability "
            "ORDER BY digest"
        ).fetchall()
    finally:
        conn.close()

    rng = random.Random(seed)
    if len(rows) > sample:
        rows = rng.sample(rows, sample)
    report.sampled = len(rows)

    for digest, method, value, blob in rows:
        case = f"cache:{digest[:12]}"
        if not blob:
            report.skipped += 1  # pre-payload entry: nothing to reconstruct
            continue
        payload = json.loads(blob)
        if payload_digest(payload) != digest:
            report.findings.append(
                Finding(
                    case=case,
                    check="cache-digest",
                    detail="stored payload does not hash to the row digest "
                    f"(method={method})",
                )
            )
            continue
        problem = problem_from_payload(payload)
        engine = _cross_engine(str(method), problem)
        if engine is None:
            report.skipped += 1
            continue
        recomputed = run_engine(engine, problem)
        report.audited += 1
        if not _agree(recomputed, float(value), tol):
            report.findings.append(
                Finding(
                    case=case,
                    check="cache-audit",
                    detail=f"cached {method}={value!r} vs fresh "
                    f"{engine}={recomputed!r}",
                    value=float(value),
                    reference=recomputed,
                )
            )
    return report
