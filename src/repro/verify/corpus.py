"""Seed corpus for differential verification.

Hand-built bridge and series-parallel graphs whose failure probabilities
have textbook closed forms, the paper's Example 1, and the EPS case-study
sinks (the Table I template in its fully connected configuration). The
closed-form cases pin the engines to independently derived numbers; the
EPS cases exercise the engines on the very graphs the synthesis loop
analyzes. The same corpus seeds the fuzzing harness's regression suite
and the cross-engine agreement tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import networkx as nx

from ..arch import Architecture
from ..eps import paper_template
from ..reliability import ReliabilityProblem, problem_from_architecture

__all__ = ["VerifyCase", "closed_form_cases", "eps_cases", "corpus_cases"]


@dataclass
class VerifyCase:
    """One named verification input, optionally with a closed-form answer."""

    name: str
    problem: ReliabilityProblem
    expected: Optional[float] = None
    origin: str = "corpus"


def _graph(nodes, edges) -> nx.DiGraph:
    g = nx.DiGraph()
    for name, p in nodes:
        g.add_node(name, p=p)
    g.add_edges_from(edges)
    return g


def series_case(p: float = 0.05, n: int = 3) -> VerifyCase:
    """S -> m1 -> ... -> T chain: r = 1 - (1-p)^(n+2)."""
    names = ["S"] + [f"m{i}" for i in range(n)] + ["T"]
    g = _graph([(name, p) for name in names], zip(names, names[1:]))
    return VerifyCase(
        name=f"series-{n}@{p:g}",
        problem=ReliabilityProblem(g, ("S",), "T"),
        expected=1.0 - (1.0 - p) ** (n + 2),
    )


def parallel_case(p: float = 0.1, k: int = 3) -> VerifyCase:
    """k disjoint S_i -> m_i -> T branches: r = p + (1-p) * branch_fail^k."""
    nodes = [("T", p)]
    edges = []
    sources = []
    for i in range(k):
        nodes += [(f"S{i}", p), (f"m{i}", p)]
        edges += [(f"S{i}", f"m{i}"), (f"m{i}", "T")]
        sources.append(f"S{i}")
    branch_fail = 1.0 - (1.0 - p) ** 2
    return VerifyCase(
        name=f"parallel-{k}@{p:g}",
        problem=ReliabilityProblem(_graph(nodes, edges), tuple(sources), "T"),
        expected=p + (1.0 - p) * branch_fail**k,
    )


def example1_case(p: float = 2e-4) -> VerifyCase:
    """Fig. 1b: r_L = p + (1-p) * {p + (1-p)[p + (1-p)p]}^2."""
    nodes = [(n, p) for n in ("G1", "G2", "B1", "B2", "D1", "D2", "L")]
    edges = [
        ("G1", "B1"), ("B1", "D1"), ("D1", "L"),
        ("G2", "B2"), ("B2", "D2"), ("D2", "L"),
    ]
    inner = p + (1 - p) * (p + (1 - p) * p)
    return VerifyCase(
        name=f"example1@{p:g}",
        problem=ReliabilityProblem(_graph(nodes, edges), ("G1", "G2"), "L"),
        expected=p + (1 - p) * inner**2,
    )


def bridge_case(p_arm: float = 0.1, p_tie: float = 0.2) -> VerifyCase:
    """The classic 5-component bridge, arms e1..e4 and cross-tie e5.

    Perfect terminals/junctions carry the failing components::

        S -> e1 -> J1 -> e3 -> T
        S -> e2 -> J2 -> e4 -> T      with  J1 <-e5-> J2

    Conditioning on the tie: r = 1 - [q5 * R_merged + (1-q5) * R_split].
    """
    nodes = [("S", 0.0), ("J1", 0.0), ("J2", 0.0), ("T", 0.0)]
    nodes += [(f"e{i}", p_arm) for i in (1, 2, 3, 4)]
    nodes += [("e5", p_tie)]
    edges = [
        ("S", "e1"), ("e1", "J1"), ("J1", "e3"), ("e3", "T"),
        ("S", "e2"), ("e2", "J2"), ("J2", "e4"), ("e4", "T"),
        ("J1", "e5"), ("e5", "J2"), ("J2", "e5"), ("e5", "J1"),
    ]
    q = 1.0 - p_arm
    q5 = 1.0 - p_tie
    r_merged = (1.0 - p_arm**2) * (1.0 - p_arm**2)
    r_split = 1.0 - (1.0 - q * q) ** 2
    reliability = q5 * r_merged + (1.0 - q5) * r_split
    return VerifyCase(
        name=f"bridge@{p_arm:g}/{p_tie:g}",
        problem=ReliabilityProblem(_graph(nodes, edges), ("S",), "T"),
        expected=1.0 - reliability,
    )


def series_parallel_case(p: float = 0.15) -> VerifyCase:
    """Two 2-in-series branches in parallel between S and T (all share p).

    r = 1 - (1-p)^2 * [1 - (1 - (1-p)^2)^2].
    """
    nodes = [(n, p) for n in ("S", "a1", "a2", "b1", "b2", "T")]
    edges = [
        ("S", "a1"), ("a1", "a2"), ("a2", "T"),
        ("S", "b1"), ("b1", "b2"), ("b2", "T"),
    ]
    q = 1.0 - p
    reliability = q * q * (1.0 - (1.0 - q * q) ** 2)
    return VerifyCase(
        name=f"series-parallel@{p:g}",
        problem=ReliabilityProblem(_graph(nodes, edges), ("S",), "T"),
        expected=1.0 - reliability,
    )


def closed_form_cases() -> List[VerifyCase]:
    """Hand-built graphs with independently derived answers."""
    return [
        series_case(p=0.05, n=3),
        series_case(p=2e-4, n=2),
        parallel_case(p=0.1, k=3),
        parallel_case(p=2e-4, k=2),
        example1_case(),
        bridge_case(),
        bridge_case(p_arm=0.3, p_tie=0.3),  # uniform p: polynomial applies
        series_parallel_case(),
    ]


def eps_cases() -> List[VerifyCase]:
    """The EPS case-study sinks on the paper's fully connected template."""
    template = paper_template()
    arch = Architecture(template, template.allowed_edges)
    cases = []
    for sink in arch.sink_names():
        cases.append(
            VerifyCase(
                name=f"eps-full/{sink}",
                problem=problem_from_architecture(arch, sink),
                origin="eps",
            )
        )
    return cases


def corpus_cases(include_eps: bool = True) -> List[VerifyCase]:
    cases = closed_form_cases()
    if include_eps:
        cases.extend(eps_cases())
    return cases
