"""`verify` jobs for the exploration engine.

Each verification case becomes one :class:`repro.engine.Job` of kind
``"verify"``, so ``repro verify`` fans the corpus and the fuzz cases out
over the same process pool (and telemetry stream) as every other batch.
Problems travel through the pool as their JSON dict form
(:func:`repro.verify.fuzz.problem_to_dict`) and results come back as
plain dicts, so the payloads pickle trivially and land readably in the
telemetry JSONL.

Importing this module registers the runner; pool workers resolve it via
the executor's kind-plugin table (``"verify" -> repro.verify``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from ..engine import BatchSpec, Job, register_runner
from .corpus import VerifyCase
from .differential import verify_problem
from .fuzz import problem_from_dict, problem_to_dict

__all__ = ["verification_batch", "result_to_dict"]


def verification_batch(
    cases: Sequence[VerifyCase],
    tol: float = 1e-9,
    mc_samples: int = 20_000,
    seed: int = 0,
    metamorphic: bool = True,
) -> BatchSpec:
    """One ``verify`` job per case, ready for :func:`repro.engine.run_batch`."""
    jobs = []
    for i, case in enumerate(cases):
        jobs.append(
            Job(
                job_id=f"verify-{i:04d}",
                kind="verify",
                payload={
                    "case": case.name,
                    "problem": problem_to_dict(case.problem),
                    "expected": case.expected,
                    "tol": tol,
                    "mc_samples": mc_samples,
                    "seed": seed,
                    "metamorphic": metamorphic,
                },
                meta={"case": case.name, "origin": case.origin},
            )
        )
    return BatchSpec(
        name="verify",
        jobs=jobs,
        meta={"cases": len(jobs), "tol": tol, "mc_samples": mc_samples},
    )


def result_to_dict(result) -> Dict[str, Any]:
    """Flatten a :class:`VerificationResult` to a picklable/JSON-able dict."""
    return {
        "case": result.case,
        "ok": result.ok,
        "engines": dict(result.engines),
        "skipped": dict(result.skipped),
        "checks_run": result.checks_run,
        "mc_estimate": result.mc_estimate,
        "findings": [f.as_dict() for f in result.findings],
    }


def _run_verify(job: Job) -> Dict[str, Any]:
    payload = job.payload
    result = verify_problem(
        problem_from_dict(payload["problem"]),
        case=payload["case"],
        tol=payload.get("tol", 1e-9),
        mc_samples=payload.get("mc_samples", 20_000),
        seed=payload.get("seed", 0),
        expected=payload.get("expected"),
        metamorphic=payload.get("metamorphic", True),
    )
    return result_to_dict(result)


register_runner("verify", _run_verify)


def batch_findings(results) -> List[Dict[str, Any]]:
    """Collect every finding dict out of a batch's :class:`JobResult` list."""
    findings: List[Dict[str, Any]] = []
    for result in results:
        if result.ok and isinstance(result.value, dict):
            findings.extend(result.value.get("findings", []))
    return findings
