"""Plain-text table/figure rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables report; this module
keeps the formatting in one place so `pytest benchmarks/ --benchmark-only`
output is directly comparable with Tables II/III and Figs. 2/3. All
renderers draw through the shared ASCII table helper in
:mod:`repro.tables` (re-exported here for backward compatibility).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from .tables import format_scientific, format_table, section

__all__ = [
    "format_table",
    "format_scientific",
    "render_batch_summary",
    "render_bench_comparison",
    "render_metrics",
    "render_profile",
    "render_runs_table",
    "render_search_tree",
    "render_verification_table",
    "render_worker_metrics",
    "section",
]


def render_runs_table(manifests: Iterable[dict]) -> str:
    """Render run-store manifests (``repro runs ls``) as a table.

    One row per run, the shape :meth:`repro.service.RunRecord.as_dict`
    produces; ``progress`` collapses to ``done/total`` (with ``+N skip``
    when a resume replayed journaled results).
    """
    rows = []
    for m in manifests:
        progress = m.get("progress") or {}
        total = progress.get("total")
        cell = f"{progress.get('done', 0)}/{total if total is not None else '?'}"
        if progress.get("failed"):
            cell += f" ({progress['failed']} failed)"
        if progress.get("skipped"):
            cell += f" +{progress['skipped']} skip"
        started = m.get("started_at")
        finished = m.get("finished_at")
        wall = (
            f"{finished - started:.1f}"
            if isinstance(started, (int, float))
            and isinstance(finished, (int, float))
            else "-"
        )
        rows.append(
            (
                m.get("run_id", "?"),
                m.get("kind", "?"),
                m.get("state", "?"),
                cell,
                m.get("attempt", 0),
                wall,
                (m.get("spec_digest") or "?")[:12],
            )
        )
    if not rows:
        return "(no runs)"
    return format_table(
        ["run", "kind", "state", "progress", "attempt", "wall (s)",
         "spec digest"],
        rows,
    )


def render_batch_summary(summaries: Iterable[dict]) -> str:
    """Render :func:`repro.engine.summarize_telemetry` roll-ups as a table.

    One row per batch recorded in a telemetry stream — successive rows of
    the same sweep make the cold-versus-warm-cache comparison (wall time
    down, hits up) directly readable. A batch that never reached its
    ``batch_end`` event (crash, kill) is marked with a trailing ``*`` on
    its wall time — the value is then the first-to-last event gap, a
    lower bound.
    """
    rows = []
    for s in summaries:
        lookups = (s.get("cache_hits") or 0) + (s.get("cache_misses") or 0)
        hit_rate = f"{100.0 * s['cache_hits'] / lookups:.0f}%" if lookups else "-"
        wall = s.get("wall_time")
        wall_cell = "-" if wall is None else f"{wall:.2f}"
        if s.get("incomplete"):
            wall_cell += "*"
        rows.append(
            (
                s.get("name") or s.get("batch", "?"),
                s.get("jobs", 0),
                s.get("ok", s.get("jobs", 0)),
                s.get("failed", 0),
                s.get("retries", 0),
                wall_cell,
                s.get("cache_hits", 0),
                s.get("cache_misses", 0),
                hit_rate,
            )
        )
    return format_table(
        ["batch", "jobs", "ok", "failed", "retries", "wall (s)",
         "cache hits", "misses", "hit rate"],
        rows,
    )


def render_verification_table(findings: Iterable[dict]) -> str:
    """Render ``repro verify`` disagreements, one row per finding.

    Accepts the dict form of :class:`repro.verify.Finding` (the shape the
    verify jobs stream back). Statistical findings — Monte-Carlo interval
    misses — are marked so they read differently from exactly confirmed
    engine disagreements.
    """
    rows = []
    for f in findings:
        value = f.get("value")
        reference = f.get("reference")
        delta = (
            abs(value - reference)
            if value is not None and reference is not None
            else None
        )
        rows.append(
            (
                f.get("case", "?"),
                f.get("check", "?"),
                format_scientific(value, 6) if value is not None else "-",
                format_scientific(reference, 6) if reference is not None else "-",
                format_scientific(delta) if delta is not None else "-",
                "statistical" if f.get("statistical") else "confirmed",
                f.get("detail", ""),
            )
        )
    return format_table(
        ["case", "check", "value", "reference", "|delta|", "kind", "detail"],
        rows,
    )


def render_profile(
    spans_or_roots: Union[Iterable, List],
    limit: Optional[int] = None,
) -> str:
    """ASCII profile tree of a finished trace.

    Accepts either a list of :class:`repro.obs.Span` (e.g.
    ``tracer.spans``) or prebuilt :class:`repro.obs.ProfileNode` roots.
    One row per distinct span path — call count, cumulative and self
    seconds, and the share of the trace's total — with children indented
    beneath their parent, hottest first. ``limit`` truncates to the
    first N rows of the (already hot-path-sorted) tree walk.
    """
    from .obs.profile import ProfileNode, build_profile, flatten_profile

    items = list(spans_or_roots)
    if items and not isinstance(items[0], ProfileNode):
        roots = build_profile(items)
    else:
        roots = items
    nodes = flatten_profile(roots)
    total = sum(r.cum for r in roots) or 1.0
    if limit is not None:
        nodes = nodes[:limit]
    rows = []
    for node in nodes:
        depth = node.path.count("/")
        rows.append(
            (
                "  " * depth + node.name,
                node.count,
                f"{node.cum:.4f}",
                f"{node.self_time:.4f}",
                f"{100.0 * node.cum / total:.1f}%",
            )
        )
    return format_table(["span", "calls", "cum (s)", "self (s)", "% total"], rows)


def render_bench_comparison(verdicts: Iterable[dict]) -> str:
    """Render :func:`repro.bench.compare_history` verdicts as a table.

    One row per tracked metric: current value versus the robust baseline
    (median of the history series, MAD as the noise scale) and the
    sentinel's verdict. Regressions are shouted in caps so they stand
    out in CI logs.
    """
    rows = []
    for v in verdicts:
        med = v.get("median")
        ratio = v.get("ratio")
        status = v.get("status", "?")
        rows.append(
            (
                v.get("metric", "?"),
                f"{v['current']:.4g}",
                f"{med:.4g}" if med is not None else "-",
                f"{v['mad']:.2g}" if v.get("mad") is not None else "-",
                f"{ratio:.2f}x" if ratio is not None else "-",
                v.get("runs", 0),
                status.upper() if status == "regression" else status,
            )
        )
    return format_table(
        ["metric", "current", "median", "mad", "ratio", "runs", "verdict"],
        rows,
    )


def render_search_tree(events: Iterable[dict]) -> str:
    """Render B&B search-tree events (``repro tree``) per solve.

    Accepts the ``bnb_event`` records of a telemetry stream (or raw
    :class:`repro.ilp.SearchEventEmitter` events) and rolls them up by
    ``solve`` id: nodes opened/branched, prunes split by reason, the
    incumbent trail, and the closing summary's true totals — ``sampled``
    counts node-level events the emitter's rate limiter suppressed, so
    the rendered counts are of *streamed* events while ``nodes`` is the
    solver's own total. Incumbent improvements are listed under the
    table: they are rare and are the story of the search.
    """
    solves: dict = {}
    for e in events:
        solve = e.get("solve", "?")
        agg = solves.setdefault(solve, {
            "open": 0, "branch": 0, "prunes": {}, "depth": 0,
            "incumbents": [], "summary": {},
        })
        kind = e.get("kind")
        depth = e.get("depth")
        if isinstance(depth, (int, float)):
            agg["depth"] = max(agg["depth"], int(depth))
        if kind in ("open", "branch"):
            agg[kind] += 1
        elif kind == "prune":
            reason = e.get("reason", "?")
            agg["prunes"][reason] = agg["prunes"].get(reason, 0) + 1
        elif kind == "incumbent":
            agg["incumbents"].append(e)
        elif kind == "summary":
            agg["summary"] = e
    if not solves:
        return "(no search events)"
    rows = []
    for solve in sorted(solves, key=str):
        agg = solves[solve]
        summary = agg["summary"]
        prunes = agg["prunes"]
        prune_cell = ", ".join(
            f"{reason}={count}" for reason, count in sorted(prunes.items())
        ) or "-"
        objective = summary.get("objective")
        rows.append((
            solve,
            summary.get("nodes", agg["open"]),
            agg["open"],
            agg["branch"],
            prune_cell,
            len(agg["incumbents"]),
            agg["depth"],
            f"{objective:.6g}" if isinstance(objective, (int, float)) else "-",
            f"{summary['wall_time']:.3f}"
            if isinstance(summary.get("wall_time"), (int, float)) else "-",
            summary.get("suppressed", 0),
        ))
    out = [format_table(
        ["solve", "nodes", "opened", "branched", "pruned", "incumbents",
         "max depth", "objective", "wall (s)", "sampled"],
        rows,
    )]
    trail = [
        (solve, e.get("node", "?"), e.get("depth", "?"),
         f"{e['objective']:.6g}"
         if isinstance(e.get("objective"), (int, float)) else "-")
        for solve in sorted(solves, key=str)
        for e in solves[solve]["incumbents"]
    ]
    if trail:
        out.append("")
        out.append(section("incumbent trail"))
        out.append(format_table(["solve", "node", "depth", "objective"], trail))
    return "\n".join(out)


def render_worker_metrics(document: dict) -> str:
    """Render a run's ``worker_metrics.json`` as a per-worker table.

    One row per worker pid (``coordinator`` for in-process execution):
    jobs completed, cumulative job seconds, B&B nodes, and reliability
    cache traffic — the columns that answer "which worker was slow and
    why" from the evidence pack alone.
    """
    workers = document.get("workers") or {}
    if not workers:
        return "(no worker metrics)"

    def _value(snap: dict, name: str):
        data = snap.get(name) or {}
        if data.get("kind") == "histogram":
            return data.get("sum")
        return data.get("value")

    rows = []
    for pid in sorted(workers, key=str):
        snap = workers[pid] or {}
        seconds = _value(snap, "engine.job.seconds")
        rows.append((
            pid,
            _value(snap, "engine.jobs.completed") or 0,
            f"{seconds:.3f}" if isinstance(seconds, (int, float)) else "-",
            _value(snap, "ilp.bnb.nodes") or 0,
            _value(snap, "reliability.cache.hits") or 0,
            _value(snap, "reliability.cache.misses") or 0,
            len(snap),
        ))
    return format_table(
        ["worker", "jobs", "job secs", "bnb nodes", "cache hits",
         "misses", "instruments"],
        rows,
    )


def render_metrics(snapshot: dict) -> str:
    """Render a :func:`repro.obs.snapshot` metrics dump as a table.

    Counters and gauges print their value; histograms print
    ``count / mean / min / max`` plus estimated p50/p95/p99 columns
    (bucket interpolation — :meth:`repro.obs.Histogram.quantile`).
    """
    from .obs.metrics import quantile_from_snapshot

    rows = []
    for name, data in sorted(snapshot.items()):
        kind = data.get("kind", "?")
        quantiles = ["-", "-", "-"]
        if kind == "histogram":
            value = (
                f"n={data['count']} mean={data['mean']:.4g}"
                + (
                    f" min={data['min']:.4g} max={data['max']:.4g}"
                    if data.get("min") is not None
                    else ""
                )
            )
            quantiles = [
                f"{q:.4g}" if q is not None else "-"
                for q in (
                    quantile_from_snapshot(data, 0.50),
                    quantile_from_snapshot(data, 0.95),
                    quantile_from_snapshot(data, 0.99),
                )
            ]
        else:
            value = f"{data.get('value')}"
        rows.append((name, kind, value, *quantiles))
    return format_table(["metric", "kind", "value", "p50", "p95", "p99"],
                        rows)
