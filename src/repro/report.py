"""Plain-text table/figure rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables report; this module
keeps the formatting in one place so `pytest benchmarks/ --benchmark-only`
output is directly comparable with Tables II/III and Figs. 2/3.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "format_table",
    "format_scientific",
    "render_batch_summary",
    "render_verification_table",
    "section",
]


def format_scientific(value: float | None, digits: int = 2) -> str:
    """Compact scientific notation, ``n/a`` for missing values."""
    if value is None:
        return "n/a"
    return f"{value:.{digits}e}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_batch_summary(summaries: Iterable[dict]) -> str:
    """Render :func:`repro.engine.summarize_telemetry` roll-ups as a table.

    One row per batch recorded in a telemetry stream — successive rows of
    the same sweep make the cold-versus-warm-cache comparison (wall time
    down, hits up) directly readable.
    """
    rows = []
    for s in summaries:
        lookups = (s.get("cache_hits") or 0) + (s.get("cache_misses") or 0)
        hit_rate = f"{100.0 * s['cache_hits'] / lookups:.0f}%" if lookups else "-"
        wall = s.get("wall_time")
        rows.append(
            (
                s.get("name") or s.get("batch", "?"),
                s.get("jobs", 0),
                s.get("ok", s.get("jobs", 0)),
                s.get("failed", 0),
                s.get("retries", 0),
                "-" if wall is None else f"{wall:.2f}",
                s.get("cache_hits", 0),
                s.get("cache_misses", 0),
                hit_rate,
            )
        )
    return format_table(
        ["batch", "jobs", "ok", "failed", "retries", "wall (s)",
         "cache hits", "misses", "hit rate"],
        rows,
    )


def render_verification_table(findings: Iterable[dict]) -> str:
    """Render ``repro verify`` disagreements, one row per finding.

    Accepts the dict form of :class:`repro.verify.Finding` (the shape the
    verify jobs stream back). Statistical findings — Monte-Carlo interval
    misses — are marked so they read differently from exactly confirmed
    engine disagreements.
    """
    rows = []
    for f in findings:
        value = f.get("value")
        reference = f.get("reference")
        delta = (
            abs(value - reference)
            if value is not None and reference is not None
            else None
        )
        rows.append(
            (
                f.get("case", "?"),
                f.get("check", "?"),
                format_scientific(value, 6) if value is not None else "-",
                format_scientific(reference, 6) if reference is not None else "-",
                format_scientific(delta) if delta is not None else "-",
                "statistical" if f.get("statistical") else "confirmed",
                f.get("detail", ""),
            )
        )
    return format_table(
        ["case", "check", "value", "reference", "|delta|", "kind", "detail"],
        rows,
    )


def section(title: str) -> str:
    """A titled separator for benchmark console output."""
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}"
