"""Reproducible ILP benchmark suite — the numbers behind ``BENCH_ilp.json``.

Three families of rows, all measured in one process so warm and cold arms
see identical code and inputs:

``ilp_mr``
    Table II learncons instances run end-to-end twice: ``warm=True``
    (incremental export + dual-simplex reseeding + incumbent seeding) and
    ``warm=False`` (the original re-encode-and-cold-start behavior). The
    row records both wall times, the speedup, both optimal costs, and the
    warm arm's branch-and-bound counters (nodes, LP iterations, warm-start
    hit rate) taken from the :mod:`repro.obs` metrics registry.

``lp_scaling``
    Synthetic set-cover 0-1 ILPs of growing size solved cold by both
    backends — the data that calibrates :class:`repro.ilp.solver.AutoTuning`.

``warm_lp``
    A single LP re-solve after tightening one variable bound: cold
    iterations versus dual-simplex pivots from the carried basis. This is
    the per-node saving branch-and-bound compounds.

``cache_contention``
    Aggregate write throughput into the reliability cache's persistent
    tier: a single writer committing per put into one SQLite file (the
    pre-sharding baseline) versus N concurrent writers pushing the same
    total through the sharded backend's batched write-back. The speedup
    is the scaling claim behind ``--cache-backend sharded``.

``queue_throughput``
    A batch of no-op jobs pushed through ``executor="queue"`` (the
    file-backed work queue with local worker processes): jobs/second
    including lease, heartbeat, and result fan-in overhead.

``sharded_sweep``
    The equivalence guarantee under load: a reliability sweep run twice —
    serially against a SQLite cache and through the work queue with
    concurrent workers against a sharded cache — recording both walls and
    whether every value came back bit-identical.

Run via ``repro bench`` or ``benchmarks/bench_suite.py``; validate a
produced document with :func:`validate_bench_document` (CI does).

The suite also doubles as a **regression sentinel**: each run can append
a compact record to a ``BENCH_history.jsonl`` time series
(:func:`append_history`) and be compared against the committed history
with robust statistics (:func:`compare_history` — median + MAD, so one
noisy CI run cannot poison the baseline). ``archex bench --compare``
exits nonzero on a slowdown beyond the threshold, turning the 7–48x
warm-start wins into a guarded property instead of a one-shot artifact.
"""

from __future__ import annotations

import json
import platform
import statistics
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from . import obs
from .eps import build_eps_template, eps_spec
from .ilp import BnBOptions, Model, lin_sum
from .ilp.branch_and_bound import solve_milp
from .ilp.scipy_backend import scipy_milp_available, solve_with_scipy
from .ilp.simplex import solve_lp
from .synthesis import synthesize_ilp_mr

__all__ = [
    "BENCH_SCHEMA",
    "HISTORY_SCHEMA",
    "run_bench",
    "validate_bench_document",
    "PROFILES",
    "history_entry",
    "append_history",
    "read_history",
    "compare_history",
]

BENCH_SCHEMA = "repro.bench/ilp/v1"
HISTORY_SCHEMA = "repro.bench/history/v1"

#: (num_generators, reliability_target) per profile for the ILP-MR rows
#: solved with the from-scratch backend. Small targets multiply learncons
#: iterations; the cold arm re-solves everything from scratch, so sizes are
#: chosen to keep the *cold* baseline tractable.
PROFILES: Dict[str, Dict[str, list]] = {
    "smoke": {
        "ilp_mr_bnb": [(2, 1e-3)],
        "ilp_mr_scipy": [(4, 1e-4)],
        "lp_scaling": [(40, 60)],
        "warm_lp": [2],
        "cache_contention": [(4, 150)],
        "queue_throughput": [(12, 2)],
        "sharded_sweep": [(24, 2)],
    },
    "full": {
        "ilp_mr_bnb": [(2, 1e-3), (2, 5e-4)],
        "ilp_mr_scipy": [(4, 1e-4), (6, 1e-4)],
        "lp_scaling": [(40, 60), (80, 120), (120, 200)],
        "warm_lp": [2, 4],
        "cache_contention": [(8, 400)],
        "queue_throughput": [(48, 4)],
        "sharded_sweep": [(200, 8)],
    },
}

_COUNTER_KEYS = (
    "ilp.bnb.nodes",
    "ilp.bnb.lp_iterations",
    "ilp.bnb.warm_lp_solves",
    "ilp.bnb.cold_lp_solves",
    "ilp.simplex.solves",
    "ilp.simplex.warm_starts",
    "ilp.simplex.phase1_skips",
    "ilp.simplex.refactorizations",
    "ilp.simplex.dual_pivots",
)


def _counter_values() -> Dict[str, int]:
    snap = obs.snapshot()
    return {
        k: snap[k]["value"] for k in _COUNTER_KEYS
        if k in snap and snap[k]["kind"] == "counter"
    }


def _counters_since(before: Dict[str, int]) -> Dict[str, int]:
    after = _counter_values()
    return {k: after.get(k, 0) - before.get(k, 0) for k in _COUNTER_KEYS}


def _measure_ilp_mr(gens: int, target: float, backend: str, warm: bool) -> dict:
    spec = eps_spec(
        build_eps_template(num_generators=gens), reliability_target=target
    )
    before = _counter_values()
    start = time.perf_counter()
    result = synthesize_ilp_mr(spec, backend=backend, warm=warm)
    wall = time.perf_counter() - start
    counters = _counters_since(before)
    solves = counters["ilp.bnb.warm_lp_solves"] + counters["ilp.bnb.cold_lp_solves"]
    return {
        "wall_seconds": wall,
        "status": result.status,
        "cost": result.cost,
        "iterations": len(result.iterations),
        "solver_seconds": result.solver_time,
        "analysis_seconds": result.analysis_time,
        "bnb_nodes": counters["ilp.bnb.nodes"],
        "lp_iterations": counters["ilp.bnb.lp_iterations"],
        "warm_lp_solves": counters["ilp.bnb.warm_lp_solves"],
        "cold_lp_solves": counters["ilp.bnb.cold_lp_solves"],
        "phase1_skips": counters["ilp.simplex.phase1_skips"],
        "refactorizations": counters["ilp.simplex.refactorizations"],
        "warm_hit_rate": (
            counters["ilp.bnb.warm_lp_solves"] / solves if solves else 0.0
        ),
    }


def _ilp_mr_row(gens: int, target: float, backend: str) -> dict:
    cold = _measure_ilp_mr(gens, target, backend, warm=False)
    warm = _measure_ilp_mr(gens, target, backend, warm=True)
    return {
        "kind": "ilp_mr",
        "instance": f"eps-g{gens}",
        "num_nodes": 10 * gens,
        "reliability_target": target,
        "backend": backend,
        "cold": cold,
        "warm": warm,
        "speedup": (
            cold["wall_seconds"] / warm["wall_seconds"]
            if warm["wall_seconds"] > 0 else float("inf")
        ),
        "costs_identical": cold["cost"] == warm["cost"],
    }


def _make_cover(n_vars: int, n_rows: int, seed: int) -> Model:
    """Random set-cover-shaped 0-1 ILP (the scaling-sweep workload)."""
    rng = np.random.default_rng(seed)
    m = Model(f"cover{n_vars}x{n_rows}")
    xs = [m.add_binary(f"x{i}") for i in range(n_vars)]
    cost = rng.integers(1, 20, n_vars)
    for _ in range(n_rows):
        picks = rng.choice(n_vars, size=max(2, n_vars // 8), replace=False)
        m.add_constr(lin_sum([xs[i] for i in picks]) >= 2)
    m.minimize(lin_sum([int(c) * x for c, x in zip(cost, xs)]))
    return m


def _lp_scaling_row(n_vars: int, n_rows: int) -> dict:
    form = _make_cover(n_vars, n_rows, seed=n_vars).to_matrix_form()
    start = time.perf_counter()
    bnb = solve_milp(form, BnBOptions())
    bnb_seconds = time.perf_counter() - start
    row = {
        "kind": "lp_scaling",
        "instance": f"cover-{n_vars}x{n_rows}",
        "num_vars": n_vars,
        "num_constrs": n_rows,
        "bnb_seconds": bnb_seconds,
        "bnb_status": bnb.status,
        "bnb_nodes": bnb.stats.nodes,
        "bnb_lp_iterations": bnb.stats.lp_iterations,
        "bnb_objective": bnb.objective,
    }
    if scipy_milp_available():
        start = time.perf_counter()
        ref = solve_with_scipy(form)
        row["scipy_seconds"] = time.perf_counter() - start
        row["scipy_objective"] = ref.objective
        row["objectives_agree"] = abs(bnb.objective - ref.objective) <= 1e-6
    return row


def _warm_lp_row(gens: int) -> dict:
    """Bound-tightening re-solve: the per-node saving inside B&B."""
    spec = eps_spec(
        build_eps_template(num_generators=gens), reliability_target=1e-4
    )
    form = spec.build_encoder().model.to_matrix_form()
    a = form.dense_A()
    start = time.perf_counter()
    base = solve_lp(
        form.c, a, form.senses, form.b, form.lb, form.ub, want_basis=True
    )
    cold_first = time.perf_counter() - start

    # Tighten one fractional binary to 0 — a typical down-branch.
    lb, ub = form.lb.copy(), form.ub.copy()
    frac = [
        j for j in range(form.num_vars)
        if form.integrality[j] and abs(base.x[j] - round(base.x[j])) > 1e-6
    ]
    j = frac[0] if frac else int(np.argmax(form.integrality))
    ub[j] = 0.0

    start = time.perf_counter()
    cold = solve_lp(form.c, a, form.senses, form.b, lb, ub)
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = solve_lp(
        form.c, a, form.senses, form.b, lb, ub, warm_basis=base.basis
    )
    warm_seconds = time.perf_counter() - start
    return {
        "kind": "warm_lp",
        "instance": f"eps-g{gens}-relaxation",
        "num_vars": form.num_vars,
        "num_constrs": form.num_constrs,
        "first_solve_seconds": cold_first,
        "cold_seconds": cold_seconds,
        "cold_iterations": cold.iterations,
        "warm_seconds": warm_seconds,
        "warm_iterations": warm.iterations,
        "warm_dual_pivots": warm.dual_pivots,
        "warm_started": warm.warm_started,
        "objectives_agree": (
            abs(cold.objective - warm.objective)
            <= 1e-6 * max(1.0, abs(cold.objective))
        ),
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
    }


def _hammer_backend(make_backend, threads: int, writes: int):
    """Aggregate wall time for ``threads`` writers doing ``writes`` each."""
    backend = make_backend()
    barrier = threading.Barrier(threads + 1)

    def work(t: int) -> None:
        barrier.wait()
        for i in range(writes):
            n = t * writes + i
            backend.put(f"{n:064x}", "bench", float(n))

    pool = [
        threading.Thread(target=work, args=(t,)) for t in range(threads)
    ]
    for thread in pool:
        thread.start()
    barrier.wait()  # release every writer at once
    start = time.perf_counter()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    stored = len(backend)
    backend.close()
    return elapsed, stored


def _cache_contention_row(threads: int, writes_per_thread: int) -> dict:
    """Aggregate write throughput: sharded multi-writer vs single writer.

    The baseline is the pre-sharding architecture — one writer, one
    SQLite file, one commit per ``put``. The measurement is ``threads``
    concurrent writers pushing the same total entry count through the
    sharded tier, whose per-shard write-back batching turns the dominant
    per-put commit into an amortized group commit. The speedup therefore
    holds even on a single core, where lock-spread alone could not.
    """
    from .engine.backends.sharded import ShardedBackend
    from .engine.backends.sqlite import SQLiteBackend

    total = threads * writes_per_thread
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as td:
        root = Path(td)
        base_seconds, base_stored = _hammer_backend(
            lambda: SQLiteBackend(root / "single.sqlite"), 1, total,
        )
        sh_seconds, sh_stored = _hammer_backend(
            lambda: ShardedBackend(root / "sharded", shards=64),
            threads, writes_per_thread,
        )
    base_wps = total / base_seconds if base_seconds > 0 else float("inf")
    sh_wps = total / sh_seconds if sh_seconds > 0 else float("inf")
    return {
        "kind": "cache_contention",
        "instance": f"writers-{threads}x{writes_per_thread}",
        "threads": threads,
        "writes_per_thread": writes_per_thread,
        "single_writer_seconds": base_seconds,
        "sharded_seconds": sh_seconds,
        "single_writer_per_second": base_wps,
        "sharded_writes_per_second": sh_wps,
        "speedup": sh_wps / base_wps if base_wps > 0 else float("inf"),
        "all_writes_landed": base_stored == total and sh_stored == total,
    }


def _queue_throughput_row(n_jobs: int, workers: int) -> dict:
    from .engine import BatchSpec, Job, run_batch

    batch = BatchSpec(f"bench-queue-{n_jobs}", [
        Job(job_id=f"q{i}", kind="noop", payload={"value": i})
        for i in range(n_jobs)
    ])
    start = time.perf_counter()
    outcome = run_batch(batch, jobs=workers, executor="queue")
    wall = time.perf_counter() - start
    return {
        "kind": "queue_throughput",
        "instance": f"noop-{n_jobs}x{workers}",
        "num_jobs": n_jobs,
        "workers": workers,
        "wall_seconds": wall,
        "jobs_per_second": n_jobs / wall if wall > 0 else float("inf"),
        "failed": outcome.num_failed,
    }


def _sweep_problems(n: int):
    """``n`` distinct closed-form reliability problems, all cheap."""
    from .verify.corpus import parallel_case, series_case

    cases = []
    for i in range(n):
        if i % 2 == 0:
            cases.append(series_case(p=0.01 + 3e-4 * i, n=2 + (i // 2) % 4))
        else:
            cases.append(parallel_case(p=0.02 + 3e-4 * i, k=2 + (i // 2) % 3))
    return cases


def _sharded_sweep_row(n_jobs: int, workers: int) -> dict:
    from .engine import BatchSpec, Job, run_batch

    cases = _sweep_problems(n_jobs)

    def make_batch() -> "BatchSpec":
        return BatchSpec(f"bench-sweep-{n_jobs}", [
            Job(job_id=f"s{i}", kind="reliability",
                payload={"problem": case.problem, "method": "bdd"})
            for i, case in enumerate(cases)
        ])

    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as td:
        root = Path(td)
        start = time.perf_counter()
        serial = run_batch(make_batch(), jobs=1,
                           cache_dir=str(root / "sql"),
                           cache_backend="sqlite")
        serial_wall = time.perf_counter() - start
        start = time.perf_counter()
        # retries=3: with many worker processes time-slicing few cores, a
        # transient OSError can recur within the default budget of 1 and
        # turn a benchmark row into a spurious failure.
        queued = run_batch(make_batch(), jobs=workers, executor="queue",
                           cache_dir=str(root / "shard"),
                           cache_backend="sharded", cache_shards=64,
                           retries=3)
        queue_wall = time.perf_counter() - start
    serial_values = {r.job_id: r.value for r in serial.results if r.ok}
    queued_values = {r.job_id: r.value for r in queued.results if r.ok}
    identical = (
        not serial.num_failed and not queued.num_failed
        and set(serial_values) == set(queued_values)
        and all(queued_values[k].hex() == v.hex()
                for k, v in serial_values.items())
    )
    return {
        "kind": "sharded_sweep",
        "instance": f"bdd-{n_jobs}x{workers}",
        "num_jobs": n_jobs,
        "workers": workers,
        "serial_seconds": serial_wall,
        "queue_seconds": queue_wall,
        "queue_jobs_per_second": (
            n_jobs / queue_wall if queue_wall > 0 else float("inf")
        ),
        "values_identical": identical,
        "failed": serial.num_failed + queued.num_failed,
    }


def run_bench(
    profile: str = "smoke",
    out: Optional[str] = "BENCH_ilp.json",
    backends: Sequence[str] = ("bnb", "scipy"),
    log=print,
) -> dict:
    """Run the suite and (optionally) write the JSON document to ``out``."""
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    plan = PROFILES[profile]
    # Counters only tick while a tracer is installed.
    previous_tracer = obs.get_tracer()
    obs.set_tracer(obs.Tracer())
    rows: List[dict] = []
    try:
        if "bnb" in backends:
            for gens, target in plan["ilp_mr_bnb"]:
                log(f"[bench] ilp_mr bnb eps-g{gens} target={target} ...")
                rows.append(_ilp_mr_row(gens, target, "bnb"))
        if "scipy" in backends and scipy_milp_available():
            for gens, target in plan["ilp_mr_scipy"]:
                log(f"[bench] ilp_mr scipy eps-g{gens} target={target} ...")
                rows.append(_ilp_mr_row(gens, target, "scipy"))
        for n_vars, n_rows in plan["lp_scaling"]:
            log(f"[bench] lp_scaling cover-{n_vars}x{n_rows} ...")
            rows.append(_lp_scaling_row(n_vars, n_rows))
        for gens in plan["warm_lp"]:
            log(f"[bench] warm_lp eps-g{gens} ...")
            rows.append(_warm_lp_row(gens))
        for threads, writes in plan.get("cache_contention", []):
            log(f"[bench] cache_contention writers-{threads}x{writes} ...")
            rows.append(_cache_contention_row(threads, writes))
        for n_jobs, workers in plan.get("queue_throughput", []):
            log(f"[bench] queue_throughput noop-{n_jobs}x{workers} ...")
            rows.append(_queue_throughput_row(n_jobs, workers))
        for n_jobs, workers in plan.get("sharded_sweep", []):
            log(f"[bench] sharded_sweep bdd-{n_jobs}x{workers} ...")
            rows.append(_sharded_sweep_row(n_jobs, workers))
    finally:
        obs.set_tracer(previous_tracer)

    mr_bnb = [r for r in rows if r["kind"] == "ilp_mr" and r["backend"] == "bnb"]
    doc = {
        "schema": BENCH_SCHEMA,
        "profile": profile,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "rows": rows,
        "summary": {
            "ilp_mr_min_speedup": (
                min(r["speedup"] for r in mr_bnb) if mr_bnb else None
            ),
            "ilp_mr_max_speedup": (
                max(r["speedup"] for r in mr_bnb) if mr_bnb else None
            ),
            "all_costs_identical": all(
                r["costs_identical"] for r in rows if r["kind"] == "ilp_mr"
            ),
            "all_objectives_agree": all(
                r.get("objectives_agree", True) for r in rows
            ),
            "cache_write_speedup": next(
                (r["speedup"] for r in rows
                 if r["kind"] == "cache_contention"), None
            ),
            "sweep_values_identical": all(
                r["values_identical"] for r in rows
                if r["kind"] == "sharded_sweep"
            ),
        },
    }
    if out:
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        log(f"[bench] wrote {out} ({len(rows)} rows)")
    return doc


_ROW_REQUIRED = {
    "ilp_mr": {
        "instance", "backend", "reliability_target", "cold", "warm",
        "speedup", "costs_identical",
    },
    "lp_scaling": {
        "instance", "num_vars", "num_constrs", "bnb_seconds", "bnb_status",
        "bnb_nodes", "bnb_objective",
    },
    "warm_lp": {
        "instance", "cold_seconds", "cold_iterations", "warm_seconds",
        "warm_dual_pivots", "warm_started", "objectives_agree", "speedup",
    },
    "cache_contention": {
        "instance", "threads", "writes_per_thread",
        "single_writer_per_second", "sharded_writes_per_second", "speedup",
        "all_writes_landed",
    },
    "queue_throughput": {
        "instance", "num_jobs", "workers", "wall_seconds",
        "jobs_per_second", "failed",
    },
    "sharded_sweep": {
        "instance", "num_jobs", "workers", "serial_seconds",
        "queue_seconds", "values_identical", "failed",
    },
}

_ARM_REQUIRED = {
    "wall_seconds", "status", "cost", "iterations", "bnb_nodes",
    "lp_iterations", "warm_lp_solves", "cold_lp_solves", "warm_hit_rate",
}


def validate_bench_document(doc: dict) -> List[str]:
    """Schema check for a ``BENCH_ilp.json`` document; returns problems."""
    problems: List[str] = []
    if doc.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, want {BENCH_SCHEMA!r}")
    for key in ("profile", "rows", "summary", "environment"):
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    rows = doc.get("rows", [])
    if not isinstance(rows, list) or not rows:
        problems.append("rows must be a non-empty list")
        rows = []
    for i, row in enumerate(rows):
        kind = row.get("kind")
        required = _ROW_REQUIRED.get(kind)
        if required is None:
            problems.append(f"rows[{i}]: unknown kind {kind!r}")
            continue
        missing = required - set(row)
        if missing:
            problems.append(f"rows[{i}] ({kind}): missing {sorted(missing)}")
        if kind == "ilp_mr":
            for arm in ("cold", "warm"):
                arm_missing = _ARM_REQUIRED - set(row.get(arm, {}))
                if arm_missing:
                    problems.append(
                        f"rows[{i}].{arm}: missing {sorted(arm_missing)}"
                    )
    summary = doc.get("summary", {})
    for key in ("ilp_mr_min_speedup", "all_costs_identical"):
        if key not in summary:
            problems.append(f"summary: missing {key!r}")
    return problems


# ---------------------------------------------------------------------------
# Regression sentinel: the BENCH_history.jsonl time series


def _entry_metrics(doc: dict) -> Dict[str, float]:
    """Flatten a bench document into scalar time-series metrics.

    Keys are ``kind/instance[/backend]/metric``. ``*_seconds`` metrics
    are lower-is-better; ``*/speedup`` is higher-is-better (the
    comparator keys direction off the suffix).
    """
    metrics: Dict[str, float] = {}
    for row in doc.get("rows", []):
        kind = row.get("kind")
        if kind == "ilp_mr":
            base = f"ilp_mr/{row['instance']}/{row['backend']}"
            metrics[f"{base}/warm_wall_seconds"] = row["warm"]["wall_seconds"]
            metrics[f"{base}/cold_wall_seconds"] = row["cold"]["wall_seconds"]
            metrics[f"{base}/speedup"] = row["speedup"]
        elif kind == "lp_scaling":
            base = f"lp_scaling/{row['instance']}"
            metrics[f"{base}/bnb_seconds"] = row["bnb_seconds"]
            if "scipy_seconds" in row:
                metrics[f"{base}/scipy_seconds"] = row["scipy_seconds"]
        elif kind == "warm_lp":
            base = f"warm_lp/{row['instance']}"
            metrics[f"{base}/warm_seconds"] = row["warm_seconds"]
            metrics[f"{base}/cold_seconds"] = row["cold_seconds"]
            metrics[f"{base}/speedup"] = row["speedup"]
        elif kind == "cache_contention":
            base = f"cache_contention/{row['instance']}"
            metrics[f"{base}/single_writer_per_second"] = (
                row["single_writer_per_second"]
            )
            metrics[f"{base}/sharded_writes_per_second"] = (
                row["sharded_writes_per_second"]
            )
            metrics[f"{base}/speedup"] = row["speedup"]
        elif kind == "queue_throughput":
            base = f"queue_throughput/{row['instance']}"
            metrics[f"{base}/jobs_per_second"] = row["jobs_per_second"]
        elif kind == "sharded_sweep":
            base = f"sharded_sweep/{row['instance']}"
            metrics[f"{base}/serial_seconds"] = row["serial_seconds"]
            metrics[f"{base}/queue_seconds"] = row["queue_seconds"]
            metrics[f"{base}/queue_jobs_per_second"] = (
                row["queue_jobs_per_second"]
            )
    return {k: float(v) for k, v in metrics.items() if v == v}  # drop NaN


def history_entry(doc: dict) -> dict:
    """One compact, appendable time-series record for a bench document."""
    return {
        "schema": HISTORY_SCHEMA,
        "generated_at": doc.get("generated_at"),
        "profile": doc.get("profile"),
        "environment": doc.get("environment", {}),
        "metrics": _entry_metrics(doc),
    }


def append_history(
    doc: dict, path: Union[str, Path] = "BENCH_history.jsonl"
) -> dict:
    """Append ``doc``'s :func:`history_entry` to the JSONL series."""
    entry = history_entry(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def read_history(
    path: Union[str, Path], profile: Optional[str] = None
) -> List[dict]:
    """Read the history series (optionally only one profile's entries).

    Unknown schemas and truncated lines are skipped — the sentinel must
    keep working across history format evolution.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("schema") != HISTORY_SCHEMA:
            continue
        if profile is not None and entry.get("profile") != profile:
            continue
        entries.append(entry)
    return entries


def _metric_direction(name: str) -> str:
    return (
        "higher" if name.endswith(("speedup", "per_second")) else "lower"
    )


def compare_history(
    doc: dict,
    history: Sequence[dict],
    threshold: float = 0.5,
    min_runs: int = 2,
    mad_factor: float = 4.0,
    min_seconds: float = 0.02,
) -> List[Dict[str, Any]]:
    """Robust-statistic verdicts for ``doc`` against past history entries.

    For each metric the baseline is the **median** of past values and the
    noise scale the **MAD** (median absolute deviation). A lower-is-better
    metric regresses only when the current value clears *both* gates::

        current > median * (1 + threshold)          # relative slowdown
        current > median + mad_factor * MAD         # outside normal noise

    and the absolute excess is at least ``min_seconds`` (micro-benchmarks
    jitter by milliseconds; a 60% slowdown on a 2 ms solve is not a
    finding). ``*/speedup`` metrics mirror the gates downward. Metrics
    with fewer than ``min_runs`` past samples report ``no-history`` and
    never fail the gate.

    Returns one verdict dict per metric: ``metric``, ``current``,
    ``median``, ``mad``, ``runs``, ``ratio`` (current/median) and
    ``status`` in ``{"ok", "regression", "improved", "no-history"}``.
    """
    current = _entry_metrics(doc)
    verdicts: List[Dict[str, Any]] = []
    for name in sorted(current):
        value = current[name]
        past = [
            e["metrics"][name]
            for e in history
            if isinstance(e.get("metrics"), dict) and name in e["metrics"]
        ]
        if len(past) < min_runs:
            verdicts.append({
                "metric": name, "current": value, "median": None,
                "mad": None, "runs": len(past), "ratio": None,
                "status": "no-history",
            })
            continue
        med = statistics.median(past)
        mad = statistics.median(abs(x - med) for x in past)
        ratio = value / med if med else float("inf")
        direction = _metric_direction(name)
        if direction == "lower":
            regressed = (
                value > med * (1.0 + threshold)
                and value > med + mad_factor * mad
                and value - med > min_seconds
            )
            improved = value < med * (1.0 - threshold)
        else:
            regressed = (
                value < med * (1.0 - min(threshold, 0.99))
                and value < med - mad_factor * mad
            )
            improved = value > med * (1.0 + threshold)
        status = "regression" if regressed else (
            "improved" if improved else "ok"
        )
        verdicts.append({
            "metric": name, "current": value, "median": med, "mad": mad,
            "runs": len(past), "ratio": ratio, "status": status,
        })
    return verdicts
