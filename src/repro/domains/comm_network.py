"""Communication-network templates (§VI future-work domain).

Data centers (sources) connect to gateway hosts (sinks) through two router
tiers — core and edge. The essential function is packet delivery from any
data center to each gateway; reliability is the probability that no
all-working route exists, i.e. the same functional-link failure event as
the EPS loads, with routers in place of buses/rectifiers.

Edges here can fail too (links are less reliable than routers), exercising
the edge-failure splice of
:func:`repro.reliability.graph_with_edge_failures`.
"""

from __future__ import annotations

from typing import List, Optional

from ..arch import ArchitectureTemplate, ComponentSpec, Library, Role
from ..synthesis import (
    ConnectionBound,
    IfFeedsThenFed,
    Requirement,
    RequireIncomingEdge,
    SymmetryBreaking,
    SynthesisSpec,
)

__all__ = ["build_comm_network_template", "comm_network_spec", "COMM_TYPES"]

COMM_TYPES = ["datacenter", "core_router", "edge_router", "gateway"]

_DC_FAIL = 1e-5
_CORE_FAIL = 2e-4
_EDGE_FAIL = 5e-4


def build_comm_network_template(
    num_datacenters: int = 2,
    num_core: int = 3,
    num_edge: int = 4,
    num_gateways: int = 2,
    switch_cost: float = 100.0,
    name: Optional[str] = None,
) -> ArchitectureTemplate:
    """Datacenter -> core router -> edge router -> gateway template."""
    lib = Library(switch_cost=switch_cost)
    dcs = [f"DC{i + 1}" for i in range(num_datacenters)]
    cores = [f"CR{i + 1}" for i in range(num_core)]
    edges = [f"ER{i + 1}" for i in range(num_edge)]
    gws = [f"GW{i + 1}" for i in range(num_gateways)]

    for d in dcs:
        lib.add(ComponentSpec(d, "datacenter", cost=5000.0, capacity=100.0,
                              failure_prob=_DC_FAIL, role=Role.SOURCE))
    for c in cores:
        lib.add(ComponentSpec(c, "core_router", cost=1200.0,
                              failure_prob=_CORE_FAIL))
    for e in edges:
        lib.add(ComponentSpec(e, "edge_router", cost=400.0,
                              failure_prob=_EDGE_FAIL))
    for g in gws:
        lib.add(ComponentSpec(g, "gateway", demand=10.0, role=Role.SINK))
    lib.set_type_order(COMM_TYPES)

    t = ArchitectureTemplate(lib, dcs + cores + edges + gws, name=name or "comm-net")
    t.allow_many(dcs, cores)
    t.allow_many(cores, edges)
    t.allow_many(edges, gws)
    t.declare_interchangeable(cores)
    t.declare_interchangeable(edges)
    return t


def comm_network_requirements(template: ArchitectureTemplate) -> List[Requirement]:
    dcs = [template.name_of(i) for i in template.nodes_of_type("datacenter")]
    cores = [template.name_of(i) for i in template.nodes_of_type("core_router")]
    edges = [template.name_of(i) for i in template.nodes_of_type("edge_router")]
    gws = [template.name_of(i) for i in template.nodes_of_type("gateway")]
    return [
        RequireIncomingEdge(nodes=gws, k=1),
        IfFeedsThenFed(via=edges, downstream=gws, upstream=cores),
        IfFeedsThenFed(via=cores, downstream=edges, upstream=dcs),
        # Capacity discipline: an edge router terminates at most 2 gateways.
        ConnectionBound(sources=edges, dests=gws, k=2, sense="<=", per="source"),
        SymmetryBreaking(),
    ]


def comm_network_spec(
    template: Optional[ArchitectureTemplate] = None,
    reliability_target: Optional[float] = None,
) -> SynthesisSpec:
    """Ready-to-run synthesis spec for a communication network template."""
    template = template or build_comm_network_template()
    return SynthesisSpec(
        template=template,
        requirements=comm_network_requirements(template),
        reliability_target=reliability_target,
    )
