"""Additional CPS domains demonstrating the §VI generalization: power grids
and communication networks, built on the same template/synthesis machinery
as the aircraft EPS case study.

:func:`domain_spec` is the single name -> :class:`SynthesisSpec` factory
the CLI and the service job specs share, so ``repro synthesize --domain X``
and a ``POST /api/jobs`` spec with ``"domain": "X"`` build byte-identical
problems.
"""

from typing import List, Optional, Tuple

from .comm_network import (
    COMM_TYPES,
    build_comm_network_template,
    comm_network_requirements,
    comm_network_spec,
)
from .power_grid import (
    POWER_GRID_TYPES,
    build_power_grid_template,
    power_grid_requirements,
    power_grid_spec,
)

__all__ = [
    "COMM_TYPES",
    "DOMAINS",
    "POWER_GRID_TYPES",
    "build_comm_network_template",
    "build_power_grid_template",
    "comm_network_requirements",
    "comm_network_spec",
    "domain_spec",
    "eps_scaling_specs",
    "power_grid_requirements",
    "power_grid_spec",
]

#: Domain names :func:`domain_spec` accepts.
DOMAINS = ("eps", "power-grid", "comm-net")


def domain_spec(domain: str, target: Optional[float] = None, size: int = 0):
    """Build the :class:`repro.synthesis.SynthesisSpec` for a named domain.

    ``size`` only applies to ``eps``: the generator count of the scaled
    template, with ``0`` selecting the paper's own case-study template.
    Raises :class:`ValueError` on an unknown domain name.
    """
    from ..eps import build_eps_template, eps_requirements, paper_template
    from ..synthesis import SynthesisSpec

    if domain == "eps":
        template = paper_template() if size == 0 else build_eps_template(size)
        requirements = eps_requirements(template)
    elif domain == "power-grid":
        template = build_power_grid_template()
        requirements = power_grid_requirements(template)
    elif domain == "comm-net":
        template = build_comm_network_template()
        requirements = comm_network_requirements(template)
    else:
        raise ValueError(f"unknown domain {domain!r} (use one of {DOMAINS})")
    return SynthesisSpec(
        template=template, requirements=requirements,
        reliability_target=target,
    )


def eps_scaling_specs(
    sizes: List[int], target: Optional[float] = None
) -> List[Tuple[str, object]]:
    """``(label, spec)`` pairs for a Table II style EPS scaling sweep.

    ``sizes`` are node counts ``|V|``; each maps to ``|V| // 5``
    generators like the paper's scaled templates.
    """
    from ..eps import build_eps_template, eps_requirements
    from ..synthesis import SynthesisSpec

    labeled = []
    for size_nodes in sizes:
        gens = size_nodes // 5
        template = build_eps_template(num_generators=gens)
        spec = SynthesisSpec(
            template=template,
            requirements=eps_requirements(template),
            reliability_target=target,
        )
        labeled.append((f"{size_nodes} ({gens})", spec))
    return labeled
