"""Additional CPS domains demonstrating the §VI generalization: power grids
and communication networks, built on the same template/synthesis machinery
as the aircraft EPS case study."""

from .comm_network import (
    COMM_TYPES,
    build_comm_network_template,
    comm_network_requirements,
    comm_network_spec,
)
from .power_grid import (
    POWER_GRID_TYPES,
    build_power_grid_template,
    power_grid_requirements,
    power_grid_spec,
)

__all__ = [
    "COMM_TYPES",
    "POWER_GRID_TYPES",
    "build_comm_network_template",
    "build_power_grid_template",
    "comm_network_requirements",
    "comm_network_spec",
    "power_grid_requirements",
    "power_grid_spec",
]
