"""Terrestrial power-distribution templates (§VI future-work domain).

A substation-feeder-customer structure analogous to the aircraft EPS but
with three layers: generation plants feed substations over transmission
links; substations feed critical customer sites over distribution feeders.
Redundancy comes from multiple plants, substation bus ties and dual
feeders — the same functional-link reliability question as §V, so both
ILP-MR and ILP-AR apply unchanged.
"""

from __future__ import annotations

from itertools import cycle
from typing import List, Optional

from ..arch import ArchitectureTemplate, ComponentSpec, Library, Role
from ..synthesis import (
    GlobalPowerAdequacy,
    IfFeedsThenFed,
    Requirement,
    RequireIncomingEdge,
    SymmetryBreaking,
    SynthesisSpec,
)

__all__ = ["build_power_grid_template", "power_grid_spec", "POWER_GRID_TYPES"]

POWER_GRID_TYPES = ["plant", "substation", "feeder", "customer"]

#: Default attributes: plants fail more often than protected substations.
_PLANT_FAIL = 5e-4
_SUBSTATION_FAIL = 1e-4
_FEEDER_FAIL = 3e-4
_PLANT_RATINGS = [120.0, 90.0, 150.0]
_CUSTOMER_DEMANDS = [40.0, 25.0, 60.0]


def build_power_grid_template(
    num_plants: int = 3,
    num_substations: int = 3,
    num_feeders: int = 4,
    num_customers: int = 3,
    switch_cost: float = 500.0,
    name: Optional[str] = None,
) -> ArchitectureTemplate:
    """A fully cross-connected plant -> substation -> feeder -> customer
    template with substation bus ties."""
    lib = Library(switch_cost=switch_cost)
    ratings = cycle(_PLANT_RATINGS)
    demands = cycle(_CUSTOMER_DEMANDS)

    plants = [f"P{i + 1}" for i in range(num_plants)]
    subs = [f"S{i + 1}" for i in range(num_substations)]
    feeders = [f"F{i + 1}" for i in range(num_feeders)]
    customers = [f"C{i + 1}" for i in range(num_customers)]

    for p in plants:
        rating = next(ratings)
        lib.add(ComponentSpec(p, "plant", cost=rating * 2, capacity=rating,
                              failure_prob=_PLANT_FAIL, role=Role.SOURCE))
    for s in subs:
        lib.add(ComponentSpec(s, "substation", cost=3000.0,
                              failure_prob=_SUBSTATION_FAIL))
    for f in feeders:
        lib.add(ComponentSpec(f, "feeder", cost=800.0, failure_prob=_FEEDER_FAIL))
    for c in customers:
        lib.add(ComponentSpec(c, "customer", demand=next(demands), role=Role.SINK))
    lib.set_type_order(POWER_GRID_TYPES)

    t = ArchitectureTemplate(
        lib, plants + subs + feeders + customers, name=name or "power-grid"
    )
    t.allow_many(plants, subs)
    t.allow_many(subs, feeders)
    t.allow_many(feeders, customers)
    for i, a in enumerate(subs):
        for b in subs[i + 1 :]:
            t.allow_bidirectional(a, b)
    t.declare_interchangeable(subs)
    t.declare_interchangeable(feeders)
    return t


def power_grid_requirements(template: ArchitectureTemplate) -> List[Requirement]:
    plants = [template.name_of(i) for i in template.nodes_of_type("plant")]
    subs = [template.name_of(i) for i in template.nodes_of_type("substation")]
    feeders = [template.name_of(i) for i in template.nodes_of_type("feeder")]
    customers = [template.name_of(i) for i in template.nodes_of_type("customer")]
    return [
        RequireIncomingEdge(nodes=customers, k=1),
        IfFeedsThenFed(via=feeders, downstream=customers, upstream=subs),
        IfFeedsThenFed(via=subs, downstream=feeders + subs, upstream=plants),
        GlobalPowerAdequacy(),
        SymmetryBreaking(),
    ]


def power_grid_spec(
    template: Optional[ArchitectureTemplate] = None,
    reliability_target: Optional[float] = None,
) -> SynthesisSpec:
    """Ready-to-run synthesis spec for a power grid template."""
    template = template or build_power_grid_template()
    return SynthesisSpec(
        template=template,
        requirements=power_grid_requirements(template),
        reliability_target=reliability_target,
    )
