"""Serializable trace context for cross-process span parenting.

A :class:`TraceContext` is the wire form of "where in the trace am I":
a trace id shared by every span of one logical run, the uid of the span
the remote side should parent to, and free-form correlation fields (run
id, batch name, job digest) that ride along into structured logs.

The coordinator (``iter_queue``) and the service runner mint one, write
it next to the work (the queue's ``trace.json``, the pool job envelope),
and workers :func:`activate <trace_context>` it before opening spans.
Root spans opened under an active context adopt its trace id and record
the remote parent uid, so a stitched trace (:func:`repro.obs.export.
stitch_chrome_trace`) connects every worker span back to the
coordinator without sharing a process or a tracer.

Span *uids* are ``"<pid>.<span_id>"`` strings: span ids are
per-tracer counters, so the pid prefix keeps them unique across the
worker fleet of one run. (Runs are single-host today; a host component
can join the uid when the queue grows a network transport.)

Determinism note: the context is correlation metadata only. It must
never enter job payloads (it would change ``job_digest`` and break
dedup) or job meta (it would leak into canonical service results).
"""

from __future__ import annotations

import hashlib
import os
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "TraceContext",
    "current_trace_context",
    "set_trace_context",
    "trace_context",
    "span_uid",
]


def span_uid(span: Any, pid: Optional[int] = None) -> str:
    """The cross-process uid of ``span``: ``"<pid>.<span_id>"``."""
    return f"{os.getpid() if pid is None else pid}.{span.span_id}"


class TraceContext:
    """One trace's identity plus the parent link for remote spans."""

    __slots__ = ("trace_id", "parent_uid", "fields")

    def __init__(
        self,
        trace_id: str,
        parent_uid: Optional[str] = None,
        fields: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = str(trace_id)
        self.parent_uid = parent_uid
        self.fields: Dict[str, Any] = dict(fields or {})

    @classmethod
    def mint(cls, **fields: Any) -> "TraceContext":
        """A fresh context with a random 16-hex-digit trace id."""
        return cls(trace_id=uuid.uuid4().hex[:16], fields=fields)

    @classmethod
    def derive(cls, seed: str, **fields: Any) -> "TraceContext":
        """A context whose trace id is a pure function of ``seed``.

        The service runner derives from the run id, so a resumed run
        (same run id, new process) keeps the same trace id and its
        replayed + fresh spans land in one trace.
        """
        digest = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]
        return cls(trace_id=digest, fields=fields)

    @classmethod
    def from_span(cls, span: Any, **fields: Any) -> "TraceContext":
        """A context parenting remote spans under a live local span."""
        trace_id = getattr(span, "trace_id", None) or uuid.uuid4().hex[:16]
        return cls(
            trace_id=trace_id, parent_uid=span_uid(span), fields=fields
        )

    def with_fields(self, **fields: Any) -> "TraceContext":
        """A copy with extra correlation fields merged in."""
        merged = dict(self.fields)
        merged.update(fields)
        return TraceContext(self.trace_id, self.parent_uid, merged)

    def reparent(self, span: Any) -> "TraceContext":
        """Same trace id and fields, parented under a live local span."""
        return TraceContext(self.trace_id, span_uid(span), dict(self.fields))

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.parent_uid is not None:
            doc["parent_uid"] = self.parent_uid
        if self.fields:
            doc["fields"] = dict(self.fields)
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=doc["trace_id"],
            parent_uid=doc.get("parent_uid"),
            fields=doc.get("fields") or {},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceContext):
            return NotImplemented
        return (
            self.trace_id == other.trace_id
            and self.parent_uid == other.parent_uid
            and self.fields == other.fields
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceContext({self.trace_id!r}, parent={self.parent_uid!r}, "
            f"fields={self.fields!r})"
        )


#: The context adopted by root spans opened in this thread/task.
_CONTEXT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_obs_trace_context", default=None
)


def current_trace_context() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None``."""
    return _CONTEXT.get()


def set_trace_context(
    ctx: Optional[TraceContext],
) -> Optional[TraceContext]:
    """Install ``ctx`` (or ``None`` to clear); returns the previous one."""
    previous = _CONTEXT.get()
    _CONTEXT.set(ctx)
    return previous


@contextmanager
def trace_context(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Scoped activation: root spans inside adopt ``ctx``."""
    token = _CONTEXT.set(ctx)
    try:
        yield
    finally:
        _CONTEXT.reset(token)
