"""SQLite-backed telemetry warehouse — queryable history of every run.

The engine and service plane emit rich JSONL exhaust (batch telemetry,
span records, worker metric deltas, B&B search-tree events, structured
obslog lines), but answering "which job was slow last Tuesday" has meant
hand-grepping journals. The warehouse ingests those streams into indexed
SQLite tables so operators get SQL over the full fleet history:

    wh = TelemetryWarehouse(".archex/warehouse.db")
    wh.ingest_file(".relcache/telemetry.jsonl")
    wh.query("SELECT job, wall_time FROM jobs ORDER BY wall_time DESC")

Tables (all times epoch seconds):

* ``sources``       — ingested files and their byte offsets; re-ingesting
  a file resumes where the last pass stopped, so ingest is incremental
  and idempotent (a rotated/truncated file restarts from zero).
* ``batches``       — one row per batch id (``batch_start``/``batch_end``
  roll-up: jobs, ok/failed, wall time, cache traffic).
* ``jobs``          — one row per (batch, job): outcome, attempts, wall
  time, cache hits/misses, retry/timeout counts.
* ``spans``         — one row per *finished* span (``span_end`` events
  and ``worker_span`` spool records).
* ``metric_deltas`` — one row per instrument per ``metrics_snapshot``
  event (per-worker registry deltas).
* ``bnb_events``    — the branch-and-bound search-tree stream.
* ``logs``          — structured obslog records.

Auto-ingest: :func:`configure_auto_ingest` arms a process-global
destination; :func:`maybe_auto_ingest` (called by the engine after every
``run_batch`` with telemetry, and so by ``execute_run``) then folds the
batch's journal in. Each auto-ingest opens a fresh connection — cheap,
and safe from any thread or pool callback. Ingest failures degrade to a
warning obslog event: the warehouse must never take a run down (the same
contract as :class:`repro.engine.TelemetryWriter`).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .obslog import log as _log

__all__ = [
    "DEFAULT_WAREHOUSE_PATH",
    "TelemetryWarehouse",
    "configure_auto_ingest",
    "auto_ingest_path",
    "maybe_auto_ingest",
]

#: Default on-disk location, next to the run store and alert rules.
DEFAULT_WAREHOUSE_PATH = Path(".archex") / "warehouse.db"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sources (
    path        TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    offset      INTEGER NOT NULL DEFAULT 0,
    ingested_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS batches (
    batch        TEXT PRIMARY KEY,
    name         TEXT,
    started_at   REAL,
    finished_at  REAL,
    jobs         INTEGER,
    workers      INTEGER,
    ok           INTEGER,
    failed       INTEGER,
    wall_time    REAL,
    cache_hits   INTEGER,
    cache_misses INTEGER,
    stopped      INTEGER
);
CREATE TABLE IF NOT EXISTS jobs (
    batch        TEXT NOT NULL,
    job          TEXT NOT NULL,
    kind         TEXT,
    started_at   REAL,
    finished_at  REAL,
    ok           INTEGER,
    attempts     INTEGER,
    wall_time    REAL,
    cache_hits   INTEGER,
    cache_misses INTEGER,
    error        TEXT,
    retries      INTEGER NOT NULL DEFAULT 0,
    timeouts     INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (batch, job)
);
CREATE TABLE IF NOT EXISTS spans (
    batch  TEXT,
    uid    TEXT,
    parent TEXT,
    name   TEXT NOT NULL,
    pid    INTEGER,
    ts     REAL NOT NULL,
    dur    REAL,
    attrs  TEXT
);
CREATE INDEX IF NOT EXISTS idx_spans_batch ON spans (batch);
CREATE INDEX IF NOT EXISTS idx_spans_name ON spans (name);
CREATE TABLE IF NOT EXISTS metric_deltas (
    batch   TEXT,
    worker  INTEGER,
    ts      REAL NOT NULL,
    metric  TEXT NOT NULL,
    kind    TEXT,
    value   REAL,
    count   INTEGER,
    payload TEXT
);
CREATE INDEX IF NOT EXISTS idx_metric_deltas_metric
    ON metric_deltas (metric);
CREATE INDEX IF NOT EXISTS idx_metric_deltas_batch
    ON metric_deltas (batch);
CREATE TABLE IF NOT EXISTS bnb_events (
    batch     TEXT,
    ts        REAL,
    solve     TEXT,
    kind      TEXT,
    node      INTEGER,
    depth     INTEGER,
    objective REAL,
    reason    TEXT,
    payload   TEXT
);
CREATE INDEX IF NOT EXISTS idx_bnb_events_solve ON bnb_events (solve);
CREATE TABLE IF NOT EXISTS logs (
    ts      REAL NOT NULL,
    level   TEXT,
    event   TEXT,
    run     TEXT,
    job     TEXT,
    source  TEXT,
    payload TEXT
);
CREATE INDEX IF NOT EXISTS idx_logs_event ON logs (event);
"""

#: First SQL keywords allowed through :meth:`TelemetryWarehouse.query`.
_READ_ONLY_PREFIXES = ("select", "with", "explain", "pragma")


def _num(value: Any) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) else None


class TelemetryWarehouse:
    """One SQLite file holding the ingested telemetry history."""

    def __init__(self, path: Union[str, Path] = DEFAULT_WAREHOUSE_PATH) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.OperationalError:
            pass  # e.g. network filesystems without shm support
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # ingest

    def ingest_file(
        self, path: Union[str, Path], kind: str = "auto"
    ) -> Dict[str, int]:
        """Ingest new lines of a JSONL stream since the last pass.

        ``kind`` is ``"telemetry"``, ``"log"``, or ``"auto"`` (sniff each
        record: a ``batch`` key means engine telemetry, a ``level`` key
        an obslog record). Only complete (newline-terminated) lines are
        consumed; the stored byte offset advances past exactly what was
        parsed, so a writer mid-line never corrupts the ingest and the
        next pass picks up the remainder. Returns per-table insert
        counts.
        """
        source = Path(path)
        key = str(source.resolve())
        with self._lock:
            row = self._conn.execute(
                "SELECT offset FROM sources WHERE path = ?", (key,)
            ).fetchone()
            offset = int(row["offset"]) if row is not None else 0
            try:
                size = source.stat().st_size
            except OSError:
                return {}
            if size < offset:
                offset = 0  # rotated or truncated underneath us
            counts: Dict[str, int] = {}
            with source.open("rb") as fh:
                fh.seek(offset)
                data = fh.read()
            end = data.rfind(b"\n")
            if end < 0:
                return counts
            consumed = end + 1
            with self._conn:
                for raw in data[:consumed].splitlines():
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        record = json.loads(raw.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        continue
                    if not isinstance(record, dict):
                        continue
                    hit = self._ingest_record(record, kind, source.name)
                    if hit is not None:
                        table, n = hit if isinstance(hit, tuple) else (hit, 1)
                        counts[table] = counts.get(table, 0) + n
                self._conn.execute(
                    "INSERT INTO sources (path, kind, offset, ingested_at)"
                    " VALUES (?, ?, ?, ?)"
                    " ON CONFLICT(path) DO UPDATE SET"
                    " offset = excluded.offset,"
                    " ingested_at = excluded.ingested_at",
                    (key, kind, offset + consumed, time.time()),
                )
            return counts

    def ingest_events(
        self,
        events: Iterable[Dict[str, Any]],
        kind: str = "auto",
        source: str = "<memory>",
    ) -> Dict[str, int]:
        """Ingest already-parsed records (no source offset tracking)."""
        counts: Dict[str, int] = {}
        with self._lock, self._conn:
            for record in events:
                if not isinstance(record, dict):
                    continue
                hit = self._ingest_record(record, kind, source)
                if hit is not None:
                    table, n = hit if isinstance(hit, tuple) else (hit, 1)
                    counts[table] = counts.get(table, 0) + n
        return counts

    def _ingest_record(
        self, record: Dict[str, Any], kind: str, source: str
    ) -> Union[str, Tuple[str, int], None]:
        if kind == "auto":
            if "batch" in record and "event" in record:
                kind = "telemetry"
            elif "level" in record:
                kind = "log"
            else:
                return None
        if kind == "log":
            return self._ingest_log(record, source)
        return self._ingest_telemetry(record)

    def _ingest_log(self, record: Dict[str, Any], source: str) -> str:
        core = {"ts", "level", "event", "run", "job"}
        payload = {k: v for k, v in record.items() if k not in core}
        self._conn.execute(
            "INSERT INTO logs (ts, level, event, run, job, source, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                _num(record.get("ts")) or 0.0,
                record.get("level"),
                record.get("event"),
                record.get("run"),
                record.get("job"),
                source,
                json.dumps(payload, sort_keys=True, default=str)
                if payload else None,
            ),
        )
        return "logs"

    def _ingest_telemetry(
        self, record: Dict[str, Any]
    ) -> Union[str, Tuple[str, int], None]:
        event = record.get("event")
        batch = record.get("batch")
        ts = _num(record.get("ts")) or 0.0
        conn = self._conn
        if event == "batch_start":
            conn.execute(
                "INSERT INTO batches (batch, name, started_at, jobs, workers)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(batch) DO UPDATE SET"
                " name = excluded.name, started_at = excluded.started_at,"
                " jobs = excluded.jobs, workers = excluded.workers",
                (batch, record.get("name"), ts, record.get("jobs"),
                 record.get("workers")),
            )
            return "batches"
        if event == "batch_end":
            conn.execute(
                "INSERT INTO batches (batch, name, finished_at, ok, failed,"
                " wall_time, cache_hits, cache_misses, stopped)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(batch) DO UPDATE SET"
                " finished_at = excluded.finished_at, ok = excluded.ok,"
                " failed = excluded.failed, wall_time = excluded.wall_time,"
                " cache_hits = excluded.cache_hits,"
                " cache_misses = excluded.cache_misses,"
                " stopped = excluded.stopped",
                (batch, record.get("name"), ts, record.get("ok"),
                 record.get("failed"), _num(record.get("wall_time")),
                 record.get("cache_hits"), record.get("cache_misses"),
                 1 if record.get("stopped") else 0),
            )
            return None  # a batch counts once, at its batch_start
        if event == "job_start":
            conn.execute(
                "INSERT INTO jobs (batch, job, kind, started_at)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(batch, job) DO UPDATE SET"
                " kind = excluded.kind, started_at = excluded.started_at",
                (batch, str(record.get("job")), record.get("kind"), ts),
            )
            return None  # a job counts once, at its job_end
        if event == "job_end":
            conn.execute(
                "INSERT INTO jobs (batch, job, finished_at, ok, attempts,"
                " wall_time, cache_hits, cache_misses, error)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(batch, job) DO UPDATE SET"
                " finished_at = excluded.finished_at, ok = excluded.ok,"
                " attempts = excluded.attempts,"
                " wall_time = excluded.wall_time,"
                " cache_hits = excluded.cache_hits,"
                " cache_misses = excluded.cache_misses,"
                " error = excluded.error",
                (batch, str(record.get("job")),
                 ts, 1 if record.get("ok") else 0, record.get("attempts"),
                 _num(record.get("wall_time")), record.get("cache_hits"),
                 record.get("cache_misses"), record.get("error")),
            )
            return "jobs"
        if event in ("job_retry", "job_timeout"):
            column = "retries" if event == "job_retry" else "timeouts"
            conn.execute(
                f"INSERT INTO jobs (batch, job, {column}) VALUES (?, ?, 1)"
                f" ON CONFLICT(batch, job) DO UPDATE SET"
                f" {column} = {column} + 1",
                (batch, str(record.get("job"))),
            )
            return None
        if event == "span_end":
            conn.execute(
                "INSERT INTO spans (batch, uid, parent, name, ts, dur, attrs)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (batch, str(record.get("span")),
                 None if record.get("parent") is None
                 else str(record.get("parent")),
                 record.get("name", "?"),
                 _num(record.get("ts")) or ts,
                 _num(record.get("duration")),
                 json.dumps(record.get("attrs"), sort_keys=True, default=str)
                 if record.get("attrs") else None),
            )
            return "spans"
        if event == "worker_span":
            conn.execute(
                "INSERT INTO spans (batch, uid, parent, name, pid, ts, dur,"
                " attrs) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (batch, record.get("uid"), record.get("parent"),
                 record.get("name", "?"), record.get("pid"),
                 _num(record.get("ts")) or ts, _num(record.get("dur")),
                 json.dumps(record.get("attrs"), sort_keys=True, default=str)
                 if record.get("attrs") else None),
            )
            return "spans"
        if event == "metrics_snapshot":
            metrics = record.get("metrics")
            if not isinstance(metrics, dict):
                return None
            worker = record.get("worker_pid")
            rows = []
            for name, data in sorted(metrics.items()):
                if not isinstance(data, dict):
                    continue
                mkind = data.get("kind")
                value = _num(
                    data.get("sum") if mkind == "histogram"
                    else data.get("value")
                )
                rows.append((
                    batch, worker, ts, name, mkind, value, data.get("count"),
                    json.dumps(data, sort_keys=True, default=str),
                ))
            conn.executemany(
                "INSERT INTO metric_deltas (batch, worker, ts, metric, kind,"
                " value, count, payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            return ("metric_deltas", len(rows)) if rows else None
        if event == "bnb_event":
            core = {"ts", "batch", "event", "solve", "kind", "node", "depth",
                    "objective", "reason"}
            payload = {k: v for k, v in record.items() if k not in core}
            conn.execute(
                "INSERT INTO bnb_events (batch, ts, solve, kind, node, depth,"
                " objective, reason, payload)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (batch, ts, str(record.get("solve")), record.get("kind"),
                 record.get("node"), record.get("depth"),
                 _num(record.get("objective")), record.get("reason"),
                 json.dumps(payload, sort_keys=True, default=str)
                 if payload else None),
            )
            return "bnb_events"
        if event == "worker_log":
            inner = record.get("record")
            if isinstance(inner, dict):
                return self._ingest_log(inner, f"worker:{batch}")
            return None
        # span_start, job_dedup, pool_restart, ... carry no warehouse row.
        return None

    # ------------------------------------------------------------------
    # query

    def query(
        self, sql: str, params: Sequence[Any] = ()
    ) -> List[Dict[str, Any]]:
        """Run a read-only SQL statement, rows as plain dicts."""
        head = sql.lstrip().split(None, 1)
        if not head or head[0].lower() not in _READ_ONLY_PREFIXES:
            raise ValueError(
                "warehouse.query accepts read-only statements"
                f" ({', '.join(_READ_ONLY_PREFIXES)}); got {sql!r}"
            )
        with self._lock:
            cur = self._conn.execute(sql, tuple(params))
            return [dict(row) for row in cur.fetchall()]

    def counts(self, batch: Optional[str] = None) -> Dict[str, int]:
        """Row counts per table (optionally scoped to one batch id)."""
        out: Dict[str, int] = {}
        scoped = ("batches", "jobs", "spans", "metric_deltas", "bnb_events")
        with self._lock:
            for table in scoped:
                if batch is not None:
                    cur = self._conn.execute(
                        f"SELECT COUNT(*) FROM {table} WHERE batch = ?",
                        (batch,),
                    )
                else:
                    cur = self._conn.execute(f"SELECT COUNT(*) FROM {table}")
                out[table] = int(cur.fetchone()[0])
            if batch is None:
                cur = self._conn.execute("SELECT COUNT(*) FROM logs")
                out["logs"] = int(cur.fetchone()[0])
        return out

    def batches(self, limit: int = 50) -> List[Dict[str, Any]]:
        """Most recent batches, newest first."""
        return self.query(
            "SELECT * FROM batches"
            " ORDER BY COALESCE(started_at, finished_at, 0) DESC, batch DESC"
            " LIMIT ?",
            (limit,),
        )

    # ------------------------------------------------------------------
    # retention

    def vacuum(
        self,
        max_age: Optional[float] = None,
        keep_batches: Optional[int] = None,
    ) -> Dict[str, int]:
        """Apply retention and compact the database file.

        ``max_age`` drops batches (and their rows in every child table)
        whose newest timestamp is older than ``now - max_age`` seconds,
        plus logs older than the cutoff; ``keep_batches`` keeps only the
        N most recent batches. Returns deleted-row counts per table.
        """
        deleted: Dict[str, int] = {}
        doomed: List[str] = []
        now = time.time()
        with self._lock:
            if max_age is not None:
                cutoff = now - max_age
                doomed.extend(
                    row["batch"] for row in self._conn.execute(
                        "SELECT batch FROM batches"
                        " WHERE COALESCE(finished_at, started_at, 0) < ?",
                        (cutoff,),
                    )
                )
            if keep_batches is not None:
                keepers = {
                    row["batch"] for row in self._conn.execute(
                        "SELECT batch FROM batches"
                        " ORDER BY COALESCE(started_at, finished_at, 0) DESC,"
                        " batch DESC LIMIT ?",
                        (keep_batches,),
                    )
                }
                doomed.extend(
                    row["batch"] for row in self._conn.execute(
                        "SELECT batch FROM batches"
                    ) if row["batch"] not in keepers
                )
            targets = sorted(set(doomed))
            with self._conn:
                for table in ("jobs", "spans", "metric_deltas", "bnb_events",
                              "batches"):
                    total = 0
                    for i in range(0, len(targets), 500):
                        chunk = targets[i:i + 500]
                        marks = ",".join("?" * len(chunk))
                        cur = self._conn.execute(
                            f"DELETE FROM {table} WHERE batch IN ({marks})",
                            chunk,
                        )
                        total += cur.rowcount
                    if total:
                        deleted[table] = total
                if max_age is not None:
                    cur = self._conn.execute(
                        "DELETE FROM logs WHERE ts < ?", (now - max_age,)
                    )
                    if cur.rowcount:
                        deleted["logs"] = cur.rowcount
            self._conn.execute("VACUUM")
        return deleted

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "TelemetryWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# auto-ingest

#: Armed destination; ``None`` disables :func:`maybe_auto_ingest`.
_AUTO_PATH: Optional[Path] = None

#: Environment override so queue workers / subprocesses inherit the flag.
_AUTO_ENV = "REPRO_WAREHOUSE"


def configure_auto_ingest(
    path: Optional[Union[str, Path]],
) -> Optional[Path]:
    """Arm (or with ``None`` disarm) post-batch warehouse auto-ingest."""
    global _AUTO_PATH
    _AUTO_PATH = Path(path) if path is not None else None
    return _AUTO_PATH


def auto_ingest_path() -> Optional[Path]:
    """The armed destination: explicit flag first, env var fallback."""
    if _AUTO_PATH is not None:
        return _AUTO_PATH
    env = os.environ.get(_AUTO_ENV)
    return Path(env) if env else None


def maybe_auto_ingest(
    source: Optional[Union[str, Path]],
) -> Optional[Dict[str, int]]:
    """Ingest ``source`` into the armed warehouse, if one is configured.

    Opens a fresh connection per call (safe from any thread); failures
    log a warning and return ``None`` — auto-ingest must never take the
    producing run down.
    """
    dest = auto_ingest_path()
    if dest is None or source is None:
        return None
    try:
        with TelemetryWarehouse(dest) as wh:
            counts = wh.ingest_file(source)
        _log("warehouse.ingest", source=str(source), **{
            f"rows_{table}": n for table, n in sorted(counts.items())
        })
        return counts
    except Exception as exc:  # pragma: no cover - defensive
        _log("warehouse.ingest_failed", level="warning",
             source=str(source), error=repr(exc))
        return None
