"""Thread-based wall-clock sampling profiler with collapsed-stack export.

The tracer (:mod:`repro.obs.tracer`) answers "how long did each
*instrumented* region take"; the sampling profiler answers "where is the
wall time actually going", including inside numpy, the simplex pricing
loop, or anything else nobody wrapped in a span. A daemon thread wakes
every ``interval`` seconds, grabs ``sys._current_frames()``, and counts
the profiled thread's stack (root first). No tracing hooks, no
interpreter slowdown beyond the sampling thread itself — safe to leave
on around an hours-long sweep.

Output is the *collapsed stack* format flamegraph tooling eats directly
(one ``frame;frame;frame count`` line per distinct stack), so::

    archex synthesize --algorithm mr --sample-profile mr.collapsed
    flamegraph.pl mr.collapsed > mr.svg     # Brendan Gregg's script
    # or paste into https://www.speedscope.app/

Sampling bias caveats apply: short-lived frames under the sampling
interval may be missed entirely, and counts are proportional to wall
time, not CPU time (a thread blocked in ``wait()`` still accrues).
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["SamplingProfiler"]


def _frame_label(frame) -> str:
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{qualname}"


class SamplingProfiler:
    """Sample one thread's wall-clock stacks into collapsed-stack counts.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms — ~200 Hz, cheap enough to
        leave on and fine-grained enough for second-scale phases).
    target_thread:
        ``ident`` of the thread to sample; defaults to the thread that
        calls :meth:`start` (not the profiler's own daemon thread).
    all_threads:
        Sample every live thread instead (stacks are then prefixed with
        ``thread-N;`` so flamegraphs keep them apart).
    max_depth:
        Stack frames kept per sample, deepest dropped first.
    """

    def __init__(
        self,
        interval: float = 0.005,
        target_thread: Optional[int] = None,
        all_threads: bool = False,
        max_depth: int = 128,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.all_threads = all_threads
        self.max_depth = max_depth
        self.counts: Dict[Tuple[str, ...], int] = {}
        self.samples = 0
        self._target_thread = target_thread
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        if self._target_thread is None:
            self._target_thread = threading.get_ident()
        self._stop.clear()
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        thread, self._thread = self._thread, None
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self.stopped_at = time.time()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sampling loop ----------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            frames = sys._current_frames()
            self.samples += 1
            if self.all_threads:
                for tid, frame in frames.items():
                    if tid == own:
                        continue
                    stack = (f"thread-{tid}",) + self._stack(frame)
                    self.counts[stack] = self.counts.get(stack, 0) + 1
            else:
                frame = frames.get(self._target_thread)
                if frame is None:
                    continue
                stack = self._stack(frame)
                self.counts[stack] = self.counts.get(stack, 0) + 1

    def _stack(self, frame) -> Tuple[str, ...]:
        labels: List[str] = []
        while frame is not None and len(labels) < self.max_depth:
            labels.append(_frame_label(frame))
            frame = frame.f_back
        labels.reverse()  # collapsed format wants root first
        return tuple(labels)

    # -- export -----------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf count`` per line."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.collapsed(), encoding="utf-8")
        return path

    def top(self, n: int = 10) -> List[Tuple[str, int]]:
        """Hottest *leaf* frames by inclusive sample count."""
        by_leaf: Dict[str, int] = {}
        for stack, count in self.counts.items():
            if not stack:
                continue
            leaf = stack[-1]
            by_leaf[leaf] = by_leaf.get(leaf, 0) + count
        return sorted(by_leaf.items(), key=lambda kv: -kv[1])[:n]

    def __len__(self) -> int:
        return len(self.counts)
