"""``repro.obs`` — zero-dependency tracing & metrics for the whole stack.

The observability substrate every perf-minded PR measures itself
against. Three pieces:

* **Tracing** (:mod:`repro.obs.tracer`) — a context-local
  :class:`Tracer` of nested, attributed :class:`Span` regions. Disabled
  by default; the module-level :func:`span` helper degrades to a shared
  no-op, so instrumentation stays in the hot paths permanently at the
  cost of one attribute lookup.
* **Metrics** (:mod:`repro.obs.metrics`) — :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments in a process-global
  registry (``metrics.counter("ilp.bnb.nodes").inc(...)``).
* **Export** (:mod:`repro.obs.export`, :mod:`repro.obs.profile`) —
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto), JSONL span
  events sharing :class:`repro.engine.TelemetryWriter`'s stream format,
  and a profile-tree aggregation rendered by
  :func:`repro.report.render_profile`.

Typical use (the CLI's ``profile`` subcommand does exactly this)::

    from repro import obs
    from repro.report import render_profile

    with obs.tracing() as tracer:
        result = synthesize_ilp_mr(spec)
    obs.write_chrome_trace("trace.json", tracer.spans)
    print(render_profile(tracer.spans))
"""

from .export import (
    chrome_trace,
    chrome_trace_events,
    export_spans_jsonl,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
    reset_metrics,
    snapshot,
)
from .profile import ProfileNode, build_profile, flatten_profile
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    enabled,
    get_tracer,
    set_attr,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ProfileNode",
    "Span",
    "Tracer",
    "build_profile",
    "chrome_trace",
    "chrome_trace_events",
    "counter",
    "current_span",
    "enabled",
    "export_spans_jsonl",
    "flatten_profile",
    "gauge",
    "get_tracer",
    "histogram",
    "registry",
    "reset_metrics",
    "set_attr",
    "set_tracer",
    "snapshot",
    "span",
    "tracing",
    "write_chrome_trace",
]
