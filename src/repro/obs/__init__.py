"""``repro.obs`` — zero-dependency tracing & metrics for the whole stack.

The observability substrate every perf-minded PR measures itself
against. Three pieces:

* **Tracing** (:mod:`repro.obs.tracer`) — a context-local
  :class:`Tracer` of nested, attributed :class:`Span` regions. Disabled
  by default; the module-level :func:`span` helper degrades to a shared
  no-op, so instrumentation stays in the hot paths permanently at the
  cost of one attribute lookup.
* **Metrics** (:mod:`repro.obs.metrics`) — :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments in a process-global
  registry (``metrics.counter("ilp.bnb.nodes").inc(...)``).
* **Export** (:mod:`repro.obs.export`, :mod:`repro.obs.profile`) —
  Chrome trace-event JSON (``chrome://tracing`` / Perfetto), JSONL span
  events sharing :class:`repro.engine.TelemetryWriter`'s stream format,
  and a profile-tree aggregation rendered by
  :func:`repro.report.render_profile`.

Since PR 5 the layer is also *live*: a stdlib HTTP server
(:mod:`repro.obs.server`) exposes ``/metrics`` (Prometheus text
exposition), ``/runs`` (in-flight synthesis/batch snapshots from the
:class:`RunRegistry`), and ``/healthz`` while a sweep runs; structured
JSON logs (:mod:`repro.obs.obslog`) carry run/job/span correlation ids;
a wall-clock sampling profiler (:mod:`repro.obs.sampling`) exports
flamegraph-ready collapsed stacks; and pool workers ship their metrics
home for merging (:mod:`repro.obs.aggregate`), so multi-process sweeps
report true totals.

Typical use (the CLI's ``profile`` subcommand does exactly this)::

    from repro import obs
    from repro.report import render_profile

    with obs.tracing() as tracer:
        result = synthesize_ilp_mr(spec)
    obs.write_chrome_trace("trace.json", tracer.spans)
    print(render_profile(tracer.spans))

And watching a run live (the CLI's ``--serve PORT`` flag)::

    with obs.ObsServer(port=9200):
        run_batch(batch, jobs=4)   # meanwhile: curl :9200/metrics
"""

from .aggregate import (
    iter_metrics_snapshots,
    merge_snapshot,
    merge_telemetry,
    snapshot_delta,
)
from .alerts import (
    AlertEngine,
    AlertRule,
    load_alert_rules,
    parse_alert_rules,
)
from .context import (
    TraceContext,
    current_trace_context,
    set_trace_context,
    span_uid,
    trace_context,
)
from .export import (
    chrome_trace,
    chrome_trace_events,
    export_spans_jsonl,
    stitch_chrome_trace,
    stitched_trace_events,
    write_chrome_trace,
)
from .dashboard import (
    DashboardClient,
    build_dashboard_model,
    parse_prometheus,
    render_dashboard,
    run_dashboard,
)
from .metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    quantile_from_buckets,
    quantile_from_snapshot,
    registry,
    reset_metrics,
    snapshot,
)
from .obslog import (
    ObsLog,
    configure_obslog,
    current_log_context,
    get_obslog,
    log,
    log_context,
    obslog_enabled,
    read_log,
)
from .profile import ProfileNode, build_profile, flatten_profile
from .sampling import SamplingProfiler
from .server import (
    ObsServer,
    RunHandle,
    RunRegistry,
    add_health_source,
    escape_label_value,
    health_snapshot,
    prometheus_name,
    remove_health_source,
    render_prometheus,
    reset_run_registry,
    run_registry,
)
from .spool import (
    SPOOL_DIR_NAME,
    SpoolCollector,
    TelemetrySpool,
    spool_backlog,
)
from .warehouse import (
    DEFAULT_WAREHOUSE_PATH,
    TelemetryWarehouse,
    auto_ingest_path,
    configure_auto_ingest,
    maybe_auto_ingest,
)
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    absorb_record,
    add_observer,
    current_span,
    enabled,
    get_tracer,
    observed,
    remove_observer,
    reset_span_stack,
    set_attr,
    set_tracer,
    span,
    span_record,
    tracing,
)

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "DEFAULT_WAREHOUSE_PATH",
    "DashboardClient",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsLog",
    "ObsServer",
    "ProfileNode",
    "RunHandle",
    "RunRegistry",
    "SPOOL_DIR_NAME",
    "SamplingProfiler",
    "Span",
    "SpoolCollector",
    "TelemetrySpool",
    "TelemetryWarehouse",
    "TraceContext",
    "Tracer",
    "absorb_record",
    "add_health_source",
    "add_observer",
    "auto_ingest_path",
    "build_dashboard_model",
    "build_profile",
    "chrome_trace",
    "chrome_trace_events",
    "configure_auto_ingest",
    "configure_obslog",
    "counter",
    "current_log_context",
    "current_span",
    "current_trace_context",
    "enabled",
    "escape_label_value",
    "export_spans_jsonl",
    "flatten_profile",
    "gauge",
    "get_obslog",
    "get_tracer",
    "health_snapshot",
    "histogram",
    "iter_metrics_snapshots",
    "load_alert_rules",
    "log",
    "log_context",
    "maybe_auto_ingest",
    "merge_snapshot",
    "merge_telemetry",
    "observed",
    "obslog_enabled",
    "parse_alert_rules",
    "parse_prometheus",
    "prometheus_name",
    "quantile_from_buckets",
    "quantile_from_snapshot",
    "read_log",
    "registry",
    "render_dashboard",
    "run_dashboard",
    "remove_health_source",
    "remove_observer",
    "render_prometheus",
    "reset_span_stack",
    "reset_metrics",
    "reset_run_registry",
    "run_registry",
    "set_attr",
    "set_trace_context",
    "set_tracer",
    "snapshot",
    "snapshot_delta",
    "span",
    "span_record",
    "span_uid",
    "spool_backlog",
    "stitch_chrome_trace",
    "stitched_trace_events",
    "trace_context",
    "tracing",
    "write_chrome_trace",
]
